"""The scenario engine: determinism, Figure 16, queueing, arrivals, CLI."""

import json

import pytest

from repro.cluster import (
    ScenarioError,
    ScenarioSpec,
    run_scenario,
)


def shared_spec(**overrides):
    """The Figure 16 preset shrunk to 2 iterations per job."""
    spec = ScenarioSpec.preset("shared").with_overrides(
        {f"jobs.{i}.iterations": 2 for i in range(4)}
    )
    return spec.with_overrides(overrides) if overrides else spec


class TestDeterminism:
    def test_same_spec_same_seed_identical_json(self):
        spec = shared_spec()
        first = json.dumps(run_scenario(spec).to_dict(), sort_keys=True)
        second = json.dumps(run_scenario(spec).to_dict(), sort_keys=True)
        assert first == second

    def test_trace_process_deterministic(self):
        spec = ScenarioSpec.preset("lifetime").with_overrides({"count": 4})
        first = run_scenario(spec).to_dict()
        second = run_scenario(spec).to_dict()
        assert first == second

    def test_seed_changes_poisson_arrivals(self):
        spec = shared_spec(**{"process": "poisson", "count": 4})
        a = run_scenario(spec)
        b = run_scenario(spec.with_overrides({"seed": 1}))
        assert (
            [j.arrival_s for j in a.jobs] != [j.arrival_s for j in b.jobs]
        )

    def test_wall_time_off_json(self):
        result = run_scenario(shared_spec())
        assert result.wall_time_s is not None
        assert "wall_time" not in json.dumps(result.to_dict())


class TestFigure16:
    """The acceptance criterion: shardable TopoOpt partitions show no
    cross-job iteration-time inflation, while the shared Fat-tree's p99
    inflates under the same arrival trace."""

    def test_topoopt_shards_do_not_inflate(self):
        multi = run_scenario(shared_spec())
        # Each job alone on an otherwise-empty cluster: same pipeline,
        # same shard, no neighbors.
        for index, job in enumerate(multi.jobs):
            solo_spec = shared_spec(
                **{"arrivals.times": [0.0], "name": f"solo-{index}"}
            )
            # Rotate the mix so template `index` is the one that runs.
            solo_spec = solo_spec.with_overrides(
                {
                    "jobs.0.model": multi.spec.jobs[index].model,
                    "jobs.0.iterations": 2,
                }
            )
            solo = run_scenario(solo_spec)
            solo_times = solo.jobs[0].iteration_times
            for got, want in zip(job.iteration_times, solo_times):
                assert got == pytest.approx(want, rel=1e-6)

    def test_fattree_p99_inflates_under_same_trace(self):
        topo = run_scenario(shared_spec())
        fat = run_scenario(shared_spec(**{"fabric.kind": "fattree"}))
        # Identical arrival trace and offered traffic.
        assert [j.arrival_s for j in fat.jobs] == [
            j.arrival_s for j in topo.jobs
        ]
        _, topo_p99 = topo.iteration_stats()
        _, fat_p99 = fat.iteration_stats()
        assert fat_p99 > topo_p99 * 1.2

    def test_cross_job_congestion_on_shared_core(self):
        # Two 8-server jobs on one shared expander: multi-hop paths
        # relay through the *other* job's servers, so the multi-job
        # iterations are measurably slower than running alone --
        # genuine cross-job congestion, not just the cost-equivalent
        # bandwidth tax.
        base = {
            "servers": 16,
            "fabric.kind": "expander",
            "cluster.degree": 3,
            "jobs.0.servers": 8,
            "jobs.0.iterations": 2,
            "jobs.1.servers": 8,
            "jobs.1.iterations": 2,
        }
        multi = run_scenario(
            shared_spec(**{**base, "arrivals.times": [0.0, 0.0]})
        )
        solo = run_scenario(
            shared_spec(**{**base, "arrivals.times": [0.0]})
        )
        solo_avg = solo.jobs[0].iteration_avg_s
        assert multi.jobs[0].iteration_avg_s > solo_avg * 1.1


class TestQueueing:
    def test_second_job_queues_for_servers(self):
        spec = shared_spec(
            servers=8, **{"arrivals.times": [0.0, 0.0]}
        )
        result = run_scenario(spec)
        first, second = result.jobs
        assert first.queueing_delay_s == 0.0
        assert second.queueing_delay_s > 0.0
        # FCFS: the second job is admitted exactly when the first
        # departs.
        assert second.admitted_s == pytest.approx(first.completed_s)

    def test_admission_latency_delays_start(self):
        base = shared_spec(**{"arrivals.times": [0.0]})
        instant = run_scenario(base)
        delayed = run_scenario(
            base.with_overrides({"admission_latency_s": 0.5})
        )
        assert delayed.jobs[0].jct_s == pytest.approx(
            instant.jobs[0].jct_s + 0.5, rel=1e-6
        )

    def test_utilization_timeline_tracks_admissions(self):
        spec = shared_spec(servers=8, **{"arrivals.times": [0.0, 0.0]})
        result = run_scenario(spec)
        busies = [busy for _, busy in result.utilization_timeline]
        assert busies[0] == 0
        assert max(busies) == 8
        assert busies[-1] == 0
        assert 0.0 < result.mean_utilization() <= 1.0

    def test_max_sim_time_enforced(self):
        with pytest.raises(ScenarioError, match="max_sim_time_s"):
            run_scenario(shared_spec(max_sim_time_s=1e-6))


class TestArrivalProcesses:
    def test_explicit_cycles_templates_in_order(self):
        result = run_scenario(shared_spec())
        assert [job.model for job in result.jobs] == [
            "DLRM", "BERT", "CANDLE", "VGG16"
        ]

    def test_explicit_times_pair_with_templates_as_written(self):
        # times[i] belongs to template i even when the list is not
        # sorted: DLRM (template 0) arrives late, BERT (template 1)
        # arrives first.
        spec = shared_spec(**{"arrivals.times": [5.0, 0.0]})
        result = run_scenario(spec)
        by_index = {job.index: job for job in result.jobs}
        assert by_index[0].model == "DLRM"
        assert by_index[0].arrival_s == 5.0
        assert by_index[1].model == "BERT"
        assert by_index[1].arrival_s == 0.0

    def test_poisson_draws_by_weight(self):
        spec = shared_spec(
            **{
                "process": "poisson",
                "count": 6,
                "mean_interarrival_s": 5.0,
                "jobs.0.weight": 100.0,
            }
        )
        result = run_scenario(spec)
        assert len(result.jobs) == 6
        arrivals = [job.arrival_s for job in result.jobs]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)
        # The heavily weighted template dominates the draw.
        models = [job.model for job in result.jobs]
        assert models.count("DLRM") >= 4

    def test_trace_population_maps_families_and_clamps(self):
        spec = ScenarioSpec.preset("lifetime").with_overrides(
            {"count": 5, "max_servers": 8}
        )
        result = run_scenario(spec)
        assert len(result.jobs) == 5
        for job in result.jobs:
            assert job.model in ("DLRM", "BERT", "VGG16", "CANDLE")
            assert 2 <= job.num_servers <= 8

    def test_mcmc_template_co_optimizes_on_shard(self):
        spec = shared_spec(
            **{
                "arrivals.times": [0.0],
                "jobs.0.strategy": "mcmc",
                "optimizer.rounds": 1,
                "optimizer.mcmc_iterations": 5,
            }
        )
        result = run_scenario(spec)
        assert result.jobs[0].strategy == "mcmc"
        assert result.jobs[0].iterations_completed == 2


class TestResultShape:
    def test_result_round_trip(self):
        from repro.cluster import ScenarioResult

        result = run_scenario(shared_spec())
        reloaded = ScenarioResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert reloaded == result

    def test_metrics_block(self):
        metrics = run_scenario(shared_spec()).metrics()
        assert metrics["jobs_completed"] == 4
        assert metrics["iteration_p99_s"] >= metrics["iteration_avg_s"]
        assert metrics["jct_avg_s"] > 0
        assert 0 <= metrics["mean_utilization"] <= 1

    def test_solver_reference_matches_kernel(self):
        kernel = run_scenario(shared_spec())
        reference = run_scenario(shared_spec(solver="reference"))
        for k_job, r_job in zip(kernel.jobs, reference.jobs):
            for k_t, r_t in zip(
                k_job.iteration_times, r_job.iteration_times
            ):
                assert k_t == pytest.approx(r_t, rel=1e-9)


class TestScenarioCli:
    def test_preset_run(self, capsys):
        from repro.cli import main

        code = main([
            "scenario", "--preset", "shared",
            "--set", "jobs.0.iterations=1", "--set", "jobs.1.iterations=1",
            "--set", "jobs.2.iterations=1", "--set", "jobs.3.iterations=1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure16-shared-cluster" in out
        assert "DLRM-0" in out

    def test_fabric_comparison_and_json(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "scenario.json"
        code = main([
            "scenario", "--preset", "shared",
            "--set", "jobs.0.iterations=1", "--set", "jobs.1.iterations=1",
            "--set", "jobs.2.iterations=1", "--set", "jobs.3.iterations=1",
            "--fabrics", "topoopt,fattree",
            "--json", str(out_path),
        ])
        assert code == 0
        assert "fattree" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"topoopt", "fattree"}
        assert payload["topoopt"]["type"] == "scenario"

    def test_single_fabric_list_still_writes_mapping(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        out_path = tmp_path / "one.json"
        code = main([
            "scenario", "--preset", "shared",
            "--set", "jobs.0.iterations=1", "--set", "jobs.1.iterations=1",
            "--set", "jobs.2.iterations=1", "--set", "jobs.3.iterations=1",
            "--fabrics", "fattree",
            "--json", str(out_path),
        ])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        # --fabrics always yields the {kind: result} shape, even for a
        # single-name list.
        assert set(payload) == {"fattree"}
        assert payload["fattree"]["type"] == "scenario"

    def test_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        spec = shared_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["scenario", "--spec", str(path)]) == 0
        assert "cluster" in capsys.readouterr().out

    def test_bad_usage(self, capsys):
        from repro.cli import main

        assert main(["scenario"]) == 2
        assert main([
            "scenario", "--preset", "shared", "--set", "policy=bogus",
        ]) == 2
        capsys.readouterr()
