"""Tests for the content-addressed result store and spec hashing."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api.runner import run_experiment
from repro.api.spec import (
    ClusterSpec,
    ExperimentSpec,
    FabricSpec,
    OptimizerSpec,
    WorkloadSpec,
    canonical_json,
)
from repro.cluster.spec import ScenarioSpec
from repro.service import STORE_VERSION, ResultStore


def cheap_spec(seed: int = 0, servers: int = 8) -> ExperimentSpec:
    """A fixed-strategy, baseline-free spec that computes in ~10 ms."""
    return ExperimentSpec(
        name=f"store-test-{seed}",
        seed=seed,
        workload=WorkloadSpec(model="DLRM", scale="testbed"),
        cluster=ClusterSpec(servers=servers, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="fattree"),
        optimizer=OptimizerSpec(strategy="auto"),
        baselines=(),
    )


class TestContentHash:
    def test_stable_across_to_dict_round_trip(self):
        spec = cheap_spec()
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert spec.content_hash() == again.content_hash()

    def test_stable_across_dict_key_orderings(self):
        """Canonical JSON sorts keys, so insertion order cannot matter."""
        spec = cheap_spec()
        data = spec.to_dict()
        reordered = {key: data[key] for key in reversed(list(data))}
        assert (
            ExperimentSpec.from_dict(reordered).content_hash()
            == spec.content_hash()
        )

    def test_seed_is_part_of_the_key(self):
        assert cheap_spec(seed=0).content_hash() != (
            cheap_spec(seed=1).content_hash()
        )

    def test_any_field_change_changes_the_key(self):
        spec = cheap_spec()
        assert spec.content_hash() != (
            spec.with_overrides({"cluster.degree": 3}).content_hash()
        )

    def test_stable_across_processes(self):
        """The hash is a pure function of the JSON: no per-process salt
        (PYTHONHASHSEED) may leak in, or a shared store would be
        useless across workers."""
        spec = cheap_spec()
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        env["PYTHONHASHSEED"] = "12345"
        script = (
            "import json, sys\n"
            "from repro.api.spec import ExperimentSpec\n"
            "spec = ExperimentSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(spec.content_hash())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(spec.to_dict())],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == spec.content_hash()

    def test_scenario_spec_hashes_too(self):
        scenario = ScenarioSpec.preset("shared")
        key = scenario.content_hash()
        assert len(key) == 64
        assert (
            ScenarioSpec.from_dict(scenario.to_dict()).content_hash()
            == key
        )
        assert scenario.with_overrides({"seed": 9}).content_hash() != key


class TestResultStore:
    def test_round_trip_byte_identity(self, tmp_path):
        """A store-served result is byte-for-byte the fresh compute."""
        spec = cheap_spec()
        fresh = run_experiment(spec)
        store = ResultStore(tmp_path)
        store.put(spec, fresh)
        # A brand-new store instance forces the disk tier.
        served = ResultStore(tmp_path).get(spec)
        assert (
            canonical_json(served.to_dict())
            == canonical_json(fresh.to_dict())
        )

    def test_memory_only_store_round_trips(self):
        spec = cheap_spec()
        store = ResultStore()
        assert store.get(spec) is None
        store.put(spec, run_experiment(spec))
        assert store.get(spec) is not None
        assert store.path_for(store.key_for(spec)) is None

    def test_disk_layout_is_sharded_and_version_stamped(self, tmp_path):
        spec = cheap_spec()
        store = ResultStore(tmp_path)
        key = store.put(spec, run_experiment(spec))
        path = store.path_for(key)
        assert path == tmp_path / key[:2] / f"{key}.json"
        entry = json.loads(path.read_text())
        assert entry["version"] == STORE_VERSION
        assert entry["key"] == key

    def test_corrupted_entry_is_a_miss_not_an_error(self, tmp_path):
        spec = cheap_spec()
        store = ResultStore(tmp_path)
        key = store.put(spec, run_experiment(spec))
        store.path_for(key).write_text("{ not json at all")
        fresh = ResultStore(tmp_path)
        assert fresh.get(spec) is None
        stats = fresh.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        spec = cheap_spec()
        store = ResultStore(tmp_path)
        key = store.put(spec, run_experiment(spec))
        path = store.path_for(key)
        path.write_text(path.read_text()[: 40])
        assert ResultStore(tmp_path).get(spec) is None

    def test_version_or_key_mismatch_is_a_miss(self, tmp_path):
        spec = cheap_spec()
        store = ResultStore(tmp_path)
        key = store.put(spec, run_experiment(spec))
        path = store.path_for(key)
        entry = json.loads(path.read_text())
        entry["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(entry))
        assert ResultStore(tmp_path).get(spec) is None
        entry["version"] = STORE_VERSION
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert ResultStore(tmp_path).get(spec) is None

    def test_concurrent_writers_same_key_no_torn_files(self, tmp_path):
        """Last-write-wins: N threads racing one key leave exactly one
        readable entry and no temp-file debris."""
        spec = cheap_spec()
        result = run_experiment(spec)
        store = ResultStore(tmp_path)
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            store.put(spec, result)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served = ResultStore(tmp_path).get(spec)
        assert (
            canonical_json(served.to_dict())
            == canonical_json(result.to_dict())
        )
        debris = [
            p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")
        ]
        assert debris == []
        assert store.stats()["puts"] == 8

    def test_memory_lru_evicts_but_disk_retains(self, tmp_path):
        specs = [cheap_spec(seed=i) for i in range(3)]
        result = run_experiment(specs[0])
        store = ResultStore(tmp_path, memory_entries=2)
        for spec in specs:
            # The stored result's own spec doesn't matter to the tiers.
            store.put(spec, result)
        stats = store.stats()
        assert stats["evictions"] == 1
        assert stats["memory_entries"] == 2
        assert stats["disk_entries"] == 3
        # The evicted (oldest) key comes back from disk.
        assert store.get(specs[0]) is not None
        assert store.stats()["disk_hits"] == 1

    def test_clear_and_keys(self, tmp_path):
        specs = [cheap_spec(seed=i) for i in range(2)]
        result = run_experiment(specs[0])
        store = ResultStore(tmp_path)
        keys = sorted(store.put(spec, result) for spec in specs)
        assert store.keys() == keys
        assert store.clear() == 2
        assert store.keys() == []
        assert store.get(specs[0]) is None

    def test_contains_counts_nothing(self, tmp_path):
        spec = cheap_spec()
        store = ResultStore(tmp_path)
        assert not store.contains(spec)
        store.put(spec, run_experiment(spec))
        assert store.contains(spec)
        stats = store.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_rejects_bad_memory_bound(self):
        with pytest.raises(ValueError):
            ResultStore(memory_entries=0)
