"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "DLRM"
        assert args.servers == 16
        assert args.degree == 4

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["--model", "BERT", "--servers", "8", "--primes-only"]
        )
        assert args.model == "BERT"
        assert args.servers == 8
        assert args.primes_only

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic"])


class TestMain:
    def test_unknown_model_exits_nonzero(self, capsys):
        code = main(["--model", "AlexNet"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_small_run_succeeds(self, capsys):
        code = main(
            [
                "--model", "VGG16",
                "--scale", "shared",
                "--servers", "4",
                "--degree", "2",
                "--rounds", "1",
                "--mcmc-iterations", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration time" in out
        assert "TopoOpt" in out
        assert "interconnect cost" in out

    def test_dlrm_reports_mp_layers(self, capsys):
        code = main(
            [
                "--model", "DLRM",
                "--scale", "shared",
                "--servers", "8",
                "--degree", "4",
                "--rounds", "1",
                "--mcmc-iterations", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "model-parallel" in out
        assert "strides" in out


class TestCheckDocs:
    def test_check_docs_passes_on_repo(self, capsys):
        code = main(["check-docs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "check-docs ok" in out
        assert "README.md" in out

    def test_broken_command_reference_fails(self, tmp_path, capsys):
        (tmp_path / "docs").mkdir()
        (tmp_path / "scripts").mkdir()
        (tmp_path / "README.md").write_text(
            "Run `python -m repro.cli frobnicate` and scripts/nope.sh\n"
        )
        code = main(["check-docs", "--root", str(tmp_path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "frobnicate" in err
        assert "nope.sh" in err

    def test_broken_doctest_fails(self, tmp_path, capsys):
        (tmp_path / "docs").mkdir()
        (tmp_path / "scripts").mkdir()
        (tmp_path / "README.md").write_text(
            ">>> 1 + 1\n3\n"
        )
        code = main(["check-docs", "--root", str(tmp_path)])
        assert code == 1
