"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SUBCOMMANDS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.model == "DLRM"
        assert args.servers == 16
        assert args.degree == 4

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["--model", "BERT", "--servers", "8", "--primes-only"]
        )
        assert args.model == "BERT"
        assert args.servers == 8
        assert args.primes_only

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic"])

    def test_scale_choices_track_config_families(self):
        """Satellite: one source of truth for the preset families."""
        from repro.models.configs import CONFIG_FAMILIES

        action = next(
            a for a in build_parser()._actions if a.dest == "scale"
        )
        assert tuple(action.choices) == tuple(CONFIG_FAMILIES)
        # The help text documents each family (no leftover "List 1").
        assert "List 1" not in action.help
        for family in CONFIG_FAMILIES:
            assert family in action.help


class TestMain:
    def test_unknown_model_exits_nonzero(self, capsys):
        code = main(["--model", "AlexNet"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_small_run_succeeds(self, capsys):
        code = main(
            [
                "--model", "VGG16",
                "--scale", "shared",
                "--servers", "4",
                "--degree", "2",
                "--rounds", "1",
                "--mcmc-iterations", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iteration time" in out
        assert "TopoOpt" in out
        assert "interconnect cost" in out

    def test_dlrm_reports_mp_layers(self, capsys):
        code = main(
            [
                "--model", "DLRM",
                "--scale", "shared",
                "--servers", "8",
                "--degree", "4",
                "--rounds", "1",
                "--mcmc-iterations", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "model-parallel" in out
        assert "strides" in out


class TestDeclarativeCommands:
    def test_run_requires_spec_or_preset(self, capsys):
        assert main(["run"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_run_with_preset_and_overrides(self, capsys, tmp_path):
        out = tmp_path / "result.json"
        code = main([
            "run", "--preset", "shared",
            "--set", "servers=4", "--set", "degree=2",
            "--set", "rounds=1", "--set", "mcmc_iterations=5",
            "--set", "model=VGG16",
            "--json", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "iteration time" in stdout
        assert "TopoOpt" in stdout
        result = json.loads(out.read_text())
        assert result["spec"]["cluster"]["servers"] == 4
        assert result["fabric"]["total_s"] > 0

    def test_run_rejects_bad_override(self, capsys):
        code = main([
            "run", "--preset", "shared", "--set", "fabric.kind=torus",
        ])
        assert code == 2
        assert "torus" in capsys.readouterr().err

    def test_sweep_prints_row_per_point(self, capsys):
        code = main([
            "sweep", "--preset", "shared",
            "--set", "strategy=auto", "--set", "servers=8",
            "--set", "baselines=",
            "--vary", "model=DLRM,VGG16", "--vary", "degree=2,4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 points, 0 failed" in out
        assert "VGG16" in out

    def test_sweep_requires_a_grid(self, capsys):
        assert main(["sweep", "--preset", "shared"]) == 2
        assert "--grid" in capsys.readouterr().err

    def test_compare_lists_fabrics(self, capsys):
        code = main([
            "compare", "--preset", "shared",
            "--set", "strategy=auto", "--set", "servers=8",
            "--fabrics", "topoopt,ideal-switch,leaf-spine",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for kind in ("topoopt", "ideal-switch", "leaf-spine"):
            assert kind in out

    def test_compare_rejects_unknown_fabric(self, capsys):
        code = main([
            "compare", "--preset", "shared", "--fabrics", "torus",
        ])
        assert code == 2
        assert "torus" in capsys.readouterr().err

    def test_trace_writes_chrome_trace_and_report(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        report_out = tmp_path / "report.json"
        code = main([
            "trace", "--preset", "shared",
            "--set", "jobs.0.iterations=2", "--set", "jobs.1.iterations=2",
            "--set", "jobs.2.iterations=2", "--set", "jobs.3.iterations=2",
            "--out", str(trace_out), "--json", str(report_out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "observability report" in stdout
        trace = json.loads(trace_out.read_text())
        span_names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert "engine.run_scenario" in span_names
        assert "engine.step" in span_names
        assert "flow.solve" in span_names
        counter_names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "C"
        }
        assert any(n.startswith("link_util.") for n in counter_names)
        report = json.loads(report_out.read_text())
        assert "engine.step" in report["spans"]

    def test_scenario_trace_out_rides_along(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        code = main([
            "scenario", "--preset", "shared",
            "--set", "jobs.0.iterations=2", "--set", "jobs.1.iterations=2",
            "--set", "jobs.2.iterations=2", "--set", "jobs.3.iterations=2",
            "--trace-out", str(trace_out),
        ])
        assert code == 0
        trace = json.loads(trace_out.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_subcommands_cover_the_dispatch_table(self):
        assert set(SUBCOMMANDS) == {
            "run", "sweep", "compare", "scenario", "serve-batch",
            "cache", "trace", "bench", "bench-smoke", "chaos-smoke",
            "check-docs", "check-examples",
        }


def _cheap_spec_dict():
    """A fixed-strategy, baseline-free spec for service CLI tests."""
    from test_service_store import cheap_spec

    return cheap_spec().to_dict()


class TestServiceCommands:
    def test_serve_batch_dedups_then_serves_from_store(
        self, tmp_path, capsys
    ):
        spec = _cheap_spec_dict()
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(json.dumps(spec) for _ in range(3)) + "\n"
        )
        store = tmp_path / "store"
        code = main([
            "serve-batch", "--requests", str(requests),
            "--store", str(store), "--executor", "thread",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 computed" in out
        assert "2 deduplicated" in out

        # Replay: everything is a store hit now.
        code = main([
            "serve-batch", "--requests", str(requests),
            "--store", str(store), "--executor", "serial",
            "--json", str(tmp_path / "report.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 store hits" in out
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["report"]["store_hits"] == 3
        assert [r["route"] for r in payload["requests"]] == ["store"] * 3

    def test_serve_batch_rejects_bad_request_file(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("this is not json\n")
        code = main(["serve-batch", "--requests", str(requests)])
        assert code == 2
        assert "bad request" in capsys.readouterr().err

    def test_cache_stats_lookup_clear(self, tmp_path, capsys):
        spec = _cheap_spec_dict()
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec))
        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps(spec) + "\n")
        store = tmp_path / "store"
        assert main([
            "serve-batch", "--requests", str(requests),
            "--store", str(store), "--executor", "serial",
        ]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "entries       : 1" in out

        assert main([
            "cache", "lookup", str(spec_file), "--store", str(store),
        ]) == 0
        assert capsys.readouterr().out.startswith("hit ")

        assert main(["cache", "clear", "--store", str(store)]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out

        assert main([
            "cache", "lookup", str(spec_file), "--store", str(store),
        ]) == 0
        assert capsys.readouterr().out.startswith("miss ")

    def test_cache_lookup_requires_a_spec(self, capsys):
        assert main(["cache", "lookup", "--store", "/tmp/x"]) == 2
        assert "SPEC.json" in capsys.readouterr().err

    def test_sweep_store_flag_makes_the_replay_hit(
        self, tmp_path, capsys
    ):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(_cheap_spec_dict()))
        store = tmp_path / "store"
        argv = [
            "sweep", "--spec", str(spec_file),
            "--vary", "seed=0,1", "--executor", "serial",
            "--store", str(store),
        ]
        assert main(argv) == 0
        assert "0 cache hits" in capsys.readouterr().out
        assert main(argv) == 0
        assert "2 cache hits" in capsys.readouterr().out


class TestChaosSmoke:
    def test_chaos_smoke_passes(self, capsys):
        code = main(["chaos-smoke", "--runs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos-smoke ok (2 runs)" in out

    def test_bad_runs_rejected(self, capsys):
        assert main(["chaos-smoke", "--runs", "0"]) == 2


class TestCheckDocs:
    def test_check_docs_passes_on_repo(self, capsys):
        code = main(["check-docs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "check-docs ok" in out
        assert "README.md" in out

    def test_broken_command_reference_fails(self, tmp_path, capsys):
        (tmp_path / "docs").mkdir()
        (tmp_path / "scripts").mkdir()
        (tmp_path / "README.md").write_text(
            "Run `python -m repro.cli frobnicate` and scripts/nope.sh\n"
        )
        code = main(["check-docs", "--root", str(tmp_path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "frobnicate" in err
        assert "nope.sh" in err

    def test_broken_doctest_fails(self, tmp_path, capsys):
        (tmp_path / "docs").mkdir()
        (tmp_path / "scripts").mkdir()
        (tmp_path / "README.md").write_text(
            ">>> 1 + 1\n3\n"
        )
        code = main(["check-docs", "--root", str(tmp_path)])
        assert code == 1
