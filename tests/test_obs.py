"""Tests for the observability plane: tracer, report, exporters.

Covers the zero-overhead-when-disabled contract, span nesting and
ordering, the batching span's deferred materialization, RLE timelines,
the merged ObsReport schema, both exporters, scenario-level
observation (byte-identical results, attached report), the service
executor's request spans, and the percentile edge cases the serving
metrics rely on.
"""

import json
import math
import threading

import pytest

from repro.cluster import ScenarioSpec, run_scenario
from repro.obs import (
    ObsReport,
    RleTimeline,
    SpanEvent,
    TRACER,
    TraceRecorder,
    chrome_trace,
    metrics_jsonl,
)
from repro.obs.export import SIM_PID, WALL_PID
from repro.perf import warmcache
from repro.service.metrics import LatencyRecorder, percentile


def observed_spec(**overrides):
    """The Figure 16 preset shrunk to 2 iterations per job."""
    spec = ScenarioSpec.preset("shared").with_overrides(
        {f"jobs.{i}.iterations": 2 for i in range(4)}
    )
    return spec.with_overrides(overrides) if overrides else spec


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert TRACER.enabled is False
        assert TRACER.recorder is None

    def test_disabled_span_is_shared_noop(self):
        first = TRACER.span("anything", cat="x", arg=1)
        second = TRACER.span("else")
        assert first is second  # one shared object, no allocation
        with first:
            pass  # usable as a context manager

    def test_disabled_batch_span_is_shared_noop(self):
        assert TRACER.batch_span("hot") is TRACER.span("cold")

    def test_disabled_metrics_are_noops(self):
        TRACER.count("nope")
        TRACER.gauge("nope", 1.0)
        TRACER.sample("nope", 0.0, 1.0)
        assert TRACER.recorder is None


class TestSpanNesting:
    def test_depth_and_seq_follow_call_structure(self):
        with TRACER.recording() as rec:
            with TRACER.span("outer", cat="t"):
                with TRACER.span("inner-a", cat="t"):
                    pass
                with TRACER.span("inner-b", cat="t"):
                    with TRACER.span("leaf", cat="t"):
                        pass
        by_seq = sorted(rec.spans, key=lambda s: s.seq)
        # seq is stamped at *enter* time, so it reflects call order,
        # while the spans list holds completion order.
        assert [s.name for s in by_seq] == [
            "outer", "inner-a", "inner-b", "leaf",
        ]
        assert {s.name: s.depth for s in by_seq} == {
            "outer": 0, "inner-a": 1, "inner-b": 1, "leaf": 2,
        }
        assert [s.name for s in rec.spans] == [
            "inner-a", "leaf", "inner-b", "outer",
        ]

    def test_depth_restored_after_exit(self):
        with TRACER.recording() as rec:
            with TRACER.span("first"):
                pass
            with TRACER.span("second"):
                pass
        assert [s.depth for s in rec.spans] == [0, 0]

    def test_span_times_are_ordered(self):
        with TRACER.recording() as rec:
            with TRACER.span("outer"):
                with TRACER.span("inner"):
                    pass
        inner, outer = rec.spans
        assert inner.start_s >= outer.start_s
        assert inner.dur_s <= outer.dur_s
        assert all(s.dur_s >= 0.0 for s in rec.spans)

    def test_span_args_recorded(self):
        with TRACER.recording() as rec:
            with TRACER.span("named", cat="t", job=3, phase="warm"):
                pass
        assert rec.spans[0].args == {"job": 3, "phase": "warm"}
        assert rec.spans[0].cat == "t"

    def test_recording_restores_previous_recorder(self):
        outer_rec = TraceRecorder()
        with TRACER.recording(outer_rec):
            with TRACER.recording() as inner_rec:
                assert TRACER.recorder is inner_rec
                TRACER.count("inner.only")
            assert TRACER.recorder is outer_rec
            TRACER.count("outer.only")
        assert TRACER.recorder is None
        assert "inner.only" not in outer_rec.counters
        assert outer_rec.counters["outer.only"] == 1

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with TRACER.recording():
                raise RuntimeError("boom")
        assert TRACER.recorder is None


class TestBatchSpan:
    def test_materializes_at_flush(self):
        with TRACER.recording() as rec:
            hot = TRACER.batch_span("hot.loop", cat="bench")
            for _ in range(5):
                with hot:
                    pass
            assert rec.spans == []  # nothing recorded in-loop
            rec.flush()
        assert len(rec.spans) == 5
        assert {s.name for s in rec.spans} == {"hot.loop"}
        assert {s.cat for s in rec.spans} == {"bench"}
        assert all(isinstance(s, SpanEvent) for s in rec.spans)

    def test_flush_is_idempotent(self):
        with TRACER.recording() as rec:
            hot = TRACER.batch_span("hot")
            with hot:
                pass
            rec.flush()
            rec.flush()
        assert len(rec.spans) == 1

    def test_inherits_ambient_depth(self):
        with TRACER.recording() as rec:
            with TRACER.span("outer"):
                hot = TRACER.batch_span("nested.hot")
                with hot:
                    pass
            rec.flush()
        depths = {s.name: s.depth for s in rec.spans}
        assert depths["nested.hot"] == depths["outer"] + 1


class TestCountersGaugesTimelines:
    def test_counters_accumulate(self):
        with TRACER.recording() as rec:
            TRACER.count("events")
            TRACER.count("events", 2)
            TRACER.count("bytes", 0.5)
        assert rec.counters == {"events": 3, "bytes": 0.5}

    def test_gauges_keep_last_value(self):
        with TRACER.recording() as rec:
            TRACER.gauge("level", 1.0)
            TRACER.gauge("level", 4.0)
        assert rec.gauges == {"level": 4.0}

    def test_sample_is_run_length_encoded(self):
        with TRACER.recording() as rec:
            for t, v in [(0.0, 1.0), (1.0, 1.0), (2.0, 0.5), (3.0, 0.5)]:
                TRACER.sample("util", t, v)
        assert rec.timelines["util"].to_list() == [[0.0, 1.0], [2.0, 0.5]]
        assert len(rec.timelines["util"]) == 2

    def test_concurrent_bumps_do_not_lose_counts(self):
        rec = TraceRecorder()
        with TRACER.recording(rec):
            threads = [
                threading.Thread(
                    target=lambda: [TRACER.count("hits") for _ in range(500)]
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert rec.counters["hits"] == 2000


class TestPercentileEdges:
    def test_empty_input_maps_to_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample_dominates_every_quantile(self):
        assert percentile([7.5], 0.01) == 7.5
        assert percentile([7.5], 1.0) == 7.5

    def test_p0_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0, 2.0], 0.0)

    def test_above_p100_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0, 2.0], 1.5)

    def test_p100_is_max(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 1.0) == 4.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            percentile([1.0, float("nan")], 0.5)

    def test_nearest_rank_median(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.0

    def test_latency_recorder_snapshot_keys(self):
        recorder = LatencyRecorder()
        for ms in (1, 2, 3):
            recorder.record(ms / 1e3)
        snap = recorder.snapshot()
        assert sorted(snap) == ["p50_ms", "p95_ms", "p99_ms"]
        assert snap["p50_ms"] == 2.0
        assert not any(math.isnan(v) for v in snap.values())


class TestObsReport:
    def test_roundtrip(self):
        with TRACER.recording() as rec:
            with TRACER.span("work", cat="t"):
                TRACER.count("things", 2)
                TRACER.gauge("level", 1.5)
                TRACER.sample("tl", 0.0, 1.0)
        report = ObsReport.build(rec, service={"requests": 3})
        data = report.to_dict()
        again = ObsReport.from_dict(json.loads(json.dumps(data)))
        assert again.to_dict() == data
        assert again.counters == {"things": 2}
        assert again.service == {"requests": 3}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ObsReport.from_dict({"spans": {}, "bogus": 1})

    def test_build_flushes_deferred_producers(self):
        with TRACER.recording() as rec:
            hot = TRACER.batch_span("deferred")
            with hot:
                pass
            report = ObsReport.build(rec)
        assert report.spans["deferred"]["count"] == 1

    def test_span_summary_aggregates(self):
        with TRACER.recording() as rec:
            for _ in range(3):
                with TRACER.span("repeat"):
                    pass
        summary = ObsReport.build(rec).spans["repeat"]
        assert summary["count"] == 3
        assert summary["total_s"] >= summary["max_s"] >= 0.0

    def test_format_lines_rank_hottest_first(self):
        with TRACER.recording() as rec:
            TRACER.count("scheduler.admit", 4)
        report = ObsReport.build(rec)
        lines = report.format_lines()
        assert lines[0] == "observability report"
        assert any("scheduler.admit" in line for line in lines)


class TestExporters:
    def build_recorder(self):
        rec = TraceRecorder()
        with TRACER.recording(rec):
            with TRACER.span("outer", cat="t", tag="x"):
                with TRACER.span("inner", cat="t"):
                    pass
            hot = TRACER.batch_span("hot", cat="t")
            with hot:
                pass
            TRACER.count("events", 2)
            TRACER.gauge("level", 1.0)
            TRACER.sample("util", 0.0, 0.25)
            TRACER.sample("util", 2.0, 0.75)
        return rec

    def test_chrome_trace_structure(self):
        trace = chrome_trace(self.build_recorder())
        events = trace["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        metadata = [e for e in events if e["ph"] == "M"]
        # Batched spans materialize too: the exporter flushes first.
        assert {e["name"] for e in spans} == {"outer", "inner", "hot"}
        assert all(e["pid"] == WALL_PID for e in spans)
        assert [e["args"]["value"] for e in counters] == [0.25, 0.75]
        assert all(e["pid"] == SIM_PID for e in counters)
        assert len(metadata) == 2
        assert trace["otherData"]["counters"] == {"events": 2}
        json.dumps(trace)  # JSON-serializable end to end

    def test_chrome_trace_spans_sorted_by_start(self):
        trace = chrome_trace(self.build_recorder())
        starts = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert starts == sorted(starts)

    def test_metrics_jsonl_lines_parse(self):
        stream = metrics_jsonl(self.build_recorder())
        lines = [json.loads(line) for line in stream.splitlines()]
        kinds = {line["kind"] for line in lines}
        assert kinds == {"span", "counter", "gauge", "timeline"}
        spans = [line for line in lines if line["kind"] == "span"]
        assert {s["name"] for s in spans} == {"outer", "inner", "hot"}
        timeline = [line for line in lines if line["kind"] == "timeline"]
        assert [(p["t"], p["value"]) for p in timeline] == [
            (0.0, 0.25), (2.0, 0.75),
        ]

    def test_empty_recorder_exports_cleanly(self):
        rec = TraceRecorder()
        assert chrome_trace(rec)["traceEvents"][0]["ph"] == "M"
        assert metrics_jsonl(rec) == ""


class TestScenarioObservation:
    def test_observed_result_byte_identical(self):
        # Same spec with and without a recorder: observation must not
        # perturb the simulation (the bench-smoke gate's contract).
        spec = observed_spec()
        plain = run_scenario(spec)
        observed = run_scenario(spec, recorder=TraceRecorder())
        assert (
            json.dumps(plain.to_dict(), sort_keys=True)
            == json.dumps(observed.to_dict(), sort_keys=True)
        )
        assert plain.obs is None
        assert observed.obs is not None

    def test_obs_stays_off_json(self):
        observed = run_scenario(observed_spec(observe=True))
        assert '"obs"' not in json.dumps(observed.to_dict())

    def test_report_covers_hot_planes(self):
        # Cold caches, so the (cache-miss-only) pipeline-build span fires.
        warmcache.clear_all()
        obs = run_scenario(observed_spec(observe=True)).obs
        span_names = set(obs["spans"])
        assert "engine.run_scenario" in span_names
        assert "engine.step" in span_names  # batched, flushed at build
        assert "flow.solve" in span_names
        assert "engine.pipeline_build" in span_names
        assert any(name.startswith("scheduler.") for name in obs["counters"])
        assert any(
            name.startswith("link_util.") for name in obs["timelines"]
        )
        assert "cluster.busy_servers" in obs["timelines"]
        assert obs["gauges"]["engine.sim_now_s"] > 0.0
        assert set(obs["warmcache"]) == {"costmodel", "pipeline"}

    def test_explicit_recorder_receives_the_run(self):
        rec = TraceRecorder()
        run_scenario(observed_spec(), recorder=rec)
        rec.flush()
        assert any(s.name == "engine.step" for s in rec.spans)

    def test_ambient_recorder_leaves_result_unreported(self):
        # With a process-wide recorder already active (bench mode), the
        # run records into it but attaches no per-run report.
        rec = TraceRecorder()
        with TRACER.recording(rec):
            result = run_scenario(observed_spec())
        assert result.obs is None
        rec.flush()
        assert any(s.name == "flow.solve" for s in rec.spans)

    def test_utilization_timeline_values_bounded(self):
        obs = run_scenario(observed_spec(observe=True)).obs
        for name, points in obs["timelines"].items():
            if not name.startswith("link_util."):
                continue
            assert points, f"{name} has no samples"
            for t, value in points:
                assert t >= 0.0
                assert 0.0 <= value


class TestWarmcacheStats:
    def test_stats_are_deep_snapshots(self):
        cache = warmcache.WarmCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        before = cache.stats()
        cache.get_or_build("a", lambda: "A")
        assert before["hits"] == 0  # snapshot detached from live cache
        assert cache.stats()["hits"] == 1

    def test_reset_stats_keeps_entries_warm(self):
        cache = warmcache.WarmCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.reset_stats()
        assert len(cache) == 1
        assert cache.stats()["misses"] == 0
        calls = []
        cache.get_or_build("a", lambda: calls.append(1) or "A")
        assert calls == []  # still warm: no rebuild after reset

    def test_module_reset_stats_zeroes_all_caches(self):
        warmcache.PIPELINE_CACHE.get_or_build("obs-test", lambda: object())
        warmcache.reset_stats()
        stats = warmcache.stats()
        assert all(
            entry["hits"] == 0 and entry["misses"] == 0
            for entry in stats.values()
        )
        warmcache.PIPELINE_CACHE.clear()
