"""Integration tests for the shared-cluster simulator (section 5.6)."""

import numpy as np
import pytest

from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.network.fattree import IdealSwitchFabric
from repro.network.topoopt import TopoOptFabric
from repro.parallel.traffic import TrafficSummary
from repro.sim.cluster import (
    JobSpec,
    SharedClusterSimulator,
    iteration_time_stats,
    remap_traffic,
)

GBPS = 1e9


def dp_traffic(n, total_bytes):
    return TrafficSummary(
        n=n,
        allreduce_groups=[
            AllReduceGroup(members=tuple(range(n)), total_bytes=total_bytes)
        ],
        mp_matrix=np.zeros((n, n)),
    )


def topoopt_shard_job(name, server_map, total_bytes, compute_s, bandwidth):
    k = len(server_map)
    local_traffic = dp_traffic(k, total_bytes)
    result = topology_finder(k, 2, local_traffic.allreduce_groups)
    fabric = TopoOptFabric(result, bandwidth).relabel(server_map)
    return JobSpec(
        name=name,
        traffic=remap_traffic(local_traffic, server_map),
        compute_s=compute_s,
        fabric=fabric,
    )


class TestRemapTraffic:
    def test_group_members_translated(self):
        traffic = dp_traffic(4, 100.0)
        remapped = remap_traffic(traffic, [10, 11, 12, 13])
        assert remapped.allreduce_groups[0].members == (10, 11, 12, 13)

    def test_mp_matrix_translated(self):
        traffic = dp_traffic(2, 0.0)
        traffic.mp_matrix[0, 1] = 55.0
        remapped = remap_traffic(traffic, [4, 7])
        assert remapped.mp_matrix[4, 7] == 55.0
        assert remapped.n == 8


class TestSharding:
    def test_isolated_shards_do_not_interfere(self):
        # Two TopoOpt shards with disjoint servers: each job's iteration
        # time equals its dedicated-run time.
        bandwidth = 25 * GBPS
        job_a = topoopt_shard_job("a", [0, 1, 2, 3], 1e9, 0.01, bandwidth)
        job_b = topoopt_shard_job("b", [4, 5, 6, 7], 1e9, 0.01, bandwidth)
        capacities = {}
        capacities.update(job_a.fabric.capacities())
        capacities.update(job_b.fabric.capacities())
        sim = SharedClusterSimulator(capacities, [job_a, job_b], seed=1)
        stats = sim.run(iterations_per_job=3)
        solo = _solo_iteration_time(job_a)
        for job_stats in stats:
            for t in job_stats.iteration_times[1:]:
                assert t == pytest.approx(solo, rel=0.05)

    def test_shared_switch_contends(self):
        # Both jobs on one shared switch core: iterations slower than solo.
        n = 8
        fabric = IdealSwitchFabric(n, 2, 25 * GBPS)
        t_a = dp_traffic(n, 0.0)
        t_b = dp_traffic(n, 0.0)
        # Jobs share the same servers' uplinks (worst-case contention).
        for t in (t_a, t_b):
            t.allreduce_groups = [
                AllReduceGroup(members=tuple(range(n)), total_bytes=1e9)
            ]
        job_a = JobSpec("a", t_a, 0.001, fabric)
        job_b = JobSpec("b", t_b, 0.001, fabric)
        sim = SharedClusterSimulator(
            fabric.capacities(), [job_a, job_b], seed=1
        )
        stats = sim.run(iterations_per_job=3)
        solo = _solo_iteration_time(job_a)
        avg, _ = iteration_time_stats(stats)
        assert avg > solo


def _solo_iteration_time(job):
    sim = SharedClusterSimulator(
        dict(job.fabric.capacities()), [job], seed=0
    )
    stats = sim.run(iterations_per_job=3)
    return stats[0].iteration_times[-1]


class TestStats:
    def test_iteration_stats_skip_first(self):
        from repro.sim.cluster import JobStats

        stats = [JobStats(name="a", iteration_times=[10.0, 1.0, 1.0])]
        avg, p99 = iteration_time_stats(stats)
        assert avg == pytest.approx(1.0)

    def test_empty_samples_rejected(self):
        from repro.sim.cluster import JobStats

        with pytest.raises(ValueError):
            iteration_time_stats([JobStats(name="a", iteration_times=[1.0])])

    def test_needs_jobs(self):
        # Constructing empty is legal (dynamic-membership mode); running
        # a batch simulation without jobs is not.
        with pytest.raises(ValueError):
            SharedClusterSimulator({(0, 1): GBPS}, []).run()

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            SharedClusterSimulator({(0, 1): GBPS}, [], solver="quantum")


class TestDeterminism:
    def _run(self, seed, stagger=True, solver="kernel"):
        n = 8
        fabric = IdealSwitchFabric(n, 2, 25 * GBPS)
        jobs = [
            JobSpec("a", dp_traffic(n, 1e9), 0.001, fabric),
            JobSpec("b", dp_traffic(n, 1.5e9), 0.002, fabric),
        ]
        sim = SharedClusterSimulator(
            fabric.capacities(), jobs, seed=seed,
            stagger=stagger, solver=solver,
        )
        return [tuple(s.iteration_times) for s in sim.run(3)]

    def test_same_seed_bit_identical(self):
        # The RNG is per-simulation and every reduction is insertion-
        # ordered, so two in-process runs replay exactly.
        assert self._run(seed=7) == self._run(seed=7)

    def test_seed_changes_stagger(self):
        assert self._run(seed=1) != self._run(seed=2)

    def test_stagger_off_removes_rng(self):
        # Without the stagger the seed is inert: any two seeds agree.
        assert self._run(3, stagger=False) == self._run(4, stagger=False)

    def test_reference_solver_matches_kernel(self):
        kernel = self._run(5, stagger=False)
        reference = self._run(5, stagger=False, solver="reference")
        for k_job, r_job in zip(kernel, reference):
            for k_t, r_t in zip(k_job, r_job):
                assert k_t == pytest.approx(r_t, rel=1e-9)


class TestDynamicMembership:
    def test_run_after_add_job_does_not_double_start(self):
        # run() must not schedule a second compute timer for jobs that
        # add_job() already started (that would interleave two
        # iteration pipelines and corrupt iteration times).
        n = 8
        fabric = IdealSwitchFabric(n, 2, 25 * GBPS)
        job = JobSpec("a", dp_traffic(n, 1e9), 0.001, fabric)

        batch = SharedClusterSimulator(
            fabric.capacities(), [job], seed=0, stagger=False
        )
        expected = batch.run(3)[0].iteration_times

        dynamic = SharedClusterSimulator(
            fabric.capacities(), seed=0, stagger=False
        )
        dynamic.add_job(
            JobSpec("a", dp_traffic(n, 1e9), 0.001, fabric), start=0.0
        )
        got = dynamic.run(3)[0].iteration_times
        assert got == pytest.approx(expected)

    def test_remove_job_matches_by_identity_not_equality(self):
        # Two dynamically added jobs with identical specs compare equal
        # as dataclasses; remove_job must detach exactly the instance
        # it was given, not the first equal one.
        n = 4
        fabric = IdealSwitchFabric(n, 2, 25 * GBPS)
        sim = SharedClusterSimulator(
            fabric.capacities(), seed=0, stagger=False
        )
        job = JobSpec("twin", dp_traffic(n, 1e9), 0.001, fabric)
        first = sim.add_job(job, start=0.0)
        second = sim.add_job(job, start=0.0)
        sim.remove_job(second)
        assert sim.states == [first]
        assert any(s is first for s in sim.states)
        # The survivor still has its timer and makes progress.
        while len(first.stats.iteration_times) < 1:
            sim.advance_to(sim.next_event_time())
        assert first.stats.iteration_times

    def test_add_and_remove_mid_run(self):
        n = 8
        fabric = IdealSwitchFabric(n, 2, 25 * GBPS)
        sim = SharedClusterSimulator(
            fabric.capacities(), seed=0, stagger=False
        )
        job_a = JobSpec("a", dp_traffic(n, 1e9), 0.001, fabric)
        job_b = JobSpec("b", dp_traffic(n, 1e9), 0.001, fabric)
        state_a = sim.add_job(job_a, start=0.0)
        finished = []
        while len(state_a.stats.iteration_times) < 2:
            finished = sim.advance_to(sim.next_event_time())
        # Admit a second job mid-flight, then complete one of its
        # iterations too.
        state_b = sim.add_job(job_b)
        while len(state_b.stats.iteration_times) < 1:
            sim.advance_to(sim.next_event_time())
        assert state_b.stats.iteration_times
        sim.remove_job(state_b)
        assert state_b not in sim.states
        # No orphaned flows or timers for the removed job.
        assert all(owner is state_a for owner in sim._flow_owner.values())
        assert all(s is state_a for _, s in sim._timers)
        # The survivor keeps progressing.
        before = len(state_a.stats.iteration_times)
        for _ in range(40):
            t = sim.next_event_time()
            if t is None or len(state_a.stats.iteration_times) > before:
                break
            sim.advance_to(t)
        assert len(state_a.stats.iteration_times) > before
