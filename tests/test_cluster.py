"""Integration tests for the shared-cluster simulator (section 5.6)."""

import numpy as np
import pytest

from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.network.fattree import IdealSwitchFabric
from repro.network.topoopt import TopoOptFabric
from repro.parallel.traffic import TrafficSummary
from repro.sim.cluster import (
    JobSpec,
    SharedClusterSimulator,
    iteration_time_stats,
    remap_traffic,
)

GBPS = 1e9


def dp_traffic(n, total_bytes):
    return TrafficSummary(
        n=n,
        allreduce_groups=[
            AllReduceGroup(members=tuple(range(n)), total_bytes=total_bytes)
        ],
        mp_matrix=np.zeros((n, n)),
    )


def topoopt_shard_job(name, server_map, total_bytes, compute_s, bandwidth):
    k = len(server_map)
    local_traffic = dp_traffic(k, total_bytes)
    result = topology_finder(k, 2, local_traffic.allreduce_groups)
    fabric = TopoOptFabric(result, bandwidth).relabel(server_map)
    return JobSpec(
        name=name,
        traffic=remap_traffic(local_traffic, server_map),
        compute_s=compute_s,
        fabric=fabric,
    )


class TestRemapTraffic:
    def test_group_members_translated(self):
        traffic = dp_traffic(4, 100.0)
        remapped = remap_traffic(traffic, [10, 11, 12, 13])
        assert remapped.allreduce_groups[0].members == (10, 11, 12, 13)

    def test_mp_matrix_translated(self):
        traffic = dp_traffic(2, 0.0)
        traffic.mp_matrix[0, 1] = 55.0
        remapped = remap_traffic(traffic, [4, 7])
        assert remapped.mp_matrix[4, 7] == 55.0
        assert remapped.n == 8


class TestSharding:
    def test_isolated_shards_do_not_interfere(self):
        # Two TopoOpt shards with disjoint servers: each job's iteration
        # time equals its dedicated-run time.
        bandwidth = 25 * GBPS
        job_a = topoopt_shard_job("a", [0, 1, 2, 3], 1e9, 0.01, bandwidth)
        job_b = topoopt_shard_job("b", [4, 5, 6, 7], 1e9, 0.01, bandwidth)
        capacities = {}
        capacities.update(job_a.fabric.capacities())
        capacities.update(job_b.fabric.capacities())
        sim = SharedClusterSimulator(capacities, [job_a, job_b], seed=1)
        stats = sim.run(iterations_per_job=3)
        solo = _solo_iteration_time(job_a)
        for job_stats in stats:
            for t in job_stats.iteration_times[1:]:
                assert t == pytest.approx(solo, rel=0.05)

    def test_shared_switch_contends(self):
        # Both jobs on one shared switch core: iterations slower than solo.
        n = 8
        fabric = IdealSwitchFabric(n, 2, 25 * GBPS)
        t_a = dp_traffic(n, 0.0)
        t_b = dp_traffic(n, 0.0)
        # Jobs share the same servers' uplinks (worst-case contention).
        for t in (t_a, t_b):
            t.allreduce_groups = [
                AllReduceGroup(members=tuple(range(n)), total_bytes=1e9)
            ]
        job_a = JobSpec("a", t_a, 0.001, fabric)
        job_b = JobSpec("b", t_b, 0.001, fabric)
        sim = SharedClusterSimulator(
            fabric.capacities(), [job_a, job_b], seed=1
        )
        stats = sim.run(iterations_per_job=3)
        solo = _solo_iteration_time(job_a)
        avg, _ = iteration_time_stats(stats)
        assert avg > solo


def _solo_iteration_time(job):
    sim = SharedClusterSimulator(
        dict(job.fabric.capacities()), [job], seed=0
    )
    stats = sim.run(iterations_per_job=3)
    return stats[0].iteration_times[-1]


class TestStats:
    def test_iteration_stats_skip_first(self):
        from repro.sim.cluster import JobStats

        stats = [JobStats(name="a", iteration_times=[10.0, 1.0, 1.0])]
        avg, p99 = iteration_time_stats(stats)
        assert avg == pytest.approx(1.0)

    def test_empty_samples_rejected(self):
        from repro.sim.cluster import JobStats

        with pytest.raises(ValueError):
            iteration_time_stats([JobStats(name="a", iteration_times=[1.0])])

    def test_needs_jobs(self):
        with pytest.raises(ValueError):
            SharedClusterSimulator({(0, 1): GBPS}, [])
