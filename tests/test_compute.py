"""Unit tests for the roofline compute model."""

import pytest

from repro.models import A100, GPUSpec, build_resnet50, compute_time_seconds
from repro.models.compute import layer_compute_time_seconds


class TestGPUSpec:
    def test_effective_flops(self):
        gpu = GPUSpec("x", 100e12, 0.5)
        assert gpu.effective_flops == 50e12

    def test_a100_constants(self):
        assert A100.peak_flops == 312e12
        assert 0 < A100.efficiency <= 1

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec("x", 1e12, 1.5)
        with pytest.raises(ValueError):
            GPUSpec("x", 1e12, 0.0)

    def test_invalid_peak_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec("x", 0.0, 0.5)


class TestComputeTime:
    def test_scales_with_batch(self):
        model = build_resnet50()
        t1 = compute_time_seconds(model, 32)
        t2 = compute_time_seconds(model, 64)
        assert t2 > t1
        # Linear in batch up to the fixed overhead.
        assert (t2 - A100.per_iteration_overhead_s) == pytest.approx(
            2 * (t1 - A100.per_iteration_overhead_s)
        )

    def test_includes_backward_multiplier(self):
        model = build_resnet50()
        gpu = GPUSpec("x", 1e15, 1.0, per_iteration_overhead_s=0.0)
        t = compute_time_seconds(model, 1, gpus_per_server=1, gpu=gpu)
        expected = model.total_flops_per_sample * 3.0 / 1e15
        assert t == pytest.approx(expected)

    def test_resnet_magnitude_plausible(self):
        # ResNet50 at batch 128 on an A100 takes on the order of 0.1-0.5s.
        t = compute_time_seconds(build_resnet50(), 128)
        assert 0.005 < t < 1.0

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            compute_time_seconds(build_resnet50(), 0)

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ValueError):
            compute_time_seconds(build_resnet50(), 8, gpus_per_server=0)


class TestLayerComputeTime:
    def test_forward_backward_accounting(self):
        gpu = GPUSpec("x", 1e12, 1.0, per_iteration_overhead_s=0.0)
        t = layer_compute_time_seconds(1e9, 10, gpu)
        assert t == pytest.approx(1e9 * 10 * 3 / 1e12)

    def test_zero_flops_layer(self):
        assert layer_compute_time_seconds(0.0, 100) == 0.0
