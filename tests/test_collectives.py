"""Unit tests for collective algorithms and their traffic."""

import numpy as np
import pytest

from repro.parallel.collectives import (
    CollectiveAlgorithm,
    allreduce_edge_bytes,
    allreduce_time_lower_bound,
    collective_traffic,
    multi_ring_edges,
)


class TestAllReduceEdgeBytes:
    def test_ring_formula(self):
        assert allreduce_edge_bytes(1000.0, 4) == pytest.approx(
            2 * 3 / 4 * 1000.0
        )

    def test_multi_ring_split(self):
        single = allreduce_edge_bytes(1000.0, 8, 1)
        quad = allreduce_edge_bytes(1000.0, 8, 4)
        assert quad == pytest.approx(single / 4)

    def test_trivial_group(self):
        assert allreduce_edge_bytes(1000.0, 1) == 0.0

    def test_invalid_rings_rejected(self):
        with pytest.raises(ValueError):
            allreduce_edge_bytes(1000.0, 4, 0)


class TestTimeLowerBound:
    def test_matches_formula(self):
        t = allreduce_time_lower_bound(1e9, 8, 100e9)
        assert t == pytest.approx(2 * 7 / 8 * 1e9 * 8 / 100e9)

    def test_zero_for_singleton(self):
        assert allreduce_time_lower_bound(1e9, 1, 100e9) == 0.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            allreduce_time_lower_bound(1e9, 4, 0.0)


class TestCollectiveTraffic:
    @pytest.mark.parametrize(
        "algorithm",
        [
            CollectiveAlgorithm.RING,
            CollectiveAlgorithm.MULTI_RING,
            CollectiveAlgorithm.DOUBLE_BINARY_TREE,
            CollectiveAlgorithm.HIERARCHICAL_RING,
            CollectiveAlgorithm.PARAMETER_SERVER,
        ],
    )
    def test_traffic_positive_for_all_algorithms(self, algorithm):
        matrix = collective_traffic(
            algorithm, list(range(8)), 1000.0, 8, strides=[1, 3]
        )
        assert matrix.sum() > 0

    def test_ring_uses_first_stride(self):
        matrix = collective_traffic(
            CollectiveAlgorithm.RING, list(range(8)), 100.0, 8, strides=[3]
        )
        assert matrix[0, 3] > 0 and matrix[0, 1] == 0

    def test_parameter_server_symmetric_many_to_many(self):
        matrix = collective_traffic(
            CollectiveAlgorithm.PARAMETER_SERVER, list(range(4)), 100.0, 4
        )
        off = matrix[~np.eye(4, dtype=bool)]
        assert (off > 0).all()
        assert np.allclose(matrix, matrix.T)

    def test_parameter_server_volume_matches_ring_aggregate(self):
        # PS per-member in/out volume equals ring's 2 (k-1)/k S.
        k, total = 4, 100.0
        matrix = collective_traffic(
            CollectiveAlgorithm.PARAMETER_SERVER, list(range(k)), total, k
        )
        per_member_out = matrix[0].sum()
        assert per_member_out == pytest.approx(2 * (k - 1) / k * total)

    def test_hierarchical_has_leader_ring(self):
        matrix = collective_traffic(
            CollectiveAlgorithm.HIERARCHICAL_RING,
            list(range(16)),
            100.0,
            16,
        )
        # Pod leaders 0, 4, 8, 12 exchange data.
        assert matrix[0, 4] > 0

    def test_small_group_empty(self):
        matrix = collective_traffic(
            CollectiveAlgorithm.RING, [3], 100.0, 8
        )
        assert matrix.sum() == 0.0


class TestMultiRingEdges:
    def test_shares_sum_to_ring_count(self):
        edges = multi_ring_edges(list(range(8)), [1, 3])
        # Each ring contributes 8 edges with share 1/2.
        assert sum(edges.values()) == pytest.approx(8.0)

    def test_single_ring_full_share(self):
        edges = multi_ring_edges(list(range(4)), [1])
        assert all(v == pytest.approx(1.0) for v in edges.values())

    def test_empty_strides_rejected(self):
        with pytest.raises(ValueError):
            multi_ring_edges(list(range(4)), [])
