"""Unit tests for optical devices (Table 1, Appendices B and C)."""

import pytest

from repro.network.optical import (
    CircuitConflictError,
    LookAheadSwitch,
    OPTICAL_TECHNOLOGIES,
    OpticalCircuitSwitch,
    OpticalPatchPanel,
)


class TestTechnologyTable:
    def test_table1_rows_present(self):
        expected = {
            "patch_panel",
            "3d_mems",
            "2d_mems",
            "silicon_photonics",
            "tunable_lasers",
            "rotornet",
        }
        assert set(OPTICAL_TECHNOLOGIES) == expected

    def test_patch_panel_figures(self):
        tech = OPTICAL_TECHNOLOGIES["patch_panel"]
        assert tech.port_count == 1008
        assert tech.cost_per_port_usd == 100.0
        assert tech.commercially_available

    def test_mems_reconfiguration_latency(self):
        assert OPTICAL_TECHNOLOGIES["3d_mems"].reconfiguration_latency_s == (
            pytest.approx(10e-3)
        )

    def test_futuristic_techs_not_commercial(self):
        for key in ("2d_mems", "silicon_photonics", "tunable_lasers"):
            tech = OPTICAL_TECHNOLOGIES[key]
            assert not tech.commercially_available
            assert tech.cost_per_port_usd is None

    def test_latency_ordering(self):
        # Table 1's spread: patch panel (minutes) down to tunable lasers (ns).
        latencies = [
            OPTICAL_TECHNOLOGIES[k].reconfiguration_latency_s
            for k in ("patch_panel", "3d_mems", "2d_mems", "tunable_lasers")
        ]
        assert latencies == sorted(latencies, reverse=True)


class TestCircuitDevice:
    def test_connect_and_peer(self):
        panel = OpticalPatchPanel(8)
        panel.connect(0, 5)
        assert panel.peer(0) == 5

    def test_ingress_conflict_rejected(self):
        panel = OpticalPatchPanel(8)
        panel.connect(0, 5)
        with pytest.raises(CircuitConflictError):
            panel.connect(0, 3)

    def test_egress_conflict_rejected(self):
        panel = OpticalPatchPanel(8)
        panel.connect(0, 5)
        with pytest.raises(CircuitConflictError):
            panel.connect(2, 5)

    def test_disconnect_frees_ports(self):
        panel = OpticalPatchPanel(8)
        panel.connect(0, 5)
        panel.disconnect(0)
        panel.connect(0, 3)
        panel.connect(2, 5)

    def test_disconnect_missing_raises(self):
        panel = OpticalPatchPanel(8)
        with pytest.raises(KeyError):
            panel.disconnect(0)

    def test_reconfigure_atomic_validation(self):
        panel = OpticalPatchPanel(8)
        panel.connect(0, 1)
        with pytest.raises(CircuitConflictError):
            panel.reconfigure([(0, 1), (0, 2)])
        # Failed reconfigure left the old circuit intact.
        assert panel.peer(0) == 1

    def test_reconfigure_replaces_everything(self):
        panel = OpticalPatchPanel(8)
        panel.connect(0, 1)
        latency = panel.reconfigure([(2, 3), (4, 5)])
        assert panel.peer(0) is None
        assert panel.peer(2) == 3
        assert latency == panel.reconfiguration_latency_s
        assert panel.reconfigurations == 1

    def test_port_range_checked(self):
        panel = OpticalPatchPanel(4)
        with pytest.raises(ValueError):
            panel.connect(0, 4)

    def test_ocs_faster_than_panel(self):
        assert (
            OpticalCircuitSwitch(8).reconfiguration_latency_s
            < OpticalPatchPanel(8).reconfiguration_latency_s
        )


class TestLookAheadSwitch:
    def test_flip_requires_provisioning(self):
        switch = LookAheadSwitch(num_interfaces=4)
        with pytest.raises(RuntimeError):
            switch.flip()

    def test_provision_then_flip(self):
        switch = LookAheadSwitch(num_interfaces=4)
        switch.provision_next([(0, 1), (2, 3)])
        old_active = switch.active_plane
        latency = switch.flip()
        assert switch.active_plane != old_active
        assert latency == switch.flip_latency_s
        assert switch.active_circuits() == [(0, 1), (2, 3)]

    def test_job_switch_latency_hides_robot(self):
        # Appendix C's point: the job-visible latency is the 1x2 flip
        # (ms), not the patch panel's minutes.
        switch = LookAheadSwitch(num_interfaces=4)
        provision_latency = switch.provision_next([(0, 1)])
        assert switch.effective_job_switch_latency() < provision_latency

    def test_double_flip_requires_reprovision(self):
        switch = LookAheadSwitch(num_interfaces=4)
        switch.provision_next([(0, 1)])
        switch.flip()
        with pytest.raises(RuntimeError):
            switch.flip()

    def test_measured_insertion_loss(self):
        # The paper measured 0.73 dB on the prototype's 1x2 switches.
        assert LookAheadSwitch(num_interfaces=4).insertion_loss_db == 0.73
