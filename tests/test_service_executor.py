"""Tests for the deduplicating batch executor and service metrics."""

import threading
import time

import pytest

import repro.api.runner as runner_mod
from repro.api.runner import run_experiment
from repro.service import (
    BatchExecutor,
    ResultStore,
    ServiceCounters,
    ServiceError,
    ServiceReport,
    percentile,
)

from test_service_store import cheap_spec


@pytest.fixture(scope="module")
def real_result():
    """One real result to hand back from fake compute functions."""
    return run_experiment(cheap_spec())


class TestDeduplication:
    def test_concurrent_duplicates_compute_exactly_once(
        self, monkeypatch, real_result
    ):
        """The acceptance criterion: N identical in-flight submissions
        coalesce onto one computation, proven by the counters."""
        calls = []

        def slow_compute(spec):
            calls.append(spec.content_hash())
            time.sleep(0.2)
            return real_result

        monkeypatch.setattr(runner_mod, "run_experiment", slow_compute)
        spec = cheap_spec()
        with BatchExecutor(executor="thread", max_workers=4) as service:
            requests = [service.submit(spec) for _ in range(6)]
            results = [request.result() for request in requests]
            report = service.report()
        assert len(calls) == 1
        assert report.computed == 1
        assert report.deduplicated == 5
        assert report.requests == 6
        assert [request.route for request in requests] == (
            ["compute"] + ["dedup"] * 5
        )
        assert all(result is results[0] for result in results)

    def test_counters_partition_requests(self, monkeypatch, real_result):
        monkeypatch.setattr(
            runner_mod, "run_experiment", lambda spec: real_result
        )
        store = ResultStore()
        with BatchExecutor(store=store, executor="serial") as service:
            service.submit(cheap_spec(seed=0)).result()
            service.submit(cheap_spec(seed=0)).result()  # store hit
            service.submit(cheap_spec(seed=1)).result()
            report = service.report()
        assert report.requests == 3
        assert (
            report.store_hits + report.deduplicated + report.computed
            == report.requests
        )
        assert report.store_hits == 1
        assert report.computed == 2


class TestStoreFirstAdmission:
    def test_prepopulated_store_skips_the_pool(self, real_result):
        spec = cheap_spec()
        store = ResultStore()
        store.put(spec, real_result)

        with BatchExecutor(store=store, executor="serial") as service:
            request = service.submit(spec)
            assert request.route == "store"
            assert request.result() is real_result
            assert service.report().computed == 0

    def test_fresh_results_are_written_back(
        self, monkeypatch, real_result, tmp_path
    ):
        monkeypatch.setattr(
            runner_mod, "run_experiment", lambda spec: real_result
        )
        spec = cheap_spec()
        store = ResultStore(tmp_path)
        with BatchExecutor(store=store, executor="serial") as service:
            service.submit(spec).result()
        assert store.stats()["puts"] == 1
        assert ResultStore(tmp_path).contains(spec)


class TestFailureContainment:
    def test_in_request_error_fails_fast_no_retry(self, monkeypatch):
        """A deterministic in-request exception must not be retried --
        the same spec would just fail the same way again."""

        def broken(spec):
            raise RuntimeError("pipeline exploded")

        monkeypatch.setattr(runner_mod, "run_experiment", broken)
        with BatchExecutor(executor="serial", retries=3) as service:
            request = service.submit(cheap_spec())
            with pytest.raises(ServiceError, match="pipeline exploded"):
                request.result()
            report = service.report()
        assert report.errors == 1
        assert report.retries == 0

    def test_failed_key_leaves_no_stale_inflight_entry(
        self, monkeypatch, real_result
    ):
        attempts = []

        def flaky(spec):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first time hurts")
            return real_result

        monkeypatch.setattr(runner_mod, "run_experiment", flaky)
        spec = cheap_spec()
        with BatchExecutor(executor="serial") as service:
            with pytest.raises(ServiceError):
                service.submit(spec).result()
            # The failed computation must be retired, so a fresh
            # submission recomputes rather than joining a dead future.
            assert service.submit(spec).result() is real_result

    def test_timeout_then_retries_then_error(self, monkeypatch):
        def hang(spec):
            time.sleep(0.5)
            return None

        monkeypatch.setattr(runner_mod, "run_experiment", hang)
        with BatchExecutor(
            executor="thread", max_workers=2,
            point_timeout_s=0.05, retries=1,
        ) as service:
            request = service.submit(cheap_spec())
            with pytest.raises(ServiceError, match="point_timeout_s"):
                request.result()
            report = service.report()
        assert report.timeouts == 2  # initial attempt + one retry
        assert report.retries == 1
        assert report.errors == 1


class TestBackpressure:
    def test_queue_depth_bounds_admission(self, monkeypatch, real_result):
        """With queue_depth=1, a second distinct submission blocks
        until the first computation resolves -- bounded queue, not an
        unbounded submit firehose."""

        def slow_compute(spec):
            time.sleep(0.15)
            return real_result

        monkeypatch.setattr(runner_mod, "run_experiment", slow_compute)
        with BatchExecutor(
            executor="thread", max_workers=2, queue_depth=1
        ) as service:
            service.submit(cheap_spec(seed=0))
            started = time.monotonic()
            second = service.submit(cheap_spec(seed=1))
            blocked_s = time.monotonic() - started
            second.result()
        assert blocked_s >= 0.1

    def test_duplicates_do_not_consume_queue_slots(
        self, monkeypatch, real_result
    ):
        """Dedup waiters attach without acquiring the semaphore, so a
        hot key cannot deadlock a depth-1 queue."""

        def slow_compute(spec):
            time.sleep(0.15)
            return real_result

        monkeypatch.setattr(runner_mod, "run_experiment", slow_compute)
        spec = cheap_spec()
        with BatchExecutor(
            executor="thread", max_workers=2, queue_depth=1
        ) as service:
            started = time.monotonic()
            requests = [service.submit(spec) for _ in range(4)]
            submit_s = time.monotonic() - started
            for request in requests:
                request.result()
        assert submit_s < 0.1  # all four admitted while one computes


class TestRealPools:
    def test_process_pool_end_to_end(self):
        """Real process pool, real pipeline: dedup + store + warm-cache
        export all survive pickling."""
        spec = cheap_spec()
        other = cheap_spec(seed=1)
        store = ResultStore()
        with BatchExecutor(
            store=store, executor="process", max_workers=2,
            warm_specs=[spec],
        ) as service:
            requests = service.drain([spec, other, spec])
            report = service.report()
        assert all(req.future.exception() is None for req in requests)
        assert report.errors == 0
        assert report.computed + report.store_hits + report.deduplicated == 3
        assert report.computed <= 2
        assert report.warm_cache.get("workers", 0) >= 1

    def test_serial_executor_runs_inline(self):
        with BatchExecutor(executor="serial") as service:
            result = service.submit(cheap_spec()).result()
        assert result.spec.name == "store-test-0"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchExecutor(executor="fiber")
        with pytest.raises(ValueError):
            BatchExecutor(executor="serial", queue_depth=0)
        with pytest.raises(ValueError):
            BatchExecutor(executor="serial", retries=-1)

    def test_submit_after_shutdown_raises(self):
        service = BatchExecutor(executor="serial")
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit(cheap_spec())


class TestMetrics:
    def test_unknown_counter_rejected(self):
        counters = ServiceCounters()
        with pytest.raises(KeyError):
            counters.bump("cosmic_rays")

    def test_percentile_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 0.0)

    def test_report_round_trips_and_formats(
        self, monkeypatch, real_result
    ):
        monkeypatch.setattr(
            runner_mod, "run_experiment", lambda spec: real_result
        )
        with BatchExecutor(
            store=ResultStore(), executor="serial"
        ) as service:
            service.drain([cheap_spec(), cheap_spec()])
            report = service.report()
        again = ServiceReport.from_dict(report.to_dict())
        assert again == report
        assert 0.0 <= report.hit_rate <= 1.0
        text = "\n".join(report.format_lines())
        assert "specs/s" in text and "p99" in text
