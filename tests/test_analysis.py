"""Unit tests for the analysis utilities (metrics, CDFs, heatmaps)."""

import numpy as np
import pytest

from repro.analysis.cdf import empirical_cdf
from repro.analysis.heatmap import (
    diagonal_offsets,
    heatmap_summary,
    render_heatmap,
)
from repro.analysis.metrics import (
    average_path_length,
    bandwidth_tax,
    link_traffic_distribution,
    load_imbalance,
    path_length_cdf,
    routed_link_bytes,
)


def direct_paths(src, dst):
    return [[src, dst]]


def two_hop_paths(src, dst):
    relay = (src + 1) % 4 if (src + 1) % 4 not in (src, dst) else (src + 2) % 4
    return [[src, relay, dst]]


class TestRoutedLinkBytes:
    def test_direct_routing(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 100.0
        totals = routed_link_bytes(matrix, direct_paths)
        assert totals == {(0, 1): 100.0}

    def test_split_across_paths(self):
        matrix = np.zeros((3, 3))
        matrix[0, 2] = 100.0
        totals = routed_link_bytes(
            matrix, lambda s, d: [[0, 1, 2], [0, 2]]
        )
        assert totals[(0, 2)] == pytest.approx(50.0)
        assert totals[(0, 1)] == pytest.approx(50.0)

    def test_missing_path_raises(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 1.0
        with pytest.raises(ValueError):
            routed_link_bytes(matrix, lambda s, d: [])


class TestBandwidthTax:
    def test_direct_routing_tax_one(self):
        matrix = np.ones((4, 4)) - np.eye(4)
        assert bandwidth_tax(matrix, direct_paths) == pytest.approx(1.0)

    def test_two_hop_tax_two(self):
        matrix = np.zeros((4, 4))
        matrix[0, 2] = 100.0
        assert bandwidth_tax(
            matrix, lambda s, d: [[0, 1, 2]]
        ) == pytest.approx(2.0)

    def test_switch_hops_do_not_count(self):
        # Path through switch nodes (ids >= server_count) stays tax 1,
        # the Fat-tree property of section 5.4.
        matrix = np.zeros((4, 4))
        matrix[0, 2] = 100.0
        tax = bandwidth_tax(
            matrix, lambda s, d: [[0, 7, 9, 2]], server_count=4
        )
        assert tax == pytest.approx(1.0)

    def test_empty_demand_tax_one(self):
        assert bandwidth_tax(np.zeros((3, 3)), direct_paths) == 1.0

    def test_mixed_traffic_weighted(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = 100.0  # direct
        matrix[0, 2] = 100.0  # 2 hops
        tax = bandwidth_tax(
            matrix,
            lambda s, d: [[0, 1]] if d == 1 else [[0, 3, 2]],
        )
        assert tax == pytest.approx(1.5)


class TestPathLengths:
    def test_cdf_counts_pairs(self):
        lengths = path_length_cdf(direct_paths, 4)
        assert len(lengths) == 12
        assert set(lengths) == {1}

    def test_average(self):
        assert average_path_length(direct_paths, 4) == 1.0


class TestLinkDistribution:
    def test_sorted_output(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 10.0
        matrix[1, 2] = 30.0
        loads = link_traffic_distribution(matrix, direct_paths)
        assert loads == [10.0, 30.0]

    def test_load_imbalance(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 10.0
        matrix[1, 2] = 40.0
        assert load_imbalance(matrix, direct_paths) == pytest.approx(0.75)

    def test_balanced_traffic_zero_imbalance(self):
        matrix = np.ones((3, 3)) - np.eye(3)
        assert load_imbalance(matrix, direct_paths) == pytest.approx(0.0)


class TestMetricsEdgeCases:
    def test_empty_matrix_imbalance_zero(self):
        assert load_imbalance(np.zeros((3, 3)), direct_paths) == 0.0

    def test_empty_matrix_tax_one(self):
        assert bandwidth_tax(np.zeros((3, 3)), direct_paths) == 1.0

    def test_bandwidth_tax_missing_path_raises(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 5.0
        with pytest.raises(ValueError, match="no path"):
            bandwidth_tax(matrix, lambda src, dst: [])

    def test_path_length_cdf_missing_path_raises(self):
        with pytest.raises(ValueError, match="no path"):
            path_length_cdf(lambda src, dst: [], 2)

    def test_diagonal_demand_ignored(self):
        matrix = np.eye(3) * 100.0
        assert routed_link_bytes(matrix, direct_paths) == {}
        assert bandwidth_tax(matrix, direct_paths) == 1.0

    def test_average_path_length_empty(self):
        assert average_path_length(direct_paths, 1) == 0.0

    def test_all_switch_path_counts_one_segment(self):
        # A path that never touches a second server still carries the
        # logical transfer once (the max(..., 1) floor).
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 10.0
        tax = bandwidth_tax(
            matrix, lambda s, d: [[s, 5, 6, 7]], server_count=2
        )
        assert tax == pytest.approx(1.0)


class TestCdf:
    def test_fractions_monotone(self):
        cdf = empirical_cdf([3, 1, 2])
        assert cdf.values == (1.0, 2.0, 3.0)
        assert cdf.fractions[-1] == 1.0

    def test_percentile(self):
        cdf = empirical_cdf(range(1, 101))
        assert cdf.percentile(0.5) == pytest.approx(50.5)
        assert cdf.median == cdf.percentile(0.5)

    def test_fraction_at_or_below(self):
        cdf = empirical_cdf([1, 2, 3, 4])
        assert cdf.fraction_at_or_below(2) == 0.5

    def test_series_downsamples(self):
        cdf = empirical_cdf(range(1000))
        series = cdf.series(points=10)
        assert len(series) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([1.0]).percentile(1.5)


class TestHeatmap:
    def test_render_shape(self):
        matrix = np.random.RandomState(0).rand(4, 4)
        art = render_heatmap(matrix)
        rows = art.split("\n")
        assert len(rows) == 4 and all(len(r) == 4 for r in rows)

    def test_zero_matrix_blank(self):
        art = render_heatmap(np.zeros((2, 2)))
        assert set(art) <= {" ", "\n"}

    def test_peak_is_darkest(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 5.0
        art = render_heatmap(matrix).split("\n")
        assert art[0][1] == "@"

    def test_summary_fields(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 10.0
        matrix[1, 2] = 20.0
        summary = heatmap_summary(matrix)
        assert summary["max_bytes"] == 20.0
        assert summary["total_bytes"] == 30.0
        assert summary["nonzero_pairs"] == 2
        assert summary["balance"] == pytest.approx(0.5)

    def test_diagonal_offsets_detect_ring(self):
        n = 8
        matrix = np.zeros((n, n))
        for i in range(n):
            matrix[i, (i + 3) % n] = 10.0
        assert diagonal_offsets(matrix) == [3]

    def test_diagonal_offsets_ignore_partial(self):
        n = 8
        matrix = np.zeros((n, n))
        for i in range(n - 1):  # incomplete diagonal
            matrix[i, (i + 1) % n] = 10.0
        assert diagonal_offsets(matrix) == []
