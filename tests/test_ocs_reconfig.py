"""Unit tests for the OCS-reconfig heuristic (Algorithm 5)."""

import numpy as np
import pytest

from repro.core.ocs_reconfig import (
    exponential_discount,
    ocs_reconfig,
    topology_utility,
    unit_discount,
)
from repro.network.topology import DirectConnectTopology


def demand_for(pairs, n):
    matrix = np.zeros((n, n))
    for (i, j), value in pairs.items():
        matrix[i, j] = value
    return matrix


class TestDiscounts:
    def test_exponential_values(self):
        assert exponential_discount(0) == 0.0
        assert exponential_discount(1) == pytest.approx(0.5)
        assert exponential_discount(2) == pytest.approx(0.75)
        assert exponential_discount(3) == pytest.approx(0.875)

    def test_exponential_monotone_diminishing(self):
        gains = [
            exponential_discount(k + 1) - exponential_discount(k)
            for k in range(5)
        ]
        assert all(a > b for a, b in zip(gains, gains[1:]))

    def test_exponential_rejects_negative(self):
        with pytest.raises(ValueError):
            exponential_discount(-1)

    def test_unit_discount(self):
        assert unit_discount(0) == 0.0
        assert unit_discount(1) == 1.0
        assert unit_discount(5) == 1.0


class TestTopologyUtility:
    def test_counts_demand_on_links(self):
        topo = DirectConnectTopology(3, 2)
        topo.add_link(0, 1)
        demand = demand_for({(0, 1): 100.0, (1, 2): 50.0}, 3)
        # Only the (0,1) link exists: utility = 100 * Discount(1).
        assert topology_utility(topo, demand) == pytest.approx(50.0)

    def test_parallel_links_diminish(self):
        topo = DirectConnectTopology(2, 4)
        topo.add_link(0, 1, count=3)
        demand = demand_for({(0, 1): 100.0}, 2)
        assert topology_utility(topo, demand) == pytest.approx(87.5)

    def test_unit_discount_flat(self):
        topo = DirectConnectTopology(2, 4)
        topo.add_link(0, 1, count=3)
        demand = demand_for({(0, 1): 100.0}, 2)
        assert topology_utility(topo, demand, unit_discount) == 100.0


class TestOcsReconfig:
    def test_hottest_pair_served_first(self):
        demand = demand_for({(0, 1): 1000.0, (2, 3): 10.0}, 4)
        topo = ocs_reconfig(demand, degree=1, ensure_connected=False)
        assert topo.has_link(0, 1)

    def test_degree_respected(self):
        n = 8
        demand = np.random.RandomState(7).rand(n, n) * 100
        topo = ocs_reconfig(demand, degree=3, ensure_connected=False)
        for node in range(n):
            assert topo.out_degree(node) <= 3
            assert topo.in_degree(node) <= 3

    def test_exponential_discount_adds_parallel_links(self):
        # One overwhelming pair: with halving it still wins several times.
        demand = demand_for({(0, 1): 1000.0, (0, 2): 10.0, (2, 1): 10.0}, 3)
        topo = ocs_reconfig(demand, degree=3, ensure_connected=False)
        assert topo.multiplicity(0, 1) >= 2

    def test_unit_discount_never_parallel(self):
        demand = demand_for({(0, 1): 1000.0, (0, 2): 10.0, (2, 1): 5.0}, 3)
        topo = ocs_reconfig(
            demand, degree=3, discount=unit_discount, ensure_connected=False
        )
        assert topo.multiplicity(0, 1) == 1

    def test_connectivity_repair(self):
        # Two hot cliques that would otherwise form disjoint islands.
        n = 6
        demand = np.zeros((n, n))
        for i in range(3):
            for j in range(3):
                if i != j:
                    demand[i, j] = 100.0
                    demand[i + 3, j + 3] = 100.0
        topo = ocs_reconfig(demand, degree=4, ensure_connected=True)
        assert topo.is_strongly_connected()

    def test_zero_demand_gives_empty_topology(self):
        topo = ocs_reconfig(np.zeros((4, 4)), degree=2, ensure_connected=False)
        assert topo.num_links() == 0

    def test_diagonal_ignored(self):
        demand = np.eye(4) * 100.0
        topo = ocs_reconfig(demand, degree=2, ensure_connected=False)
        assert topo.num_links() == 0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            ocs_reconfig(np.zeros((2, 3)), degree=2)

    def test_all_to_all_uses_full_degree(self):
        n, d = 8, 3
        demand = np.ones((n, n)) * 100.0
        np.fill_diagonal(demand, 0.0)
        topo = ocs_reconfig(demand, degree=d, ensure_connected=False)
        # Uniform demand: the greedy loop should exhaust every interface.
        assert topo.num_links() == n * d

    def test_higher_utility_than_random_wiring(self):
        rng = np.random.RandomState(3)
        n, d = 8, 2
        demand = rng.rand(n, n) * 100
        np.fill_diagonal(demand, 0.0)
        scheduled = ocs_reconfig(demand, degree=d, ensure_connected=False)
        # Random ring wiring as the straw man.
        random_topo = DirectConnectTopology(n, d)
        random_topo.add_ring(list(range(n)))
        assert topology_utility(scheduled, demand) >= topology_utility(
            random_topo, demand
        )
