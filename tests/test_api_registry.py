"""Registries: every name builds, errors are actionable, exports match."""

import numpy as np
import pytest

import repro
from repro.api import (
    FABRICS,
    STRATEGIES,
    FabricBuildContext,
    RegistryError,
    WorkloadSpec,
    FabricSpec,
    build_fabric,
    build_strategy,
    build_workload,
    fabric_entry,
    workload_names,
)
from repro.core.topology_finder import AllReduceGroup
from repro.models.configs import CONFIG_FAMILIES
from repro.parallel.traffic import TrafficSummary

N = 8


@pytest.fixture(scope="module")
def traffic():
    mp = np.zeros((N, N))
    mp[0, 3] = mp[3, 0] = 1e9
    return TrafficSummary(
        n=N,
        allreduce_groups=[
            AllReduceGroup(members=tuple(range(N)), total_bytes=1e9)
        ],
        mp_matrix=mp,
    )


@pytest.fixture(scope="module")
def ctx(traffic):
    return FabricBuildContext(
        num_servers=N, degree=4, link_bandwidth_bps=100e9, traffic=traffic
    )


class TestFabricRegistry:
    def test_registry_covers_the_issue_list(self):
        required = {
            "topoopt", "ideal-switch", "fattree",
            "oversubscribed-fattree", "leaf-spine", "expander", "sipml",
            "hierarchical",
        }
        assert required <= set(FABRICS.names())

    @pytest.mark.parametrize("kind", list(FABRICS.names()))
    def test_every_fabric_builds(self, kind, ctx):
        fabric = build_fabric(FabricSpec(kind=kind), ctx)
        assert fabric.num_servers == N
        entry = fabric_entry(kind)
        assert isinstance(fabric, entry.cls)
        if entry.simulates_itself:
            assert hasattr(fabric, "iteration_time")
        else:
            assert fabric.capacities()
            assert fabric.paths(0, 1)

    def test_registry_all_parity(self):
        """Satellite: every registry entry is importable from repro."""
        for kind in FABRICS.names():
            cls = fabric_entry(kind).cls
            assert cls.__name__ in repro.__all__, (
                f"fabric {kind!r} builds {cls.__name__}, which is "
                f"missing from repro.__all__"
            )
            assert getattr(repro, cls.__name__) is cls

    def test_spec_overrides_cluster_dimensions(self, ctx):
        fabric = build_fabric(
            FabricSpec(kind="ideal-switch", degree=8, bandwidth_gbps=10),
            ctx,
        )
        assert fabric.degree == 8
        assert fabric.link_bandwidth_bps == 10e9

    def test_options_reach_the_constructor(self, ctx):
        fabric = build_fabric(
            FabricSpec(
                kind="leaf-spine",
                options={"servers_per_rack": 2, "num_spines": 3},
            ),
            ctx,
        )
        assert fabric.servers_per_rack == 2
        assert fabric.num_spines == 3

    def test_unknown_fabric_is_actionable(self):
        with pytest.raises(RegistryError, match="torus.*topoopt"):
            FABRICS.get("torus")

    def test_traffic_shaped_fabric_requires_traffic(self):
        bare = FabricBuildContext(
            num_servers=N, degree=4, link_bandwidth_bps=100e9
        )
        with pytest.raises(ValueError, match="traffic"):
            build_fabric(FabricSpec(kind="topoopt"), bare)

    def test_unknown_option_key_is_rejected(self, ctx):
        with pytest.raises(ValueError, match="reconfig_latency_s"):
            build_fabric(
                FabricSpec(
                    kind="ocs-reconfig",
                    options={"reconfig_latency_s": 1e-4},  # typo'd knob
                ),
                ctx,
            )

    def test_precomputed_topology_is_reused(self, traffic, ctx):
        from repro.core.topology_finder import topology_finder

        result = topology_finder(
            N, 4, traffic.allreduce_groups, traffic.mp_matrix
        )
        primed = FabricBuildContext(
            num_servers=N, degree=4, link_bandwidth_bps=100e9,
            traffic=traffic, topology_result=result,
        )
        fabric = build_fabric(FabricSpec(kind="topoopt"), primed)
        assert fabric.result is result
        # A degree override invalidates the precomputed topology.
        other = build_fabric(FabricSpec(kind="topoopt", degree=2), primed)
        assert other.result is not result
        # So do fabric options (primes_only changes the topology).
        primed_primes = build_fabric(
            FabricSpec(kind="topoopt", options={"primes_only": True}),
            primed,
        )
        assert primed_primes.result is not result


class TestStrategyRegistry:
    def test_names(self):
        assert set(STRATEGIES.names()) == {
            "auto", "hybrid", "data-parallel", "all-sharded", "mcmc",
        }

    @pytest.mark.parametrize(
        "name", ["auto", "hybrid", "data-parallel", "all-sharded"]
    )
    def test_fixed_strategies_build(self, name):
        model = build_workload(WorkloadSpec(model="DLRM", scale="shared"))
        strategy = build_strategy(name, model, N)
        strategy.validate_against(model)

    def test_mcmc_is_not_a_fixed_strategy(self):
        model = build_workload(WorkloadSpec(model="DLRM", scale="shared"))
        with pytest.raises(ValueError, match="search"):
            build_strategy("mcmc", model, N)

    def test_hybrid_accepts_options(self):
        model = build_workload(WorkloadSpec(model="DLRM", scale="shared"))
        names = [layer.name for layer in model.embedding_layers]
        strategy = build_strategy(
            "hybrid", model, N, embedding_owners={names[0]: 5}
        )
        assert strategy.placements[names[0]].servers == (5,)


class TestWorkloadRegistry:
    def test_workload_names_match_config_families(self):
        for family, table in CONFIG_FAMILIES.items():
            assert workload_names(family) == tuple(sorted(table))

    def test_preset_build_matches_config(self):
        from repro.models.configs import SHARED_CLUSTER_CONFIGS

        via_registry = build_workload(
            WorkloadSpec(model="BERT", scale="shared")
        )
        direct = SHARED_CLUSTER_CONFIGS["BERT"].build()
        assert via_registry.total_params_bytes == direct.total_params_bytes

    def test_options_merge_over_preset(self):
        base = build_workload(WorkloadSpec(model="DLRM", scale="shared"))
        tweaked = build_workload(
            WorkloadSpec(
                model="DLRM", scale="shared",
                options={"num_embedding_tables": 2},
            )
        )
        assert len(tweaked.embedding_layers) == 2
        assert len(base.embedding_layers) != 2

    def test_custom_scale_uses_raw_builder(self):
        model = build_workload(
            WorkloadSpec(
                model="DLRM", scale="custom",
                options={
                    "num_embedding_tables": 3,
                    "embedding_dim": 16,
                    "embedding_rows": 1000,
                    "num_dense_layers": 1,
                    "dense_layer_size": 8,
                    "num_feature_layers": 1,
                    "feature_layer_size": 8,
                },
            )
        )
        assert len(model.embedding_layers) == 3
