"""Tests for the LP traffic-engineering router (section 5.5 future work)."""

import numpy as np
import pytest

from repro.core.routing_lp import (
    default_routing_max_utilization,
    optimize_routing,
)
from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.network.topoopt import TopoOptFabric


def two_path_network():
    """0 -> 3 via 1 (fast) or via 2 (slow)."""
    capacities = {
        (0, 1): 10.0,
        (1, 3): 10.0,
        (0, 2): 5.0,
        (2, 3): 5.0,
    }

    def paths(src, dst):
        if (src, dst) == (0, 3):
            return [[0, 1, 3], [0, 2, 3]]
        return []

    return capacities, paths


class TestOptimizeRouting:
    def test_splits_proportional_to_capacity(self):
        capacities, paths = two_path_network()
        demand = np.zeros((4, 4))
        demand[0, 3] = 15.0
        result = optimize_routing(demand, capacities, paths)
        # Optimal: 10 on the fast path, 5 on the slow -> t = 1.0.
        assert result.max_utilization == pytest.approx(1.0, rel=1e-6)
        weights = dict(
            (tuple(path), w) for path, w in result.splits[(0, 3)]
        )
        assert weights[(0, 1, 3)] == pytest.approx(2 / 3, abs=1e-6)
        assert weights[(0, 2, 3)] == pytest.approx(1 / 3, abs=1e-6)

    def test_beats_even_split(self):
        capacities, paths = two_path_network()
        demand = np.zeros((4, 4))
        demand[0, 3] = 15.0
        even = default_routing_max_utilization(demand, capacities, paths)
        optimal = optimize_routing(demand, capacities, paths)
        assert optimal.max_utilization < even

    def test_single_path_gets_full_weight(self):
        capacities = {(0, 1): 10.0}
        demand = np.zeros((2, 2))
        demand[0, 1] = 5.0
        result = optimize_routing(
            demand, capacities, lambda s, d: [[0, 1]]
        )
        assert result.splits[(0, 1)][0][1] == pytest.approx(1.0)
        assert result.max_utilization == pytest.approx(0.5)

    def test_empty_demand(self):
        result = optimize_routing(
            np.zeros((3, 3)), {(0, 1): 1.0}, lambda s, d: [[s, d]]
        )
        assert result.max_utilization == 0.0
        assert result.splits == {}

    def test_missing_path_rejected(self):
        demand = np.zeros((2, 2))
        demand[0, 1] = 1.0
        with pytest.raises(ValueError):
            optimize_routing(demand, {(0, 1): 1.0}, lambda s, d: [])

    def test_unknown_link_rejected(self):
        demand = np.zeros((2, 2))
        demand[0, 1] = 1.0
        with pytest.raises(ValueError):
            optimize_routing(
                demand, {(1, 0): 1.0}, lambda s, d: [[0, 1]]
            )

    def test_utilization_report_consistent(self):
        capacities, paths = two_path_network()
        demand = np.zeros((4, 4))
        demand[0, 3] = 15.0
        result = optimize_routing(demand, capacities, paths)
        utilization = result.link_utilization(demand, capacities)
        assert max(utilization.values()) == pytest.approx(
            result.max_utilization, rel=1e-6
        )


class TestOnTopoOptTopology:
    def test_lp_never_worse_than_default(self):
        n, d = 12, 4
        mp = np.random.RandomState(0).rand(n, n) * 1e8
        np.fill_diagonal(mp, 0.0)
        group = AllReduceGroup(members=tuple(range(n)), total_bytes=1e8)
        result = topology_finder(n, d, [group], mp)
        fabric = TopoOptFabric(result, 25e9)
        capacities = fabric.capacities()

        def candidates(src, dst):
            return result.topology.all_shortest_paths(src, dst, cap=6)

        even = default_routing_max_utilization(mp, capacities, candidates)
        lp = optimize_routing(mp, capacities, candidates)
        assert lp.max_utilization <= even + 1e-9

    def test_paths_fn_adapter(self):
        capacities, paths = two_path_network()
        demand = np.zeros((4, 4))
        demand[0, 3] = 15.0
        result = optimize_routing(demand, capacities, paths)
        adapter = result.paths_fn()
        slots = adapter(0, 3)
        fast = sum(1 for p in slots if p == [0, 1, 3])
        slow = sum(1 for p in slots if p == [0, 2, 3])
        assert fast > slow  # replication tracks the weights
