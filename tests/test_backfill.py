"""Backfill oracle tests.

Two properties anchor the backfill implementations to their textbook
definitions, checked on randomized contended traces where reservations
are exact (isolated TopoOpt shards repeat the estimated iteration
time, so ``est_duration_s`` is not a heuristic there):

* **Conservative backfill never delays anyone**: every job's first
  admission under ``queue='conservative'`` is at or before its FCFS
  admission on the same trace.  (Conservative holds a reservation for
  *every* queued job; a backfilled job must fit in front of all of
  them.)
* **EASY preserves the head reservation**: whenever the engine
  recorded a reservation ``(t_res, block)`` for the blocked
  head-of-queue job, that job's actual admission is at or before
  ``t_res``.  (EASY only backfills jobs that finish before ``t_res``
  or sit outside the reserved block.)

Plus the payoff the policies exist for: on a head-of-line-blocking
trace both backfill flavors strictly beat FCFS on mean queueing delay
while the blocked head job starts no later.
"""

import pytest

from repro.cluster.engine import ScenarioEngine, run_scenario
from repro.cluster.invariants import (
    golden_scenario_spec,
    random_scenario_spec,
)

_EPS = 1e-9

SEEDS = tuple(range(6))


def first_admissions(result):
    """Job index -> first admit time from the scheduler log."""
    admits = {}
    for event in result.scheduler_log:
        if event["event"] == "admit":
            admits.setdefault(event["job_index"], event["time_s"])
    return admits


@pytest.mark.parametrize("seed", SEEDS)
def test_conservative_never_delays_any_job(seed):
    base = random_scenario_spec(seed, queue="fcfs")
    fcfs = first_admissions(run_scenario(base))
    conservative = first_admissions(
        run_scenario(base.with_overrides({"queue": "conservative"}))
    )
    assert set(conservative) == set(fcfs)
    for index, fcfs_start in fcfs.items():
        assert conservative[index] <= fcfs_start + _EPS, (
            f"seed {seed}: conservative backfill delayed job {index} "
            f"from {fcfs_start} to {conservative[index]}"
        )


def assert_head_reservations_kept(engine, result, label):
    admits = first_admissions(result)
    for now, key, t_res, start, count in engine.reservation_trace:
        assert admits[key] <= t_res + _EPS, (
            f"{label}: head job {key} was reserved for t={t_res} "
            f"(computed at t={now}) but only started at {admits[key]}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_easy_preserves_head_reservation(seed):
    spec = random_scenario_spec(seed, queue="easy")
    engine = ScenarioEngine(spec)
    result = engine.run()
    assert_head_reservations_kept(engine, result, f"seed {seed}")


def test_easy_head_reservation_on_blocking_trace():
    """On the golden trace the head is genuinely blocked: the
    reservation trace must be non-empty, and still honored."""
    engine = ScenarioEngine(golden_scenario_spec("easy"))
    result = engine.run()
    assert engine.reservation_trace
    assert_head_reservations_kept(engine, result, "golden easy")


class TestBackfillBeatsFcfs:
    """The head-of-line-blocking payoff trace (also the golden spec)."""

    @pytest.mark.parametrize("queue", ("easy", "conservative"))
    def test_backfill_strictly_lowers_mean_queueing_delay(self, queue):
        fcfs = run_scenario(golden_scenario_spec("fcfs"))
        backfilled = run_scenario(golden_scenario_spec(queue))
        fcfs_queueing = fcfs.metrics()["queueing_avg_s"]
        backfill_queueing = backfilled.metrics()["queueing_avg_s"]
        assert backfill_queueing < fcfs_queueing, (
            f"{queue} backfill should strictly beat FCFS queueing "
            f"delay on a head-of-line-blocking trace"
        )
        # The blocked head job itself starts no later than under FCFS.
        head = 1  # job 1 wants 24 of 32 servers and blocks
        assert (
            first_admissions(backfilled)[head]
            <= first_admissions(fcfs)[head] + _EPS
        )
