"""FailureManager composed with a running scenario (section 7).

The satellite requirement: inject a transient and a permanent link
failure mid-scenario and assert the repaired routing keeps jobs
progressing.
"""

import pytest

from repro.cluster import FailureInjection, ScenarioSpec, run_scenario


def two_job_spec(iterations=6):
    spec = ScenarioSpec.preset("shared").with_overrides({
        "arrivals.times": [0.0, 0.0],
        "jobs.0.iterations": iterations,
        "jobs.1.iterations": iterations,
    })
    return spec


class TestFailuresMidScenario:
    def _baseline_period(self, spec):
        return run_scenario(spec).jobs[0].iteration_avg_s

    def test_transient_then_permanent_repair(self):
        spec = two_job_spec()
        period = self._baseline_period(spec)
        fail_t = 2.5 * period
        repair_t = 4.5 * period
        result = run_scenario(
            spec,
            failures=[
                FailureInjection(
                    time_s=fail_t, job_index=0, repair_s=repair_t
                )
            ],
        )
        # Both jobs still complete their full quota: the repaired
        # routing keeps them progressing.
        assert [job.iterations_completed for job in result.jobs] == [6, 6]

        kinds = [entry["kind"] for entry in result.failure_log]
        assert kinds == ["mp_detour", "port_swap"]
        detour = result.failure_log[0]
        assert detour["extra_hops"] >= 1

        times = result.jobs[0].iteration_times
        healthy = times[0]
        degraded = [
            t for i, t in enumerate(times)
            if fail_t <= sum(times[:i]) < repair_t
        ]
        # The detour stretches the broken ring edge over extra hops, so
        # iterations during the failure window run strictly slower ...
        assert degraded
        assert max(degraded) > healthy * 1.01
        # ... and the permanent port swap restores the original time.
        assert times[-1] == pytest.approx(healthy, rel=1e-6)

    def test_failure_isolated_to_failed_shard(self):
        spec = two_job_spec()
        base = run_scenario(spec)
        period = base.jobs[0].iteration_avg_s
        result = run_scenario(
            spec,
            failures=[FailureInjection(time_s=2.5 * period, job_index=0)],
        )
        # Physical isolation: the other job's iteration times are
        # bit-identical with and without the neighbor's fiber cut.
        assert (
            result.jobs[1].iteration_times == base.jobs[1].iteration_times
        )

    def test_explicit_link_and_determinism(self):
        spec = two_job_spec(iterations=4)
        period = self._baseline_period(spec)
        injections = [
            FailureInjection(
                time_s=1.5 * period, job_index=0, link=(0, 1)
            )
        ]
        first = run_scenario(spec, failures=injections).to_dict()
        second = run_scenario(spec, failures=injections).to_dict()
        assert first == second
        assert first["failure_log"][0]["link"] == [0, 1]

    def test_identical_templates_not_contaminated_by_cache(self):
        # Two jobs share one cached pipeline (same template).  The
        # failure patch must apply to a per-job copy of the routing,
        # not the shared cached fabric -- otherwise the healthy twin
        # (and every later admission) inherits the detour.
        spec = ScenarioSpec.preset("shared").with_overrides({
            "arrivals.times": [0.0, 0.05],
            "jobs.0.model": "DLRM",
            "jobs.1.model": "DLRM",
            "jobs.0.iterations": 6,
            "jobs.1.iterations": 6,
        })
        base = run_scenario(spec)
        period = base.jobs[0].iteration_avg_s
        result = run_scenario(
            spec,
            failures=[FailureInjection(time_s=1.5 * period, job_index=0)],
        )
        assert result.failure_log[0]["kind"] == "mp_detour"
        # The unfailed twin's iterations are bit-identical to baseline.
        assert (
            result.jobs[1].iteration_times == base.jobs[1].iteration_times
        )
        # And the failed job really did slow down.
        assert max(result.jobs[0].iteration_times) > period * 1.001

    def test_late_injection_logged_as_skipped(self):
        spec = two_job_spec(iterations=2)
        result = run_scenario(
            spec,
            failures=[FailureInjection(time_s=1e6, job_index=0)],
        )
        entry = result.failure_log[0]
        assert entry["kind"] == "skipped"
        assert entry["reason"] == "scenario ended before injection time"
        assert entry["time_s"] == 1e6

    def test_repeated_failure_on_same_link_logged_not_raised(self):
        spec = two_job_spec()
        period = self._baseline_period(spec)
        result = run_scenario(
            spec,
            failures=[
                FailureInjection(time_s=1.5 * period, job_index=0),
                FailureInjection(time_s=2.5 * period, job_index=0),
            ],
        )
        kinds = [entry["kind"] for entry in result.failure_log]
        assert kinds == ["mp_detour", "skipped"]
        assert "already failed" in result.failure_log[1]["reason"]
        assert [job.iterations_completed for job in result.jobs] == [6, 6]

    def test_nonexistent_link_logged_not_raised(self):
        spec = two_job_spec(iterations=2)
        period = self._baseline_period(spec)
        result = run_scenario(
            spec,
            failures=[
                FailureInjection(
                    time_s=0.5 * period, job_index=0, link=(0, 0)
                )
            ],
        )
        assert result.failure_log[0]["kind"] == "skipped"
        assert [job.iterations_completed for job in result.jobs] == [2, 2]

    def test_failure_on_idle_job_is_skipped(self):
        spec = two_job_spec(iterations=2)
        result = run_scenario(
            spec,
            failures=[FailureInjection(time_s=0.0, job_index=99)],
        )
        assert result.failure_log[0]["kind"] == "skipped"
        assert [job.iterations_completed for job in result.jobs] == [2, 2]

    def test_shared_fabric_failures_skipped(self):
        spec = two_job_spec(iterations=2).with_overrides(
            {"fabric.kind": "fattree"}
        )
        result = run_scenario(
            spec,
            failures=[FailureInjection(time_s=0.01, job_index=0)],
        )
        assert result.failure_log[0]["kind"] == "skipped"
        assert "shard" in result.failure_log[0]["reason"]
