"""Unit tests for SelectPermutations (Algorithm 3 / Theorem 1)."""

import pytest

from repro.core.select_perms import (
    geometric_targets,
    greedy_reach_bound,
    select_permutations,
)
from repro.core.totient import coprime_strides


class TestSelectPermutations:
    def test_zero_degree_returns_empty(self):
        assert select_permutations(16, 0, [1, 3, 5]) == []

    def test_single_degree_picks_minimum(self):
        assert select_permutations(16, 1, [3, 1, 5]) == [1]

    def test_selects_requested_count(self):
        chosen = select_permutations(64, 3, coprime_strides(64))
        assert len(chosen) == 3

    def test_degree_exceeding_candidates_repeats_for_parallel_rings(self):
        candidates = [1, 5, 7, 11]
        chosen = select_permutations(12, 10, candidates)
        assert len(chosen) == 10  # the full degree budget is spent
        assert set(chosen) == set(candidates)

    def test_no_duplicates_when_candidates_suffice(self):
        chosen = select_permutations(100, 4, coprime_strides(100))
        assert len(chosen) == len(set(chosen))

    def test_all_selected_are_candidates(self):
        candidates = coprime_strides(48)
        chosen = select_permutations(48, 4, candidates)
        assert set(chosen) <= set(candidates)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_permutations(16, 2, [])

    def test_geometric_spread(self):
        # With n = 64 and dk = 3 the ratio is 4: expect ~ {1, 4, 16}.
        chosen = select_permutations(64, 3, coprime_strides(64))
        assert chosen[0] == 1
        assert 3 <= chosen[1] <= 7
        assert 11 <= chosen[2] <= 23

    def test_chord_like_structure_for_128(self):
        chosen = select_permutations(128, 4, coprime_strides(128))
        # Ratio ~ 128^(1/4) ~ 3.36: strides should grow roughly 3x each.
        for small, large in zip(chosen, chosen[1:]):
            assert large > small


class TestGeometricTargets:
    def test_empty_for_zero_degree(self):
        assert geometric_targets(64, 0) == []

    def test_starts_at_one(self):
        assert geometric_targets(64, 3)[0] == 1.0

    def test_ratio_clamped_to_two(self):
        # n^(1/dk) < 2 for n = 8, dk = 4 -> ratio clamps to 2.
        targets = geometric_targets(8, 4)
        assert targets == [1.0, 2.0, 4.0, 8.0]

    def test_ratio_applied(self):
        targets = geometric_targets(81, 4)
        ratio = 81 ** 0.25
        assert targets[1] == pytest.approx(ratio)


class TestGreedyReachBound:
    def test_single_stride_one(self):
        # Only +1: reaching distance n-1 takes n-1 hops.
        assert greedy_reach_bound(10, [1]) == 9

    def test_two_strides_reduce_diameter(self):
        with_two = greedy_reach_bound(64, [1, 8])
        assert with_two < greedy_reach_bound(64, [1])

    def test_selected_strides_meet_theorem_bound(self):
        # Theorem 1: diameter is O(dA * n^(1/dA)).
        for n, dk in [(64, 2), (64, 3), (128, 4), (256, 4)]:
            chosen = select_permutations(n, dk, coprime_strides(n))
            diameter = greedy_reach_bound(n, chosen)
            bound = 2 * dk * (n ** (1.0 / dk))  # small constant slack
            assert diameter <= bound, (n, dk, chosen, diameter, bound)

    def test_geometric_beats_clustered_strides(self):
        # Ablation seed: geometric spacing beats adjacent small strides.
        n = 128
        geometric = select_permutations(n, 4, coprime_strides(n))
        clustered = [1, 3, 5, 7]
        assert greedy_reach_bound(n, geometric) < greedy_reach_bound(
            n, clustered
        )

    def test_non_generating_strides_rejected(self):
        with pytest.raises(ValueError):
            greedy_reach_bound(12, [4, 8])  # gcd 4 with 12: cannot reach 1

    def test_requires_nonzero_stride(self):
        with pytest.raises(ValueError):
            greedy_reach_bound(12, [12, 24])
