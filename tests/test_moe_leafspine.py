"""Tests for the MoE limitation workload and the ECMP leaf-spine fabric."""

import numpy as np
import pytest

from repro.models.moe import (
    MoeTrafficSampler,
    build_moe_transformer,
    pattern_drift,
)
from repro.network.fattree import LeafSpineFabric


class TestMoeModel:
    def test_expert_count(self):
        model = build_moe_transformer(num_blocks=2, num_experts=8)
        experts = [l for l in model.layers if ".expert" in l.name]
        assert len(experts) == 16

    def test_experts_hold_most_parameters(self):
        model = build_moe_transformer(num_blocks=4, num_experts=16)
        expert_bytes = sum(
            l.params_bytes for l in model.layers if ".expert" in l.name
        )
        assert expert_bytes > 0.5 * model.total_params_bytes


class TestMoeTrafficSampler:
    def make(self, seed=0):
        return MoeTrafficSampler(
            num_servers=8,
            tokens_per_server=1024,
            bytes_per_token=512.0,
            seed=seed,
        )

    def test_matrix_shape_and_diagonal(self):
        matrix = self.make().iteration_matrix()
        assert matrix.shape == (8, 8)
        assert np.diag(matrix).sum() == 0.0

    def test_patterns_drift_between_iterations(self):
        matrices = self.make().iteration_matrices(5)
        assert pattern_drift(matrices) > 0.2

    def test_static_pattern_has_zero_drift(self):
        matrix = self.make().iteration_matrix()
        assert pattern_drift([matrix, matrix.copy()]) == 0.0

    def test_deterministic_per_seed(self):
        a = self.make(seed=3).iteration_matrix()
        b = self.make(seed=3).iteration_matrix()
        assert np.array_equal(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MoeTrafficSampler(1, 10, 1.0)
        with pytest.raises(ValueError):
            MoeTrafficSampler(4, 10, 1.0, concentration=0.0)

    def test_drift_of_short_sequences(self):
        assert pattern_drift([]) == 0.0
        assert pattern_drift([np.ones((2, 2))]) == 0.0


class TestLeafSpine:
    def make(self):
        return LeafSpineFabric(
            16, 4, 25e9, servers_per_rack=4, num_spines=4
        )

    def test_intra_rack_avoids_spines(self):
        fabric = self.make()
        path = fabric.paths(0, 3)[0]
        assert len(path) == 3
        assert all(node < 16 + 4 for node in path)

    def test_cross_rack_uses_one_spine(self):
        fabric = self.make()
        path = fabric.paths(0, 12)[0]
        assert len(path) == 5
        spine = path[2]
        assert spine >= 16 + 4

    def test_ecmp_is_deterministic_per_pair(self):
        fabric = self.make()
        assert fabric.paths(0, 12) == fabric.paths(0, 12)

    def test_ecmp_spreads_across_spines(self):
        fabric = self.make()
        spines = {
            fabric.paths(src, dst)[0][2]
            for src in range(4)
            for dst in range(12, 16)
        }
        assert len(spines) >= 2  # different pairs hash differently

    def test_full_bisection_capacity(self):
        fabric = self.make()
        caps = fabric.capacities()
        # Rack uplink total equals the rack's server bandwidth.
        leaf0 = fabric.leaf_of(0)
        uplinks = sum(
            cap
            for (src, dst), cap in caps.items()
            if src == leaf0 and dst >= 16 + 4
        )
        assert uplinks == pytest.approx(4 * fabric.server_bandwidth_bps)

    def test_paths_covered_by_capacities(self):
        fabric = self.make()
        caps = fabric.capacities()
        for src in (0, 5):
            for dst in (10, 15):
                for path in fabric.paths(src, dst):
                    for a, b in zip(path, path[1:]):
                        assert (a, b) in caps
