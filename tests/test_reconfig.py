"""Tests for the reconfigurable-fabric simulator (section 5.7)."""

import numpy as np
import pytest

from repro.network.sipml import SipMLFabric
from repro.sim.reconfig import ReconfigurableFabricSimulator

GBPS = 1e9


def uniform_demand(n, per_pair):
    matrix = np.full((n, n), float(per_pair))
    np.fill_diagonal(matrix, 0.0)
    return matrix


def single_pair_demand(n, src, dst, size):
    matrix = np.zeros((n, n))
    matrix[src, dst] = size
    return matrix


class TestDrainDemand:
    def test_single_pair_time(self):
        # Algorithm 5's exponential discount gives the lone hot pair
        # both interfaces: 1.25 GB over 2 x 10 Gbps = 0.5 s.
        sim = ReconfigurableFabricSimulator(
            4, 2, 10 * GBPS, reconfiguration_latency_s=0.0,
            demand_epoch_s=10.0,
        )
        t = sim.drain_demand(single_pair_demand(4, 0, 1, 1.25e9))
        assert t == pytest.approx(0.5, rel=0.01)

    def test_reconfiguration_latency_paid(self):
        fast = ReconfigurableFabricSimulator(
            4, 2, 10 * GBPS, reconfiguration_latency_s=0.0
        )
        slow = ReconfigurableFabricSimulator(
            4, 2, 10 * GBPS, reconfiguration_latency_s=0.5
        )
        demand = single_pair_demand(4, 0, 1, 1.25e8)
        assert slow.drain_demand(demand.copy()) >= (
            fast.drain_demand(demand.copy()) + 0.5
        )

    def test_uniform_demand_drains(self):
        sim = ReconfigurableFabricSimulator(
            6, 2, 10 * GBPS, reconfiguration_latency_s=1e-3,
            host_forwarding=True,
        )
        t = sim.drain_demand(uniform_demand(6, 1e7))
        assert t > 0
        assert sim.epochs  # at least one epoch ran

    def test_no_forwarding_needs_more_epochs(self):
        # Without host forwarding, unconnected pairs must wait for later
        # circuit rounds, so serving all-to-all takes more epochs.
        demand = uniform_demand(8, 1e7)
        fw = ReconfigurableFabricSimulator(
            8, 2, 10 * GBPS, reconfiguration_latency_s=1e-3,
            host_forwarding=True,
        )
        nofw = ReconfigurableFabricSimulator(
            8, 2, 10 * GBPS, reconfiguration_latency_s=1e-3,
            host_forwarding=False,
        )
        fw.drain_demand(demand.copy())
        nofw.drain_demand(demand.copy())
        assert len(nofw.epochs) >= len(fw.epochs)

    def test_reconfig_latency_dominates_many_to_many(self):
        # Figure 17's message: with many-to-many demand and no
        # forwarding, higher reconfiguration latency directly inflates
        # the completion time.
        demand = uniform_demand(8, 1e6)
        times = []
        for latency in (1e-6, 10e-3):
            sim = ReconfigurableFabricSimulator(
                8, 2, 10 * GBPS, reconfiguration_latency_s=latency,
                host_forwarding=False,
            )
            times.append(sim.drain_demand(demand.copy()))
        assert times[1] > times[0]

    def test_timeout_guard(self):
        sim = ReconfigurableFabricSimulator(4, 2, 10 * GBPS)
        with pytest.raises(RuntimeError):
            sim.drain_demand(
                single_pair_demand(4, 0, 1, 1e18), max_time_s=0.5
            )


class TestIterationTime:
    def test_phases_serialized(self):
        sim = ReconfigurableFabricSimulator(
            4, 2, 10 * GBPS, reconfiguration_latency_s=0.0,
            demand_epoch_s=10.0,
        )
        mp = single_pair_demand(4, 0, 1, 1.25e9)
        ar = single_pair_demand(4, 2, 3, 1.25e9)
        # Each phase: 1.25 GB over 2 parallel 10 Gbps circuits = 0.5 s.
        t = sim.iteration_time(mp, ar, compute_s=0.5)
        assert t == pytest.approx(0.5 + 0.5 + 0.5, rel=0.02)

    def test_empty_phases_skipped(self):
        sim = ReconfigurableFabricSimulator(4, 2, 10 * GBPS)
        t = sim.iteration_time(np.zeros((4, 4)), np.zeros((4, 4)), 0.25)
        assert t == pytest.approx(0.25)


class TestSipML:
    def test_name_and_modes(self):
        fabric = SipMLFabric(8, 4, 100 * GBPS)
        assert fabric.name == "SiP-ML"
        assert fabric.sipml_mode and not fabric.host_forwarding
        assert not fabric.supports_multiple_jobs()

    def test_low_latency_default(self):
        fabric = SipMLFabric(8, 4, 100 * GBPS)
        assert fabric.reconfiguration_latency_s == pytest.approx(25e-6)

    def test_sipml_flat_for_many_to_many(self):
        # Figure 11d/e: SiP-ML's iteration time barely improves with
        # more bandwidth when the pattern needs many reconfigurations.
        demand = uniform_demand(8, 1e6)
        times = []
        for bandwidth in (10 * GBPS, 100 * GBPS):
            fabric = SipMLFabric(
                8, 2, bandwidth, reconfiguration_latency_s=5e-3,
                demand_epoch_s=10e-3,
            )
            times.append(fabric.drain_demand(demand.copy()))
        speedup = times[0] / times[1]
        assert speedup < 3.0  # nowhere near the 10x bandwidth increase
