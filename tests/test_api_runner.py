"""Runner + sweep engine: determinism, shim equivalence, tidy rows."""

import json

import pytest

from repro.api import (
    ClusterSpec,
    ExperimentResult,
    ExperimentSpec,
    FabricSpec,
    OptimizerSpec,
    SweepResult,
    WorkloadSpec,
    compare_fabrics,
    expand_grid,
    point_seed,
    prepare,
    run_experiment,
    run_sweep,
)


def small_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        name="unit",
        workload=WorkloadSpec(model="DLRM", scale="shared"),
        cluster=ClusterSpec(servers=8, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="topoopt"),
        optimizer=OptimizerSpec(
            strategy="mcmc", rounds=1, mcmc_iterations=10
        ),
        baselines=(
            FabricSpec(kind="ideal-switch"),
            FabricSpec(kind="fattree"),
        ),
    )
    return spec.with_overrides(overrides) if overrides else spec


class TestRunExperiment:
    def test_mcmc_run_produces_complete_result(self):
        result = run_experiment(small_spec())
        assert result.fabric.kind == "topoopt"
        assert result.fabric.total_s > 0
        assert result.fabric.compute_s > 0
        assert len(result.baselines) == 2
        assert result.topology is not None
        assert result.topology.num_links > 0
        assert result.search is not None
        assert result.search.rounds
        assert result.strategy.num_layers > 0
        assert result.traffic.allreduce_bytes >= 0
        assert result.wall_time_s is not None and result.wall_time_s > 0

    def test_result_json_is_deterministic_for_seed(self):
        spec = small_spec()
        first = json.dumps(
            run_experiment(spec).to_dict(), sort_keys=True
        )
        second = json.dumps(
            run_experiment(spec).to_dict(), sort_keys=True
        )
        assert first == second

    def test_result_json_round_trips(self):
        result = run_experiment(small_spec())
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.to_dict() == result.to_dict()

    def test_fixed_strategy_skips_search(self):
        result = run_experiment(small_spec(strategy="auto"))
        assert result.search is None
        assert result.fabric.total_s > 0

    def test_mcmc_on_fixed_fabric_searches_once(self):
        result = run_experiment(
            small_spec(**{"fabric.kind": "ideal-switch"})
        )
        assert result.search is not None
        assert result.search.proposed_moves == 10
        assert result.topology is None

    def test_self_simulating_fabric_with_fixed_strategy(self):
        result = run_experiment(
            small_spec(strategy="hybrid", **{"fabric.kind": "sipml"})
        )
        assert result.fabric.mp_s is None
        assert result.fabric.total_s > result.fabric.compute_s

    def test_mcmc_on_self_simulating_fabric_is_rejected(self):
        with pytest.raises(ValueError, match="sipml"):
            run_experiment(small_spec(**{"fabric.kind": "sipml"}))

    def test_typoed_fabric_option_is_rejected_on_mcmc_path(self):
        spec = small_spec(**{"fabric.options.primes_onyl": True})
        with pytest.raises(ValueError, match="primes_onyl"):
            run_experiment(spec)

    def test_fabric_primes_only_option_reaches_the_search(self):
        # n=9 discriminates: coprime strides {1,2,4,5,7,8} include the
        # composites 4 and 8, which primes_only must exclude.
        plain = run_experiment(small_spec(servers=9))
        primed = run_experiment(
            small_spec(servers=9, **{"fabric.options.primes_only": True})
        )
        plain_strides = {
            s for g in plain.topology.groups for s in g["strides"]
        }
        primed_strides = {
            s for g in primed.topology.groups for s in g["strides"]
        }
        assert plain_strides & {4, 8}  # the assertion discriminates
        assert not primed_strides & {4, 8}

    def test_optimizer_primes_only_reaches_topoopt_baseline(self):
        spec = small_spec(
            strategy="auto",
            **{"fabric.kind": "ideal-switch",
               "optimizer.primes_only": True},
        )
        spec = ExperimentSpec.from_dict({
            **spec.to_dict(),
            "baselines": [FabricSpec(kind="topoopt").to_dict()],
        })
        result = run_experiment(spec)
        baseline = result.baselines[0]
        assert baseline.kind == "topoopt" and baseline.total_s > 0

    def test_costs_populated_where_model_exists(self):
        result = run_experiment(small_spec(strategy="auto"))
        assert result.fabric.cost_usd and result.fabric.cost_usd > 0
        by_kind = {t.kind: t for t in result.timings}
        assert by_kind["fattree"].cost_usd > 0

    def test_cost_equivalent_fattree_is_priced_as_built(self):
        """The cost-matched Fat-tree costs what TopoOpt costs."""
        result = run_experiment(small_spec(strategy="auto"))
        by_kind = {t.kind: t for t in result.timings}
        assert by_kind["fattree"].cost_usd == pytest.approx(
            by_kind["topoopt"].cost_usd, rel=0.02
        )

    def test_collect_link_bytes_reaches_the_result(self):
        result = run_experiment(
            small_spec(strategy="auto",
                       **{"sim.collect_link_bytes": True})
        )
        assert result.fabric.link_bytes
        assert all(len(entry) == 3 for entry in result.fabric.link_bytes)
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.to_dict() == result.to_dict()
        plain = run_experiment(small_spec(strategy="auto"))
        assert plain.fabric.link_bytes is None

    def test_primary_degree_override_does_not_leak_topology(self):
        """A context baseline must not reuse an off-degree topology."""
        from repro.api import build_fabric

        spec = small_spec(strategy="auto", **{"fabric.degree": 8})
        prepared = prepare(spec)
        assert prepared.fabric.result.topology.num_links() == 8 * 8
        baseline = build_fabric(FabricSpec(kind="topoopt"),
                                prepared.context)
        assert baseline.result.topology.num_links() == 8 * 4


class TestShimEquivalence:
    """Acceptance: legacy flags and run --spec emit identical JSON."""

    LEGACY = [
        "--model", "DLRM", "--scale", "shared", "--servers", "8",
        "--degree", "4", "--rounds", "1", "--mcmc-iterations", "10",
        "--seed", "3",
    ]

    def test_legacy_flags_match_spec_file(self, tmp_path, capsys):
        from repro.cli import build_parser, main, spec_from_legacy_args

        spec = spec_from_legacy_args(
            build_parser().parse_args(self.LEGACY)
        )
        spec_path = tmp_path / "exp.json"
        spec_path.write_text(json.dumps(spec.to_dict()))

        legacy_out = tmp_path / "legacy.json"
        run_out = tmp_path / "run.json"
        assert main(self.LEGACY + ["--json", str(legacy_out)]) == 0
        assert main(
            ["run", "--spec", str(spec_path), "--json", str(run_out)]
        ) == 0
        capsys.readouterr()
        assert (
            json.loads(legacy_out.read_text())
            == json.loads(run_out.read_text())
        )

    def test_shim_matches_runner_api(self):
        from repro.cli import build_parser, spec_from_legacy_args

        spec = spec_from_legacy_args(
            build_parser().parse_args(self.LEGACY)
        )
        via_shim = run_experiment(spec).to_dict()
        via_api = run_experiment(
            ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        ).to_dict()
        assert via_shim == via_api


class TestCompareFabrics:
    def test_labels_and_shared_traffic(self):
        spec = small_spec(strategy="auto")
        fabrics = {
            "A": FabricSpec(kind="topoopt"),
            "B": FabricSpec(kind="ideal-switch"),
            "C": FabricSpec(kind="sipml"),
        }
        timings = compare_fabrics(spec, fabrics)
        assert set(timings) == {"A", "B", "C"}
        assert all(t.total_s > 0 for t in timings.values())
        # All share one compute time (same prepared workload).
        computes = {t.compute_s for t in timings.values()}
        assert len(computes) == 1

    def test_prepared_reuse_gives_identical_timings(self):
        spec = small_spec(strategy="auto")
        prepared = prepare(spec)
        once = compare_fabrics(
            spec, {"t": FabricSpec(kind="topoopt")}, prepared
        )
        twice = compare_fabrics(
            spec, {"t": FabricSpec(kind="topoopt")}, prepared
        )
        assert once["t"].to_dict() == twice["t"].to_dict()


class TestSweep:
    GRID = {
        "workload.model": ["DLRM", "VGG16"],
        "fabric.kind": ["topoopt", "fattree"],
        "cluster.servers": [8, 12, 16],
    }

    @pytest.fixture(scope="class")
    def sweep(self):
        base = small_spec(strategy="auto")
        base = ExperimentSpec.from_dict(
            {**base.to_dict(), "baselines": []}
        )
        return run_sweep(base, self.GRID)

    def test_twelve_point_grid_one_row_per_point(self, sweep):
        assert len(sweep.points) == 12
        assert sweep.ok
        rows = sweep.rows()
        assert len(rows) == 12
        seen = {
            (r["workload.model"], r["fabric.kind"], r["cluster.servers"])
            for r in rows
        }
        assert len(seen) == 12  # every grid point exactly once

    def test_rows_are_well_formed(self, sweep):
        required = {
            "workload.model", "fabric.kind", "cluster.servers", "seed",
            "model", "fabric_kind", "servers", "total_s", "compute_s",
            "network_fraction", "error",
        }
        for row in sweep.rows():
            assert required <= set(row)
            assert row["error"] is None
            assert row["total_s"] > 0
            assert row["model"] == row["workload.model"]
            assert row["fabric_kind"] == row["fabric.kind"]
            assert row["servers"] == row["cluster.servers"]

    def test_per_point_seeds_are_deterministic(self, sweep):
        for point in sweep.points:
            assert point.seed == point_seed(
                sweep.base_spec.seed, point.overrides
            )
            assert point.result.spec.seed == point.seed
        # Seed derivation ignores grid-key ordering.
        overrides = dict(sweep.points[0].overrides)
        reordered = dict(reversed(list(overrides.items())))
        assert point_seed(0, overrides) == point_seed(0, reordered)

    def test_explicit_seed_axis_wins(self):
        """A 'seed' grid axis replicates runs at exactly those seeds."""
        base = small_spec(strategy="auto")
        sweep = run_sweep(
            base, {"seed": [1, 2, 5]}, executor="serial"
        )
        assert [p.seed for p in sweep.points] == [1, 2, 5]
        assert [p.result.spec.seed for p in sweep.points] == [1, 2, 5]

    def test_serial_and_thread_executors_agree(self):
        base = small_spec(strategy="auto")
        base = ExperimentSpec.from_dict(
            {**base.to_dict(), "baselines": []}
        )
        grid = {"cluster.servers": [8, 12], "cluster.degree": [2, 4]}
        threaded = run_sweep(base, grid, executor="thread")
        serial = run_sweep(base, grid, executor="serial")
        assert json.dumps(
            threaded.to_dict(), sort_keys=True
        ) == json.dumps(serial.to_dict(), sort_keys=True)

    def test_sweep_result_round_trips(self, sweep):
        restored = SweepResult.from_dict(
            json.loads(json.dumps(sweep.to_dict()))
        )
        assert restored.to_dict() == sweep.to_dict()

    def test_failing_point_becomes_error_row(self):
        base = small_spec(strategy="auto")
        sweep = run_sweep(
            base,
            {"cluster.servers": [8], "workload.batch_per_gpu": [-1]},
        )
        assert not sweep.ok
        row = sweep.rows()[0]
        assert row["error"] and "batch_per_gpu" in row["error"]
        assert row["total_s"] is None

    def test_error_row_keeps_shorthand_override_columns(self):
        """A failed point's row still says which point it was."""
        base = small_spec(strategy="auto")
        sweep = run_sweep(
            base, {"servers": [8, 1]}, executor="serial"
        )
        rows = sweep.rows()
        assert rows[0]["error"] is None and rows[0]["servers"] == 8
        assert rows[1]["error"] is not None
        assert rows[1]["servers"] == 1  # not clobbered to None

    def test_empty_grid_is_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            run_sweep(small_spec(strategy="auto"), {})
        with pytest.raises(ValueError, match="non-empty"):
            expand_grid({"cluster.servers": []})


class TestCheckExamplesCLI:
    def test_check_examples_reports_missing_dir(self, tmp_path, capsys):
        from repro.cli import check_examples

        code = check_examples(
            ["--examples-dir", str(tmp_path / "nowhere")]
        )
        assert code == 1
        assert "no examples" in capsys.readouterr().err

    def test_check_examples_runs_a_tiny_script(self, tmp_path, capsys):
        from repro.cli import check_examples

        good = tmp_path / "ok_example.py"
        good.write_text("import os; assert os.environ['REPRO_SMOKE']\n")
        assert check_examples(["--examples-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ok_example.py" in out and "check-examples ok" in out

    def test_check_examples_fails_on_broken_script(self, tmp_path, capsys):
        from repro.cli import check_examples

        bad = tmp_path / "bad_example.py"
        bad.write_text("raise SystemExit(3)\n")
        assert check_examples(["--examples-dir", str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out
