"""Unit tests for the event queue and flow primitives."""

import pytest

from repro.sim.events import EventQueue
from repro.sim.flows import Flow, LinkState, flows_from_matrix

import numpy as np


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        while queue.run_next():
            pass
        assert fired == ["a", "b"]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(1.0, lambda: fired.append(2))
        while queue.run_next():
            pass
        assert fired == [1, 2]

    def test_now_advances(self):
        queue = EventQueue()
        queue.schedule(3.5, lambda: None)
        queue.run_next()
        assert queue.now == 3.5

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run_next()
        with pytest.raises(ValueError):
            queue.schedule(1.0, lambda: None)

    def test_schedule_in_relative(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_next()
        queue.schedule_in(2.0, lambda: None)
        assert queue.next_event_time() == pytest.approx(3.0)

    def test_pop_due_batches(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: "a")
        queue.schedule(2.0, lambda: "b")
        queue.schedule(3.0, lambda: "c")
        due = queue.pop_due(2.0)
        assert len(due) == 2
        assert len(queue) == 1

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0, lambda: None)
        assert queue and len(queue) == 1


class TestFlow:
    def test_links_from_path(self):
        f = Flow(path=(0, 3, 7), size_bits=8.0)
        assert f.links == [(0, 3), (3, 7)]
        assert f.hop_count == 2

    def test_propagation_delay(self):
        f = Flow(path=(0, 1, 2, 3), size_bits=8.0)
        assert f.propagation_delay_s == pytest.approx(3e-6)

    def test_endpoints(self):
        f = Flow(path=(4, 5), size_bits=8.0)
        assert f.src == 4 and f.dst == 5

    def test_remaining_initialized(self):
        f = Flow(path=(0, 1), size_bits=100.0)
        assert f.remaining_bits == 100.0

    def test_short_path_rejected(self):
        with pytest.raises(ValueError):
            Flow(path=(0,), size_bits=8.0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Flow(path=(0, 1), size_bits=0.0)

    def test_unique_ids(self):
        a = Flow(path=(0, 1), size_bits=1.0)
        b = Flow(path=(0, 1), size_bits=1.0)
        assert a.flow_id != b.flow_id
        assert a != b


class TestLinkState:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            LinkState(capacity_bps=0.0)


class TestFlowsFromMatrix:
    def test_one_flow_per_positive_entry(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 10.0
        matrix[2, 0] = 20.0
        flows = flows_from_matrix(matrix, lambda s, d: [[s, d]])
        assert len(flows) == 2
        sizes = sorted(f.size_bits for f in flows)
        assert sizes == [80.0, 160.0]

    def test_split_across_paths(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 10.0
        flows = flows_from_matrix(
            matrix, lambda s, d: [[0, 1], [0, 1]]
        )
        assert len(flows) == 2
        assert all(f.size_bits == pytest.approx(40.0) for f in flows)

    def test_missing_path_raises(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 10.0
        with pytest.raises(ValueError):
            flows_from_matrix(matrix, lambda s, d: [])
