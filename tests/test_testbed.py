"""Tests for the 12-node testbed emulation (section 6)."""

import pytest

from repro.models import build_model
from repro.testbed.accuracy import TimeToAccuracyModel
from repro.testbed.nccl import NcclCommunicator
from repro.testbed.prototype import TESTBED, TestbedEmulator
from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.parallel.traffic import extract_traffic
from repro.parallel.strategy import hybrid_strategy


class TestTestbedConfig:
    def test_paper_dimensions(self):
        assert TESTBED.num_servers == 12
        assert TESTBED.degree == 4
        assert TESTBED.link_gbps == 25.0
        assert TESTBED.gpus_per_server == 1


class TestThroughput:
    @pytest.fixture(scope="class")
    def emulator(self):
        return TestbedEmulator()

    def test_switch100_beats_switch25(self, emulator):
        for model in ("VGG16", "BERT"):
            fast = emulator.throughput_samples_per_s(model, "Switch 100Gbps")
            slow = emulator.throughput_samples_per_s(model, "Switch 25Gbps")
            assert fast > slow

    def test_topoopt_close_to_switch100(self, emulator):
        # Figure 19: TopoOpt 4x25 ~ Switch 100Gbps for every model.
        for model in ("VGG16", "CANDLE", "ResNet50"):
            topo = emulator.throughput_samples_per_s(
                model, "TopoOpt 4x25Gbps"
            )
            fast = emulator.throughput_samples_per_s(model, "Switch 100Gbps")
            assert topo > 0.6 * fast, model

    def test_topoopt_beats_switch25(self, emulator):
        for model in ("VGG16", "CANDLE", "DLRM"):
            topo = emulator.throughput_samples_per_s(
                model, "TopoOpt 4x25Gbps"
            )
            slow = emulator.throughput_samples_per_s(model, "Switch 25Gbps")
            assert topo > slow, model

    def test_unknown_fabric_rejected(self, emulator):
        model = build_model("VGG16", scale="testbed")
        with pytest.raises(ValueError):
            emulator.iteration(model, "Token Ring")

    def test_throughput_table_structure(self, emulator):
        table = emulator.throughput_table(["ResNet50"])
        assert set(table["ResNet50"]) == {
            "TopoOpt 4x25Gbps",
            "Switch 100Gbps",
            "Switch 25Gbps",
        }

    def test_alltoall_batch_sweep_monotone(self, emulator):
        # Figure 21: iteration time grows with batch size.
        model = build_model("DLRM", scale="testbed")
        times = [
            emulator.iteration(model, "TopoOpt 4x25Gbps", bs).total_s
            for bs in (32, 128, 512)
        ]
        assert times[0] < times[1] < times[2]


class TestNccl:
    def _communicator(self, strides):
        group = AllReduceGroup(members=tuple(range(12)), total_bytes=1e9)
        result = topology_finder(12, 4, [group])
        laid = result.group_plans[0]
        return (
            NcclCommunicator(
                result.topology, list(range(12)), strides or laid.strides
            ),
            laid,
        )

    def test_channels_validate_against_topology(self):
        comm, laid = self._communicator(None)
        assert len(comm.channels) == len(laid.rings)

    def test_missing_ring_rejected(self):
        group = AllReduceGroup(members=tuple(range(12)), total_bytes=1e9)
        result = topology_finder(12, 2, [group])
        laid_strides = result.group_plans[0].strides
        bad = next(
            s
            for s in (1, 5, 7, 11)
            if s not in laid_strides
        )
        with pytest.raises(ValueError):
            NcclCommunicator(result.topology, list(range(12)), [bad])

    def test_payload_split_even(self):
        comm, _ = self._communicator(None)
        payloads = comm.channel_payloads(1e9)
        values = list(payloads.values())
        assert sum(values) == pytest.approx(1e9)
        assert max(values) == pytest.approx(min(values))

    def test_multi_ring_speedup(self):
        comm, _ = self._communicator(None)
        multi = comm.allreduce_time_s(1e9, 25e9)
        single_comm = NcclCommunicator(
            comm.topology, list(comm.group), [comm.channels[0].stride]
        )
        single = single_comm.allreduce_time_s(1e9, 25e9)
        assert single / multi == pytest.approx(
            comm.speedup_over_single_ring(), rel=1e-6
        )


class TestTimeToAccuracy:
    def test_faster_fabric_reaches_target_sooner(self):
        # Figure 20: TopoOpt reaches 90% ~2x faster than Switch 25Gbps.
        fast = TimeToAccuracyModel(samples_per_second=1000.0)
        slow = TimeToAccuracyModel(samples_per_second=500.0)
        assert fast.time_to_accuracy_s(0.9) == pytest.approx(
            slow.time_to_accuracy_s(0.9) / 2
        )

    def test_accuracy_saturates(self):
        model = TimeToAccuracyModel(samples_per_second=1000.0)
        assert model.accuracy_at_epoch(1000.0) == pytest.approx(
            model.max_accuracy, rel=1e-6
        )

    def test_accuracy_monotone(self):
        model = TimeToAccuracyModel(samples_per_second=1000.0)
        curve = model.curve(hours=24, points=20)
        accs = [a for _, a in curve]
        assert all(a <= b for a, b in zip(accs, accs[1:]))

    def test_unreachable_target_rejected(self):
        model = TimeToAccuracyModel(samples_per_second=1000.0)
        with pytest.raises(ValueError):
            model.time_to_accuracy_s(0.99)

    def test_round_trip(self):
        model = TimeToAccuracyModel(samples_per_second=1234.0)
        t = model.time_to_accuracy_s(0.9)
        assert model.accuracy_at_time(t) == pytest.approx(0.9)
