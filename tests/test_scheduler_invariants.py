"""Randomized-trace property harness for the scheduler control plane.

Every (policy, seed) cell draws a randomized contended scenario --
mixed shard sizes with at least one head-of-line blocker, staggered
arrivals, random priorities and elastic ranges where the policy uses
them -- runs it twice, and asserts:

* byte-identical ``ScenarioResult`` JSON across the two runs;
* no shard double-allocated, and every allocation released exactly
  once (the ``scheduler_log`` replay in
  :func:`repro.cluster.invariants.check_scenario_invariants`);
* work conservation: quota jobs finish exactly their quota no matter
  how often they were preempted or resized;
* utilization within ``[0, servers]`` and monotone event times.

The grid is 50 scenarios: 10 seeds x 5 policy configurations covering
every queue policy, priority preemption, and elastic resize.
"""

import pytest

from repro.cluster.invariants import (
    check_scenario_invariants,
    random_scenario_spec,
    verify_scenario,
)

#: (queue, preemption, elastic) cells covering every policy axis.
POLICY_CONFIGS = (
    ("fcfs", "none", False),
    ("easy", "none", False),
    ("conservative", "none", False),
    ("fcfs", "priority", False),
    ("easy", "priority", True),
)

SEEDS = tuple(range(10))


@pytest.mark.parametrize("queue,preemption,elastic", POLICY_CONFIGS)
@pytest.mark.parametrize("seed", SEEDS)
def test_random_scenario_invariants(seed, queue, preemption, elastic):
    spec = random_scenario_spec(
        seed, queue=queue, preemption=preemption, elastic=elastic
    )
    result = verify_scenario(spec)
    # Every job that arrived departed.
    assert len(result.jobs) == len(spec.arrivals.times)
    # The log replay really covered allocations: one admit per segment.
    admits = [
        e for e in result.scheduler_log if e["event"] == "admit"
    ]
    assert len(admits) >= len(result.jobs)


class TestCheckerCatchesViolations:
    """The harness itself must fail loudly on corrupted results."""

    def _result(self):
        return verify_scenario(random_scenario_spec(0, queue="easy"))

    def test_double_allocation_detected(self):
        result = self._result()
        log = [dict(e) for e in result.scheduler_log]
        first_admit = next(e for e in log if e["event"] == "admit")
        # Forge a second admission of the same block for another job.
        forged = dict(first_admit)
        forged["job_index"] = 999
        log.insert(log.index(first_admit) + 1, forged)
        from dataclasses import replace

        corrupted = replace(result, scheduler_log=tuple(log))
        violations = check_scenario_invariants(corrupted)
        assert any("double-allocated" in v for v in violations)

    def test_unreleased_block_detected(self):
        result = self._result()
        log = [
            dict(e) for e in result.scheduler_log
            if e["event"] != "depart"
        ]
        from dataclasses import replace

        corrupted = replace(result, scheduler_log=tuple(log))
        violations = check_scenario_invariants(corrupted)
        assert any("never released" in v for v in violations)

    def test_backwards_time_detected(self):
        result = self._result()
        log = [dict(e) for e in result.scheduler_log]
        log[-1]["time_s"] = -1.0
        from dataclasses import replace

        corrupted = replace(result, scheduler_log=tuple(log))
        violations = check_scenario_invariants(corrupted)
        assert any("backwards" in v for v in violations)
