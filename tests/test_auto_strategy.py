"""Tests for the greedy auto-placement heuristic."""

import pytest

from repro.models import build_bert, build_dlrm, build_vgg
from repro.parallel.strategy import PlacementKind, auto_strategy
from repro.parallel.traffic import extract_traffic


class TestAutoStrategy:
    def test_vgg_is_pure_dp(self):
        model = build_vgg(16)
        assert auto_strategy(model, 8).is_pure_data_parallel()

    def test_dlrm_big_tables_go_mp(self):
        model = build_dlrm(
            num_embedding_tables=4,
            embedding_rows=10_000_000,
            embedding_dim=128,
        )
        strategy = auto_strategy(model, 8, batch_per_gpu=32)
        assert len(strategy.mp_owner_servers()) == 4

    def test_bert_word_embeddings_stay_dp(self):
        # BERT's table is small but its per-token activations are huge:
        # replicating wins (what FlexFlow finds in the paper).
        model = build_bert(num_blocks=6, hidden=768, heads=6, seq_len=256)
        strategy = auto_strategy(model, 8, batch_per_gpu=16)
        assert strategy.is_pure_data_parallel()

    def test_threshold_scales_with_batch(self):
        # A table on the MP/DP boundary flips to DP at large batch.
        model = build_dlrm(
            num_embedding_tables=1,
            embedding_rows=20_000,
            embedding_dim=512,
            num_dense_layers=1,
            dense_layer_size=64,
            num_feature_layers=1,
            feature_layer_size=64,
        )
        small_batch = auto_strategy(model, 8, batch_per_gpu=1)
        large_batch = auto_strategy(model, 8, batch_per_gpu=4096)
        assert len(small_batch.mp_owner_servers()) == 1
        assert large_batch.is_pure_data_parallel()

    def test_owners_spread(self):
        model = build_dlrm(
            num_embedding_tables=4,
            embedding_rows=10_000_000,
            embedding_dim=128,
        )
        strategy = auto_strategy(model, 16, batch_per_gpu=32)
        owners = sorted(
            s[0] for s in strategy.mp_owner_servers().values()
        )
        assert owners == [0, 4, 8, 12]

    def test_strategy_valid_for_traffic_extraction(self):
        model = build_dlrm(
            num_embedding_tables=4, embedding_rows=1_000_000
        )
        strategy = auto_strategy(model, 8)
        traffic = extract_traffic(model, strategy)
        assert traffic.total_allreduce_bytes > 0
