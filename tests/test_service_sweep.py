"""Tests for store-backed (memoized) sweeps and scenario runs."""

import json

import pytest

import repro.api.runner as runner_mod
from repro.api.results import SweepPoint
from repro.api.runner import run_sweep
from repro.api.spec import canonical_json
from repro.cluster.engine import run_scenario
from repro.cluster.spec import ScenarioSpec
from repro.service import ResultStore

from test_service_store import cheap_spec

GRID = {"cluster.degree": [2, 4], "seed": [0, 1]}


def forbid_recompute(monkeypatch):
    """Make any pipeline execution an immediate test failure."""

    def boom(spec):
        raise AssertionError("pipeline recomputation happened")

    monkeypatch.setattr(runner_mod, "run_experiment", boom)


class TestMemoizedSweep:
    def test_second_identical_sweep_recomputes_nothing(
        self, monkeypatch, tmp_path
    ):
        """The acceptance criterion: with a shared store, the second
        identical sweep performs zero pipeline recomputations."""
        store = ResultStore(tmp_path)
        first = run_sweep(
            cheap_spec(), GRID, executor="serial", store=store
        )
        assert all(point.ok for point in first.points)
        assert not any(point.cache_hit for point in first.points)
        assert store.stats()["puts"] == len(first.points)

        forbid_recompute(monkeypatch)
        second = run_sweep(
            cheap_spec(), GRID, executor="serial", store=store
        )
        assert all(point.cache_hit for point in second.points)
        assert [point.seed for point in second.points] == [
            point.seed for point in first.points
        ]
        for before, after in zip(first.points, second.points):
            assert (
                canonical_json(after.result.to_dict())
                == canonical_json(before.result.to_dict())
            )

    def test_store_works_across_pool_executors(self, tmp_path):
        """Results computed by a thread sweep are served to a serial
        sweep (and vice versa): the key is the spec, not the pool."""
        store = ResultStore(tmp_path)
        run_sweep(cheap_spec(), GRID, executor="thread", store=store)
        again = run_sweep(
            cheap_spec(), GRID, executor="thread", store=store
        )
        assert all(point.cache_hit for point in again.points)
        assert store.stats()["puts"] == len(again.points)

    def test_partial_overlap_only_computes_the_new_points(
        self, monkeypatch, tmp_path
    ):
        store = ResultStore(tmp_path)
        run_sweep(
            cheap_spec(), {"seed": [0, 1]}, executor="serial",
            store=store,
        )
        wider = run_sweep(
            cheap_spec(), {"seed": [0, 1, 2]}, executor="serial",
            store=store,
        )
        hits = [point.cache_hit for point in wider.points]
        assert hits == [True, True, False]

    def test_bad_point_still_becomes_an_error_row(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = run_sweep(
            cheap_spec(),
            {"fabric.kind": ["fattree", "no-such-fabric"]},
            executor="serial",
            store=store,
        )
        ok = [point.ok for point in sweep.points]
        assert ok == [True, False]
        assert sweep.points[1].error
        # Only the good point was stored.
        assert store.stats()["puts"] == 1

    def test_without_store_nothing_is_cached(self):
        sweep = run_sweep(cheap_spec(), {"seed": [0]}, executor="serial")
        assert not sweep.points[0].cache_hit

    def test_cache_hit_serialization_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(cheap_spec(), {"seed": [0]}, executor="serial",
                  store=store)
        sweep = run_sweep(cheap_spec(), {"seed": [0]}, executor="serial",
                          store=store)
        point = sweep.points[0]
        assert point.cache_hit
        data = point.to_dict()
        assert data["cache_hit"] is True
        assert SweepPoint.from_dict(data).cache_hit
        # Fresh rows omit the flag from their JSON entirely.
        fresh = SweepPoint(overrides={}, seed=0)
        assert "cache_hit" not in fresh.to_dict()
        assert not SweepPoint.from_dict(fresh.to_dict()).cache_hit


def scenario_spec() -> ScenarioSpec:
    return ScenarioSpec.preset("shared").with_overrides(
        {"max_sim_time_s": 40.0}
    )


class TestMemoizedScenario:
    def test_run_scenario_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_scenario(scenario_spec(), store=store)
        assert store.stats()["puts"] == 1
        second = run_scenario(scenario_spec(), store=store)
        assert (
            canonical_json(second.to_dict())
            == canonical_json(first.to_dict())
        )
        stats = store.stats()
        assert stats["puts"] == 1  # the second run was served, not run
        assert stats["hits"] == 1

    def test_legacy_failure_injections_bypass_the_store(self, tmp_path):
        """FailureInjection schedules are not part of the spec hash, so
        caching them would alias distinct runs -- they must bypass."""
        from repro.cluster.engine import FailureInjection

        store = ResultStore(tmp_path)
        run_scenario(scenario_spec(), store=store)
        failure = FailureInjection(time_s=5.0, job_index=0)
        run_scenario(scenario_spec(), failures=(failure,), store=store)
        stats = store.stats()
        assert stats["puts"] == 1   # only the clean run was stored
        assert stats["hits"] == 0   # ...and the injected run never read

    def test_scenario_sweep_uses_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        grid = {"seed": [0, 1]}
        run_sweep(scenario_spec(), grid, executor="serial", store=store)
        again = run_sweep(
            scenario_spec(), grid, executor="serial", store=store
        )
        assert all(point.cache_hit for point in again.points)
