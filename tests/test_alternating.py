"""Integration tests for the alternating optimization loop (section 4.1)."""

import pytest

from repro.core.alternating import AlternatingOptimizer
from repro.models import build_dlrm, build_vgg
from repro.network.topoopt import TopoOptFabric
from repro.parallel.mcmc import MCMCSearch

GBPS = 1e9


def small_dlrm():
    return build_dlrm(
        num_embedding_tables=4,
        embedding_rows=200_000,
        embedding_dim=256,
        num_dense_layers=2,
        dense_layer_size=512,
        num_feature_layers=2,
        feature_layer_size=512,
        batch_per_gpu=32,
    )


def optimizer_for(model, n=8, d=4, rounds=3, iters=60, seed=0):
    search = MCMCSearch(model, num_servers=n, seed=seed)
    return AlternatingOptimizer(
        num_servers=n,
        degree=d,
        link_bandwidth_bps=100 * GBPS,
        search=search,
        max_rounds=rounds,
        mcmc_iterations=iters,
    )


class TestAlternatingOptimizer:
    def test_returns_topoopt_fabric(self):
        result = optimizer_for(small_dlrm()).run()
        assert isinstance(result.fabric, TopoOptFabric)

    def test_rounds_recorded(self):
        result = optimizer_for(small_dlrm(), rounds=3).run()
        assert 1 <= len(result.rounds) <= 3

    def test_cost_is_finite_positive(self):
        result = optimizer_for(small_dlrm()).run()
        assert 0 < result.cost_s < float("inf")

    def test_topology_connected_and_within_degree(self):
        result = optimizer_for(small_dlrm(), d=4).run()
        topo = result.topology_result.topology
        assert topo.is_strongly_connected()
        for node in range(topo.n):
            assert topo.out_degree(node) <= 4

    def test_best_not_worse_than_first_round(self):
        result = optimizer_for(small_dlrm(), rounds=4).run()
        assert result.cost_s <= result.rounds[0].cost_s + 1e-12

    def test_pure_dp_model_single_group(self):
        model = build_vgg(16)
        result = optimizer_for(model, n=8, iters=10).run()
        assert result.strategy.is_pure_data_parallel()
        assert len(result.traffic.allreduce_groups) == 1

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            AlternatingOptimizer(
                num_servers=4,
                degree=2,
                link_bandwidth_bps=GBPS,
                search=None,
                max_rounds=0,
            )

    def test_alternating_beats_naive_sequential(self):
        # The paper's motivation: searching the strategy on the wrong
        # (full-mesh) fabric and then building a topology once (naive
        # sequential) should not beat a converged alternating loop.
        model = small_dlrm()
        alternating = optimizer_for(model, rounds=4, iters=80, seed=1).run()
        sequential = optimizer_for(model, rounds=1, iters=80, seed=1).run()
        assert alternating.cost_s <= sequential.cost_s + 1e-12
