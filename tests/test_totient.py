"""Unit tests for TotientPerms (Algorithm 2 / Theorem 2)."""

import math

import pytest

from repro.core.totient import (
    coprime_strides,
    euler_phi,
    prime_strides,
    ring_edges,
    ring_permutation,
    strides_are_distinct_rings,
    totient_perms,
)


class TestEulerPhi:
    def test_phi_of_one(self):
        assert euler_phi(1) == 1

    def test_phi_of_prime(self):
        assert euler_phi(13) == 12

    def test_phi_of_prime_power(self):
        assert euler_phi(8) == 4  # 2^3 -> 8 * (1 - 1/2)

    def test_phi_of_composite(self):
        assert euler_phi(12) == 4  # {1, 5, 7, 11}

    def test_phi_multiplicative_for_coprimes(self):
        assert euler_phi(3 * 5) == euler_phi(3) * euler_phi(5)

    def test_phi_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            euler_phi(0)
        with pytest.raises(ValueError):
            euler_phi(-4)

    def test_phi_matches_definition_up_to_60(self):
        for n in range(1, 61):
            brute = sum(1 for k in range(1, n + 1) if math.gcd(k, n) == 1)
            assert euler_phi(n) == brute


class TestCoprimeStrides:
    def test_paper_example_n12(self):
        # Section 4.3: for n = 12, p = 1, 5, 7, 11 generate distinct rings.
        assert coprime_strides(12) == [1, 5, 7, 11]

    def test_count_equals_phi(self):
        for n in range(2, 40):
            assert len(coprime_strides(n)) == euler_phi(n)

    def test_all_coprime(self):
        for p in coprime_strides(30):
            assert math.gcd(p, 30) == 1

    def test_stride_one_always_valid(self):
        for n in range(2, 20):
            assert 1 in coprime_strides(n)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            coprime_strides(0)


class TestPrimeStrides:
    def test_keeps_one(self):
        assert 1 in prime_strides(16)

    def test_subset_of_coprime(self):
        for n in (10, 16, 24, 30):
            assert set(prime_strides(n)) <= set(coprime_strides(n))

    def test_only_primes_beyond_one(self):
        for p in prime_strides(100):
            if p > 1:
                assert all(p % q != 0 for q in range(2, int(p ** 0.5) + 1))

    def test_excludes_composite_coprimes(self):
        # 9 is co-prime with 16 but composite.
        assert 9 not in prime_strides(16)
        assert 9 in coprime_strides(16)


class TestRingPermutation:
    def test_identity_stride(self):
        group = [10, 11, 12, 13]
        assert ring_permutation(group, 1) == [10, 11, 12, 13]

    def test_plus_three_over_sixteen(self):
        # Figure 7b: the "+3" permutation on 16 servers.
        order = ring_permutation(list(range(16)), 3)
        assert order[:6] == [0, 3, 6, 9, 12, 15]
        assert len(set(order)) == 16

    def test_visits_every_server_once(self):
        group = list(range(15))
        for stride in coprime_strides(15):
            order = ring_permutation(group, stride)
            assert sorted(order) == group

    def test_non_coprime_stride_rejected(self):
        with pytest.raises(ValueError):
            ring_permutation(list(range(12)), 4)

    def test_too_small_group_rejected(self):
        with pytest.raises(ValueError):
            ring_permutation([5], 1)

    def test_arbitrary_server_ids(self):
        group = [3, 8, 13, 42, 99]
        order = ring_permutation(group, 2)
        assert order == [3, 13, 99, 8, 42]


class TestRingEdges:
    def test_edge_count_equals_group_size(self):
        edges = ring_edges(list(range(9)), 2)
        assert len(edges) == 9

    def test_edges_form_single_cycle(self):
        edges = ring_edges(list(range(10)), 3)
        succ = dict(edges)
        node = 0
        seen = set()
        for _ in range(10):
            seen.add(node)
            node = succ[node]
        assert node == 0 and len(seen) == 10

    def test_unique_edge_per_stride(self):
        # Theorem 2: stride p's ring contains (0, p), no other's does.
        n = 14
        for p in coprime_strides(n):
            assert (0, p) in ring_edges(list(range(n)), p)


class TestTotientPerms:
    def test_small_group_returns_empty(self):
        assert totient_perms([7]) == {}

    def test_keys_are_coprime_strides(self):
        perms = totient_perms(list(range(12)))
        assert sorted(perms) == [1, 5, 7, 11]

    def test_primes_only_filters(self):
        perms = totient_perms(list(range(16)), primes_only=True)
        assert all(p == 1 or _is_prime(p) for p in perms)

    def test_each_value_is_a_permutation(self):
        group = list(range(11))
        for order in totient_perms(group).values():
            assert sorted(order) == group

    def test_distinct_rings_small_sizes(self):
        for k in range(2, 30):
            assert strides_are_distinct_rings(k)


def _is_prime(p):
    return p >= 2 and all(p % q != 0 for q in range(2, int(p ** 0.5) + 1))
