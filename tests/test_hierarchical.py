"""Tests for the hierarchical (ToR-layer) TopoOpt fabric."""

import numpy as np
import pytest

from repro.core.topology_finder import AllReduceGroup
from repro.network.hierarchical import (
    HierarchicalTopoOptFabric,
    aggregate_rack_traffic,
)
from repro.parallel.traffic import TrafficSummary
from repro.sim.network_sim import simulate_iteration


def traffic_for(n, allreduce_bytes=1e9, mp_pairs=()):
    mp = np.zeros((n, n))
    for (src, dst), volume in mp_pairs:
        mp[src, dst] = volume
    return TrafficSummary(
        n=n,
        allreduce_groups=[
            AllReduceGroup(
                members=tuple(range(n)), total_bytes=allreduce_bytes
            )
        ],
        mp_matrix=mp,
    )


class TestAggregation:
    def test_cross_rack_group_kept(self):
        traffic = traffic_for(8)
        groups, mp, racks = aggregate_rack_traffic(traffic, 4)
        assert racks == 2
        assert len(groups) == 1
        assert groups[0].members == (0, 1)

    def test_intra_rack_group_dropped(self):
        traffic = TrafficSummary(
            n=8,
            allreduce_groups=[
                AllReduceGroup(members=(0, 1, 2, 3), total_bytes=1e9)
            ],
            mp_matrix=np.zeros((8, 8)),
        )
        groups, _, _ = aggregate_rack_traffic(traffic, 4)
        assert groups == []

    def test_mp_summed_per_rack_pair(self):
        traffic = traffic_for(
            8, mp_pairs=[((0, 5), 100.0), ((1, 6), 50.0), ((0, 1), 7.0)]
        )
        _, mp, _ = aggregate_rack_traffic(traffic, 4)
        assert mp[0, 1] == 150.0  # intra-rack (0,1) excluded
        assert mp[1, 0] == 0.0

    def test_invalid_rack_size(self):
        with pytest.raises(ValueError):
            aggregate_rack_traffic(traffic_for(8), 0)


class TestHierarchicalFabric:
    def make(self, n=16, rack=4, tor_degree=3):
        return HierarchicalTopoOptFabric(
            traffic_for(n, mp_pairs=[((0, 12), 1e8), ((12, 0), 1e8)]),
            servers_per_rack=rack,
            tor_degree=tor_degree,
        )

    def test_intra_rack_path_stays_local(self):
        fabric = self.make()
        path = fabric.paths(0, 3)[0]
        assert path == [0, fabric.tor_node(0), 3]

    def test_inter_rack_path_crosses_optical_layer(self):
        fabric = self.make()
        for path in fabric.paths(0, 12):
            assert path[0] == 0 and path[-1] == 12
            assert fabric.tor_node(0) in path
            assert fabric.tor_node(3) in path

    def test_all_pairs_routable(self):
        fabric = self.make()
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    assert fabric.paths(src, dst)

    def test_capacities_cover_paths(self):
        fabric = self.make()
        caps = fabric.capacities()
        for src in (0, 5, 12):
            for dst in (3, 9, 15):
                if src == dst:
                    continue
                for path in fabric.paths(src, dst):
                    for a, b in zip(path, path[1:]):
                        assert (a, b) in caps, (path, (a, b))

    def test_single_rack_has_no_optical_layer(self):
        fabric = HierarchicalTopoOptFabric(
            traffic_for(4), servers_per_rack=4, tor_degree=2
        )
        assert fabric.tor_result is None
        assert fabric.tor_diameter() == 0

    def test_simulates_an_iteration(self):
        fabric = self.make()
        traffic = traffic_for(16, mp_pairs=[((0, 12), 1e8), ((12, 0), 1e8)])
        breakdown = simulate_iteration(fabric, traffic, compute_s=0.01)
        assert breakdown.total_s > 0.01
        assert breakdown.allreduce_s > 0

    def test_tor_degree_respected(self):
        fabric = self.make(n=32, rack=4, tor_degree=2)
        topo = fabric.tor_result.topology
        for rack in range(fabric.num_racks):
            assert topo.out_degree(rack) <= 2
