"""Unit tests for the cost model (Table 2, Appendix G, Figure 10)."""

import pytest

from repro.network.cost import (
    ARCHITECTURES,
    COMPONENT_COSTS,
    architecture_cost,
    cost_equivalent_fattree_bandwidth,
    costs_for_bandwidth,
    interpolated_costs,
    topoopt_cost,
)


class TestComponentTable:
    def test_table2_classes(self):
        assert sorted(COMPONENT_COSTS) == [10, 25, 40, 100, 200]

    def test_100g_prices(self):
        c = COMPONENT_COSTS[100]
        assert c.transceiver == 99.0
        assert c.nic == 678.0
        assert c.electrical_switch_port == 187.0

    def test_optical_prices_constant_across_speeds(self):
        # Table 2: patch panel, OCS, and 1x2 switch prices do not vary
        # with bandwidth -- the inherent advantage of optics.
        for c in COMPONENT_COSTS.values():
            assert c.patch_panel_port == 100.0
            assert c.ocs_port == 520.0
            assert c.one_by_two_switch == 25.0

    def test_snapping_rounds_up(self):
        assert costs_for_bandwidth(50).link_gbps == 100
        assert costs_for_bandwidth(100).link_gbps == 100
        assert costs_for_bandwidth(999).link_gbps == 200

    def test_interpolation_between_classes(self):
        mid = interpolated_costs(70)
        assert (
            COMPONENT_COSTS[40].transceiver
            < mid.transceiver
            < COMPONENT_COSTS[100].transceiver
        )

    def test_interpolation_extrapolates_beyond_200(self):
        assert interpolated_costs(400).nic == pytest.approx(
            2 * COMPONENT_COSTS[200].nic
        )


class TestArchitectureCosts:
    def test_all_architectures_priced(self):
        for arch in ARCHITECTURES:
            assert architecture_cost(arch, 128, 4, 100) > 0

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            architecture_cost("Token Ring", 128, 4, 100)

    def test_cost_scales_with_servers(self):
        small = architecture_cost("TopoOpt", 128, 4, 100)
        large = architecture_cost("TopoOpt", 1024, 4, 100)
        assert large == pytest.approx(8 * small, rel=0.01)

    def test_ocs_variant_more_expensive(self):
        # Section 5.2: OCS-based TopoOpt is ~1.33x patch-panel TopoOpt.
        panel = architecture_cost("TopoOpt", 432, 4, 100)
        ocs = architecture_cost("OCS-reconfig", 432, 4, 100)
        assert 1.1 < ocs / panel < 1.8

    def test_ideal_switch_about_3x_topoopt(self):
        # Section 5.2: Ideal Switch / TopoOpt cost ratio ~ 3.2x average.
        ratios = []
        for n in (128, 432, 1024, 2000):
            ideal = architecture_cost("Ideal Switch", n, 4, 100)
            topo = architecture_cost("TopoOpt", n, 4, 100)
            ratios.append(ideal / topo)
        mean_ratio = sum(ratios) / len(ratios)
        assert 2.0 < mean_ratio < 4.5

    def test_expander_cheapest(self):
        costs = {
            arch: architecture_cost(arch, 432, 4, 100)
            for arch in ARCHITECTURES
        }
        assert costs["Expander"] == min(costs.values())

    def test_sipml_most_expensive(self):
        costs = {
            arch: architecture_cost(arch, 432, 4, 100)
            for arch in ARCHITECTURES
        }
        assert costs["SiP-ML"] == max(costs.values())

    def test_oversub_cheaper_than_full_fattree(self):
        full = architecture_cost("Fat-tree", 432, 4, 100)
        oversub = architecture_cost("Oversub Fat-tree", 432, 4, 100)
        assert oversub < full


class TestCostEquivalence:
    def test_equivalent_bandwidth_below_raw(self):
        b_equiv = cost_equivalent_fattree_bandwidth(128, 4, 100)
        assert b_equiv < 4 * 100

    def test_equivalent_bandwidth_meaningful(self):
        # Figure 11's premise: the cost-equivalent Fat-tree runs at
        # roughly a third of TopoOpt's aggregate bandwidth.
        b_equiv = cost_equivalent_fattree_bandwidth(128, 4, 100)
        assert 40 < b_equiv < 250

    def test_fattree_at_equivalent_costs_no_more(self):
        from repro.network.cost import fattree_cost

        n, d, b = 432, 4, 100
        b_equiv = cost_equivalent_fattree_bandwidth(n, d, b)
        assert fattree_cost(n, b_equiv) <= topoopt_cost(n, d, b) * 1.01
