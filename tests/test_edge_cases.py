"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.core.totient import coprime_strides, totient_perms
from repro.network.fattree import IdealSwitchFabric
from repro.network.topoopt import TopoOptFabric
from repro.parallel.traffic import TrafficSummary
from repro.sim.flows import Flow
from repro.sim.fluid import FluidNetwork, simulate_phase
from repro.sim.network_sim import simulate_iteration


class TestTinyClusters:
    def test_two_server_cluster(self):
        group = AllReduceGroup(members=(0, 1), total_bytes=1e6)
        result = topology_finder(2, 2, [group])
        assert result.topology.is_strongly_connected()
        fabric = TopoOptFabric(result, 10e9)
        traffic = TrafficSummary(
            n=2, allreduce_groups=[group], mp_matrix=np.zeros((2, 2))
        )
        breakdown = simulate_iteration(fabric, traffic, 0.0)
        assert breakdown.allreduce_s > 0

    def test_single_server_no_communication(self):
        traffic = TrafficSummary(
            n=1, allreduce_groups=[], mp_matrix=np.zeros((1, 1))
        )
        fabric = IdealSwitchFabric(1, 1, 10e9)
        breakdown = simulate_iteration(fabric, traffic, compute_s=0.1)
        assert breakdown.total_s == pytest.approx(0.1)

    def test_degree_one_is_a_single_ring(self):
        group = AllReduceGroup(members=tuple(range(6)), total_bytes=1e6)
        result = topology_finder(6, 1, [group])
        assert result.topology.num_links() == 6
        assert result.topology.diameter() == 5

    def test_group_of_two_has_one_stride(self):
        assert coprime_strides(2) == [1]
        perms = totient_perms([4, 9])
        assert list(perms) == [1]


class TestDegenerateTraffic:
    def test_zero_byte_group_contributes_nothing(self):
        group = AllReduceGroup(members=(0, 1, 2), total_bytes=0.0)
        traffic = TrafficSummary(
            n=3, allreduce_groups=[group], mp_matrix=np.zeros((3, 3))
        )
        fabric = IdealSwitchFabric(3, 1, 10e9)
        breakdown = simulate_iteration(fabric, traffic, 0.0)
        assert breakdown.allreduce_s == 0.0

    def test_no_traffic_at_all(self):
        traffic = TrafficSummary(
            n=4, allreduce_groups=[], mp_matrix=np.zeros((4, 4))
        )
        fabric = IdealSwitchFabric(4, 1, 10e9)
        breakdown = simulate_iteration(fabric, traffic, compute_s=0.02)
        assert breakdown.total_s == pytest.approx(0.02)

    def test_mp_only_workload(self):
        mp = np.zeros((4, 4))
        mp[1, 2] = 1e6
        traffic = TrafficSummary(n=4, allreduce_groups=[], mp_matrix=mp)
        result = topology_finder(4, 2, [], mp)
        fabric = TopoOptFabric(result, 10e9)
        breakdown = simulate_iteration(fabric, traffic, 0.0)
        assert breakdown.mp_s > 0
        assert breakdown.allreduce_s == 0.0


class TestFluidEdgeCases:
    def test_utilization_reporting(self):
        net = FluidNetwork({(0, 1): 10e9, (1, 2): 10e9})
        net.add_flow(Flow(path=(0, 1), size_bits=1e9))
        utilization = net.utilization()
        assert utilization[(0, 1)] == pytest.approx(1.0)
        assert utilization[(1, 2)] == pytest.approx(0.0)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            FluidNetwork({})

    def test_many_tiny_flows_one_link(self):
        flows = [Flow(path=(0, 1), size_bits=8.0) for _ in range(100)]
        t = simulate_phase(
            {(0, 1): 800.0}, flows, include_propagation=False
        )
        assert t == pytest.approx(1.0, rel=1e-3)

    def test_wildly_different_sizes(self):
        flows = [
            Flow(path=(0, 1), size_bits=8.0),
            Flow(path=(0, 1), size_bits=8e9),
        ]
        t = simulate_phase(
            {(0, 1): 8e9}, flows, include_propagation=False
        )
        assert t == pytest.approx(1.0, rel=1e-6)

    def test_link_bytes_collection(self):
        group = AllReduceGroup(members=(0, 1, 2), total_bytes=3e6)
        traffic = TrafficSummary(
            n=3, allreduce_groups=[group], mp_matrix=np.zeros((3, 3))
        )
        result = topology_finder(3, 2, [group])
        fabric = TopoOptFabric(result, 10e9)
        breakdown = simulate_iteration(
            fabric, traffic, 0.0, collect_link_bytes=True
        )
        assert breakdown.link_bytes
        assert all(v > 0 for v in breakdown.link_bytes.values())


class TestLargeGroupScaling:
    def test_totient_perms_at_scale(self):
        # Prime restriction keeps the candidate pool manageable for
        # thousand-node groups (O(n / ln n)).
        group = list(range(1000))
        all_perms = totient_perms(group)
        prime_perms = totient_perms(group, primes_only=True)
        assert len(prime_perms) < len(all_perms)
        assert len(prime_perms) >= 100  # pi(1000) = 168

    def test_topology_finder_128_servers(self):
        group = AllReduceGroup(
            members=tuple(range(128)), total_bytes=1e9
        )
        result = topology_finder(128, 4, [group], primes_only=True)
        assert result.topology.is_strongly_connected()
        # Theorem 1 bound with slack.
        assert result.topology.diameter() <= 2 * 4 * 128 ** 0.25
