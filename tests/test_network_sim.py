"""Integration tests for iteration simulation (the Eq. 1 model)."""

import numpy as np
import pytest

from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.models import build_model, compute_time_seconds
from repro.network.expander import ExpanderFabric
from repro.network.fattree import FatTreeFabric, IdealSwitchFabric
from repro.network.topoopt import TopoOptFabric
from repro.parallel.strategy import data_parallel_strategy, hybrid_strategy
from repro.parallel.traffic import TrafficSummary, extract_traffic
from repro.sim.network_sim import TrainingSimulator, simulate_iteration

GBPS = 1e9


def dp_traffic(n, total_bytes):
    return TrafficSummary(
        n=n,
        allreduce_groups=[
            AllReduceGroup(members=tuple(range(n)), total_bytes=total_bytes)
        ],
        mp_matrix=np.zeros((n, n)),
    )


class TestAllReducePhase:
    def test_ideal_switch_allreduce_time(self):
        # 2 (k-1)/k S / (d B): the bandwidth-optimal ring time.
        n, d, B = 8, 4, 100 * GBPS
        fabric = IdealSwitchFabric(n, d, B)
        traffic = dp_traffic(n, 1e9)
        breakdown = simulate_iteration(fabric, traffic, compute_s=0.0)
        expected = 2 * 7 / 8 * 1e9 * 8 / (d * B)
        assert breakdown.allreduce_s == pytest.approx(expected, rel=1e-3)

    def test_topoopt_matches_ideal_for_pure_dp(self):
        # Figure 11a-c: with pure data parallelism, TopoOpt's d rings at
        # B each equal the Ideal Switch's single d*B pipe.
        n, d, B = 16, 4, 100 * GBPS
        traffic = dp_traffic(n, 1e9)
        result = topology_finder(n, d, traffic.allreduce_groups)
        topoopt = TopoOptFabric(result, B)
        ideal = IdealSwitchFabric(n, d, B)
        t_topo = simulate_iteration(topoopt, traffic, 0.0).allreduce_s
        t_ideal = simulate_iteration(ideal, traffic, 0.0).allreduce_s
        assert t_topo == pytest.approx(t_ideal, rel=0.01)

    def test_fattree_slower_by_bandwidth_ratio(self):
        n, d = 8, 4
        traffic = dp_traffic(n, 1e9)
        fast = IdealSwitchFabric(n, d, 100 * GBPS)
        slow = FatTreeFabric(n, d, 33 * GBPS)
        t_fast = simulate_iteration(fast, traffic, 0.0).allreduce_s
        t_slow = simulate_iteration(slow, traffic, 0.0).allreduce_s
        assert t_slow / t_fast == pytest.approx(100 / 33, rel=0.02)


class TestMpPhase:
    def test_mp_needs_paths(self):
        n = 4
        mp = np.zeros((n, n))
        mp[0, 3] = 1e9
        traffic = TrafficSummary(n=n, allreduce_groups=[], mp_matrix=mp)
        fabric = IdealSwitchFabric(n, 2, 100 * GBPS)
        breakdown = simulate_iteration(fabric, traffic, 0.0)
        assert breakdown.mp_s > 0
        assert breakdown.allreduce_s == 0.0

    def test_host_forwarding_tax_visible(self):
        # The same MP matrix takes longer on TopoOpt than on an Ideal
        # Switch of the same aggregate bandwidth (bandwidth tax).
        n, d, B = 12, 4, 25 * GBPS
        model = build_model("DLRM", scale="testbed")
        strategy = hybrid_strategy(model, n)
        traffic = extract_traffic(model, strategy, 64, 1)
        result = topology_finder(
            n, d, traffic.allreduce_groups, traffic.mp_matrix
        )
        topoopt = TopoOptFabric(result, B)
        ideal = IdealSwitchFabric(n, d, B)
        t_topo = simulate_iteration(topoopt, traffic, 0.0).mp_s
        t_ideal = simulate_iteration(ideal, traffic, 0.0).mp_s
        assert t_topo > t_ideal


class TestBreakdown:
    def test_total_is_sum_of_phases(self):
        fabric = IdealSwitchFabric(4, 2, GBPS)
        traffic = dp_traffic(4, 1e8)
        b = simulate_iteration(fabric, traffic, compute_s=0.5)
        assert b.total_s == pytest.approx(
            b.compute_s + b.mp_s + b.allreduce_s
        )

    def test_network_overhead_fraction(self):
        fabric = IdealSwitchFabric(4, 2, GBPS)
        traffic = dp_traffic(4, 1e8)
        b = simulate_iteration(fabric, traffic, compute_s=0.0)
        assert b.network_overhead_fraction == pytest.approx(1.0)

    def test_overhead_grows_with_scale(self):
        # Figure 3: more servers -> higher network overhead at fixed
        # per-server batch (weak scaling).
        model = build_model("VGG16", scale="simulation")
        compute = compute_time_seconds(model, 64)
        fractions = []
        for n in (4, 8, 16):
            fabric = IdealSwitchFabric(n, 1, 25 * GBPS)
            strategy = data_parallel_strategy(model, n)
            traffic = extract_traffic(model, strategy, 64)
            b = simulate_iteration(fabric, traffic, compute)
            fractions.append(b.network_overhead_fraction)
        assert fractions[0] < fractions[1] < fractions[2]


class TestTrainingSimulator:
    def test_static_fabric_iterations_identical(self):
        fabric = IdealSwitchFabric(4, 2, GBPS)
        sim = TrainingSimulator(fabric, dp_traffic(4, 1e8), compute_s=0.01)
        runs = sim.run(iterations=3)
        assert len(runs) == 3
        times = [r.total_s for r in runs]
        assert max(times) - min(times) < 1e-9

    def test_throughput(self):
        fabric = IdealSwitchFabric(4, 2, GBPS)
        sim = TrainingSimulator(fabric, dp_traffic(4, 1e8), compute_s=0.01)
        tput = sim.throughput_samples_per_s(batch_per_server=32, num_servers=4)
        iteration = sim.run_iteration().total_s
        assert tput == pytest.approx(128 / iteration)

    def test_invalid_iteration_count(self):
        fabric = IdealSwitchFabric(4, 2, GBPS)
        sim = TrainingSimulator(fabric, dp_traffic(4, 1e8), compute_s=0.01)
        with pytest.raises(ValueError):
            sim.run(iterations=0)


class TestExpanderBaseline:
    def test_expander_worse_than_topoopt_for_dp(self):
        # Figure 11: the Expander's oblivious wiring cannot carry the
        # ring AllReduce on direct links.
        n, d, B = 16, 4, 25 * GBPS
        traffic = dp_traffic(n, 1e9)
        result = topology_finder(n, d, traffic.allreduce_groups)
        topoopt = TopoOptFabric(result, B)
        expander = ExpanderFabric(n, d, B, seed=0)
        t_topo = simulate_iteration(topoopt, traffic, 0.0).allreduce_s
        t_exp = simulate_iteration(expander, traffic, 0.0).allreduce_s
        assert t_exp > t_topo
