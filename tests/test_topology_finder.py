"""Unit and integration tests for TopologyFinder (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.topology_finder import (
    AllReduceGroup,
    _distribute_degree,
    topology_finder,
)


def full_group(n, size_bytes):
    return AllReduceGroup(members=tuple(range(n)), total_bytes=size_bytes)


def uniform_mp(n, per_pair):
    matrix = np.full((n, n), float(per_pair))
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestAllReduceGroup:
    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            AllReduceGroup(members=(0, 0, 1), total_bytes=10)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            AllReduceGroup(members=(0, 1), total_bytes=-1)

    def test_size(self):
        assert AllReduceGroup(members=(3, 5, 7), total_bytes=1).size == 3


class TestDistributeDegree:
    def test_pure_allreduce_takes_all(self):
        assert _distribute_degree(4, 100.0, 0.0) == (4, 0)

    def test_pure_mp_still_reserves_one(self):
        d_ar, d_mp = _distribute_degree(4, 0.0, 100.0)
        assert d_ar == 1 and d_mp == 3

    def test_no_traffic_defaults_to_allreduce(self):
        assert _distribute_degree(4, 0.0, 0.0) == (4, 0)

    def test_proportional_split(self):
        d_ar, d_mp = _distribute_degree(4, 50.0, 50.0)
        assert d_ar + d_mp == 4
        assert d_ar == 2

    def test_ceiling_favors_allreduce(self):
        d_ar, d_mp = _distribute_degree(4, 30.0, 70.0)
        assert d_ar == 2  # ceil(1.2)


class TestPureDataParallel:
    def test_all_degree_to_rings(self):
        n, d = 16, 4
        result = topology_finder(n, d, [full_group(n, 1e9)])
        assert result.allreduce_degree == d
        assert result.mp_degree == 0
        assert len(result.group_plans) == 1
        assert len(result.group_plans[0].rings) == d

    def test_topology_connected(self):
        result = topology_finder(16, 4, [full_group(16, 1e9)])
        assert result.topology.is_strongly_connected()

    def test_rings_use_selected_strides(self):
        result = topology_finder(16, 3, [full_group(16, 1e9)])
        plan = result.group_plans[0]
        assert len(plan.strides) == 3
        assert plan.strides[0] == 1
        for stride, ring in zip(plan.strides, plan.rings):
            # Each ring hop advances by the stride (positions == ids here).
            assert (ring[1] - ring[0]) % 16 == stride

    def test_degree_budget_respected(self):
        result = topology_finder(12, 4, [full_group(12, 1e9)])
        topo = result.topology
        for node in range(12):
            assert topo.out_degree(node) <= 4
            assert topo.in_degree(node) <= 4


class TestHybrid:
    def test_mp_degree_allocated(self):
        n = 12
        # MP volume dominates the (tiny) AllReduce volume.
        result = topology_finder(
            n, 4, [full_group(n, 1e3)], uniform_mp(n, 1e9)
        )
        assert result.mp_degree >= 1
        assert result.mp_link_counts

    def test_mp_links_bidirectional(self):
        n = 8
        result = topology_finder(
            n, 4, [full_group(n, 1e3)], uniform_mp(n, 1e9)
        )
        for (a, b) in result.mp_link_counts:
            assert result.topology.has_link(a, b)
            assert result.topology.has_link(b, a)

    def test_hot_pair_gets_direct_link(self):
        n = 8
        mp = np.zeros((n, n))
        mp[2, 5] = mp[5, 2] = 1e9
        result = topology_finder(n, 2, [full_group(n, 1e3)], mp)
        assert result.topology.has_link(2, 5)

    def test_small_diameter_from_totient_perms(self):
        # 64 servers, d = 4 pure DP: diameter well below the +1-only 63.
        result = topology_finder(64, 4, [full_group(64, 1e9)])
        assert result.topology.diameter() <= 12


class TestSubsetGroups:
    def test_two_disjoint_groups(self):
        g1 = AllReduceGroup(members=tuple(range(0, 8)), total_bytes=1e9)
        g2 = AllReduceGroup(members=tuple(range(8, 16)), total_bytes=1e9)
        result = topology_finder(16, 4, [g1, g2])
        # Both groups got at least one ring.
        ringed = [p for p in result.group_plans if p.rings]
        assert len(ringed) == 2
        assert result.topology.is_strongly_connected()

    def test_tiny_group_skipped(self):
        g1 = full_group(8, 1e9)
        g2 = AllReduceGroup(members=(3,), total_bytes=1e9)
        result = topology_finder(8, 4, [g1, g2])
        assert all(p.group.size >= 2 for p in result.group_plans)


class TestRouting:
    def test_allreduce_paths_within_group(self):
        n = 12
        result = topology_finder(n, 4, [full_group(n, 1e9)])
        paths = result.routing.paths_for(0, 7, "allreduce")
        assert paths
        for path in paths:
            assert path[0] == 0 and path[-1] == 7

    def test_allreduce_paths_use_physical_links(self):
        n = 12
        result = topology_finder(n, 4, [full_group(n, 1e9)])
        for (src, dst), paths in result.routing.allreduce_paths.items():
            for path in paths:
                for a, b in zip(path, path[1:]):
                    assert result.topology.has_link(a, b)

    def test_mp_paths_exist_for_demands(self):
        n = 8
        mp = uniform_mp(n, 1e6)
        result = topology_finder(n, 4, [full_group(n, 1e9)], mp)
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    assert result.routing.paths_for(src, dst, "mp")

    def test_mp_paths_are_minimum_hop(self):
        n = 8
        mp = uniform_mp(n, 1e6)
        result = topology_finder(n, 4, [full_group(n, 1e9)], mp)
        for (src, dst), paths in result.routing.mp_paths.items():
            shortest = result.topology.shortest_path(src, dst)
            assert all(len(p) == len(shortest) for p in paths)


class TestValidation:
    def test_wrong_mp_shape_rejected(self):
        with pytest.raises(ValueError):
            topology_finder(8, 4, [full_group(8, 1)], np.zeros((4, 4)))

    def test_primes_only_mode(self):
        result = topology_finder(
            16, 4, [full_group(16, 1e9)], primes_only=True
        )
        for plan in result.group_plans:
            for stride in plan.strides:
                assert stride == 1 or _is_prime(stride)


def _is_prime(p):
    return p >= 2 and all(p % q != 0 for q in range(2, int(p ** 0.5) + 1))
