"""Property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coin_change import CoinChangeRouter, coin_change_mod
from repro.core.mutability import ring_traffic_matrix
from repro.core.ocs_reconfig import ocs_reconfig
from repro.core.select_perms import select_permutations
from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.core.totient import (
    coprime_strides,
    euler_phi,
    ring_permutation,
)
from repro.sim.flows import Flow
from repro.sim.fluid import FluidNetwork

group_sizes = st.integers(min_value=2, max_value=64)
cluster_sizes = st.integers(min_value=4, max_value=32)
degrees = st.integers(min_value=1, max_value=6)


class TestTotientProperties:
    @given(group_sizes)
    def test_phi_counts_coprime_strides(self, k):
        assert len(coprime_strides(k)) == euler_phi(k)

    @given(group_sizes, st.integers(min_value=0, max_value=200))
    def test_every_coprime_stride_is_a_permutation(self, k, index):
        strides = coprime_strides(k)
        stride = strides[index % len(strides)]
        order = ring_permutation(list(range(k)), stride)
        assert sorted(order) == list(range(k))

    @given(group_sizes)
    def test_ring_traffic_volume_invariant_under_stride(self, k):
        """Mutability: every stride carries the same total volume."""
        n = k
        totals = set()
        for stride in coprime_strides(k)[:4]:
            matrix = ring_traffic_matrix(list(range(k)), 1000.0, n, stride)
            totals.add(round(matrix.sum(), 6))
        assert len(totals) == 1


class TestSelectPermProperties:
    @given(cluster_sizes, degrees)
    def test_selection_is_subset_and_sized(self, n, dk):
        candidates = coprime_strides(n)
        chosen = select_permutations(n, dk, candidates)
        assert set(chosen) <= set(candidates)
        assert len(chosen) == dk  # repeats fill the budget when needed

    @given(cluster_sizes, st.integers(min_value=1, max_value=4))
    def test_seed_stride_always_included(self, n, dk):
        candidates = coprime_strides(n)
        chosen = select_permutations(n, dk, candidates)
        assert min(candidates) in chosen


class TestCoinChangeProperties:
    @given(st.integers(min_value=3, max_value=48), st.data())
    def test_routes_sum_to_distance(self, n, data):
        strides = coprime_strides(n)
        count = data.draw(st.integers(1, min(3, len(strides))))
        coins = data.draw(
            st.lists(
                st.sampled_from(strides),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        routes = coin_change_mod(n, coins)
        for distance, seq in routes.items():
            assert sum(seq) % n == distance
            assert all(c in {x % n for x in coins} for c in seq)

    @given(st.integers(min_value=3, max_value=32))
    def test_router_paths_connect_endpoints(self, n):
        coins = coprime_strides(n)[:2]
        router = CoinChangeRouter(n, coins)
        for src in range(0, n, max(n // 4, 1)):
            for dst in range(0, n, max(n // 4, 1)):
                path = router.path(src, dst)
                assert path[0] == src and path[-1] == dst


class TestTopologyFinderProperties:
    @settings(deadline=None, max_examples=25)
    @given(cluster_sizes, st.integers(min_value=2, max_value=5))
    def test_result_connected_and_degree_bounded(self, n, d):
        group = AllReduceGroup(members=tuple(range(n)), total_bytes=1e9)
        result = topology_finder(n, d, [group])
        topo = result.topology
        assert topo.is_strongly_connected()
        for node in range(n):
            assert topo.out_degree(node) <= d
            assert topo.in_degree(node) <= d

    @settings(deadline=None, max_examples=15)
    @given(st.integers(min_value=4, max_value=16), st.data())
    def test_with_random_mp_demand(self, n, data):
        rows = data.draw(
            st.lists(
                st.lists(
                    st.floats(min_value=0, max_value=1e6),
                    min_size=n,
                    max_size=n,
                ),
                min_size=n,
                max_size=n,
            )
        )
        mp = np.array(rows)
        np.fill_diagonal(mp, 0.0)
        group = AllReduceGroup(members=tuple(range(n)), total_bytes=1e8)
        result = topology_finder(n, 4, [group], mp)
        assert result.topology.is_strongly_connected()
        # Every MP demand is routable.
        for src in range(n):
            for dst in range(n):
                if src != dst and mp[src, dst] > 0:
                    assert result.routing.paths_for(src, dst, "mp")


class TestOcsReconfigProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=3, max_value=12),
           st.integers(min_value=1, max_value=4), st.randoms())
    def test_degree_never_exceeded(self, n, d, rng):
        demand = np.zeros((n, n))
        for _ in range(n * 2):
            i, j = rng.randrange(n), rng.randrange(n)
            if i != j:
                demand[i, j] += rng.random() * 100
        topo = ocs_reconfig(demand, degree=d, ensure_connected=False)
        for node in range(n):
            assert topo.out_degree(node) <= d
            assert topo.in_degree(node) <= d


class TestFluidProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.data())
    def test_max_min_never_oversubscribes(self, data):
        n_links = data.draw(st.integers(2, 6))
        caps = {
            (i, i + 1): data.draw(
                st.floats(min_value=1e6, max_value=1e9)
            )
            for i in range(n_links)
        }
        network = FluidNetwork(caps)
        n_flows = data.draw(st.integers(1, 8))
        flows = []
        for _ in range(n_flows):
            start = data.draw(st.integers(0, n_links - 1))
            end = data.draw(st.integers(start + 1, n_links))
            flow = Flow(
                path=tuple(range(start, end + 1)),
                size_bits=data.draw(st.floats(1e3, 1e6)),
            )
            flows.append(flow)
            network.add_flow(flow)
        network.recompute_rates()
        for link, state in network.links.items():
            used = sum(f.rate_bps for f in state.flows)
            assert used <= state.capacity_bps * (1 + 1e-9)
        # Work conservation: every flow crosses at least one saturated
        # link (the definition of max-min fairness).
        for flow in flows:
            saturated = any(
                sum(f.rate_bps for f in network.links[link].flows)
                >= network.links[link].capacity_bps * (1 - 1e-9)
                for link in flow.links
            )
            assert saturated
