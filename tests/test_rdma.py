"""Unit tests for the NPAR RDMA forwarding overlay (Appendix I)."""

import pytest

from repro.sim.flows import Flow
from repro.sim.rdma import ForwardingRule, NparInterface, RdmaForwardingModel


class TestNparInterface:
    def test_function_names(self):
        iface = NparInterface(server=3, port=1)
        assert iface.if1_name == "s3p1f0"
        assert iface.if2_name == "s3p1f1"

    def test_if1_has_ip_if2_does_not(self):
        iface = NparInterface(server=3, port=1)
        assert iface.if1_ip.startswith("10.")
        # if2 is MAC-only by design; it exposes a MAC, never an IP.
        assert iface.if2_mac != iface.if1_mac

    def test_macs_unique_across_servers(self):
        macs = {
            NparInterface(s, p).if2_mac
            for s in range(20)
            for p in range(4)
        }
        assert len(macs) == 80


class TestForwardingRules:
    def _model_and_ports(self):
        model = RdmaForwardingModel(degree=4)
        # 0 -> 1 -> 2 -> 3 chain; server i reaches i+1 via port i % 4.
        ports = {(i, i + 1): i % 4 for i in range(3)}
        return model, ports

    def test_endpoint_rules_first(self):
        model, ports = self._model_and_ports()
        rules = model.rules_for_path([0, 1, 2, 3], ports)
        assert rules[0].kind == "iproute"
        assert rules[1].kind == "arp"

    def test_relay_rules_are_tc_flower(self):
        model, ports = self._model_and_ports()
        rules = model.rules_for_path([0, 1, 2, 3], ports)
        relay_rules = [r for r in rules if r.kind == "tc_flower"]
        assert {r.server for r in relay_rules} == {1, 2}

    def test_last_hop_targets_if1_mac(self):
        # Appendix I: the final hop rewrites to the destination's if1 MAC
        # so the packet is treated as RDMA again.
        model, ports = self._model_and_ports()
        rules = model.rules_for_path([0, 1, 2, 3], ports)
        final_relay = [r for r in rules if r.server == 2][0]
        dst_if1 = NparInterface(3, ports[(2, 3)]).if1_mac
        assert final_relay.next_hop_mac == dst_if1

    def test_intermediate_hops_target_if2_mac(self):
        model, ports = self._model_and_ports()
        rules = model.rules_for_path([0, 1, 2, 3], ports)
        first_relay_mac = rules[0].next_hop_mac
        relay_if2 = NparInterface(1, ports[(1, 2)]).if2_mac
        assert first_relay_mac == relay_if2

    def test_direct_path_has_no_relays(self):
        model = RdmaForwardingModel(degree=4)
        rules = model.rules_for_path([0, 1], {(0, 1): 0})
        assert all(r.kind != "tc_flower" for r in rules)

    def test_rules_render(self):
        model, ports = self._model_and_ports()
        for rule in model.rules_for_path([0, 1, 2, 3], ports):
            text = rule.render()
            assert str(rule.server) in text

    def test_short_path_rejected(self):
        model = RdmaForwardingModel(degree=4)
        with pytest.raises(ValueError):
            model.rules_for_path([0], {})


class TestEffectiveRate:
    def test_direct_runs_at_line_rate(self):
        model = RdmaForwardingModel(degree=4, kernel_forwarding_penalty=0.05)
        assert model.effective_rate_bps(1, 25e9) == 25e9

    def test_each_relay_penalized(self):
        model = RdmaForwardingModel(degree=4, kernel_forwarding_penalty=0.1)
        assert model.effective_rate_bps(3, 100.0) == pytest.approx(81.0)

    def test_invalid_penalty_rejected(self):
        with pytest.raises(ValueError):
            RdmaForwardingModel(degree=4, kernel_forwarding_penalty=1.0)

    def test_invalid_hops_rejected(self):
        model = RdmaForwardingModel(degree=4)
        with pytest.raises(ValueError):
            model.effective_rate_bps(0, 1e9)


class TestRelayLoad:
    def test_relay_bytes_accounted(self):
        model = RdmaForwardingModel(degree=4)
        flows = [
            Flow(path=(0, 1, 2), size_bits=8e6),
            Flow(path=(3, 1, 4), size_bits=16e6),
        ]
        load = model.relay_cpu_bytes(flows)
        assert load == {1: pytest.approx(3e6)}

    def test_direct_flows_no_relay_load(self):
        model = RdmaForwardingModel(degree=4)
        assert model.relay_cpu_bytes([Flow(path=(0, 1), size_bits=8.0)]) == {}
