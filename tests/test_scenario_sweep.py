"""run_sweep over ScenarioSpec grids, including the process-pool story."""

import json

import pytest

from repro.api import SweepResult, point_seed, run_sweep
from repro.cluster import ScenarioSpec


def base_spec():
    return ScenarioSpec.preset("shared").with_overrides(
        {f"jobs.{i}.iterations": 2 for i in range(4)}
    )


GRID = {"fabric.kind": ["topoopt", "fattree"]}


class TestScenarioSweep:
    def test_rows_carry_scenario_metrics(self):
        sweep = run_sweep(base_spec(), GRID, executor="serial")
        rows = sweep.rows()
        assert [row["fabric.kind"] for row in rows] == [
            "topoopt", "fattree"
        ]
        for row in rows:
            assert row["error"] is None
            assert row["jobs_completed"] == 4
            assert row["jct_avg_s"] > 0
            assert row["iteration_p99_s"] >= row["iteration_avg_s"]
            assert row["policy"] == "first-fit"
        topo, fat = rows
        assert fat["iteration_p99_s"] > topo["iteration_p99_s"]

    def test_per_point_seeds_deterministic(self):
        spec = base_spec()
        sweep = run_sweep(spec, GRID, executor="serial")
        for point in sweep.points:
            assert point.seed == point_seed(spec.seed, point.overrides)
            assert point.result.spec.seed == point.seed

    def test_explicit_seed_axis_wins(self):
        sweep = run_sweep(
            base_spec(), {"seed": [3, 4]}, executor="serial"
        )
        assert [point.seed for point in sweep.points] == [3, 4]

    def test_process_executor_matches_serial(self):
        # The ROADMAP's process-pool story: scenario specs, points, and
        # results pickle, and the derived per-point seeds do not depend
        # on the executor, so a process-pool sweep is bit-identical to
        # a serial one.
        serial = run_sweep(base_spec(), GRID, executor="serial")
        process = run_sweep(
            base_spec(), GRID, executor="process", max_workers=2
        )
        assert len(serial.points) == len(process.points)
        for s, p in zip(serial.points, process.points):
            assert s.seed == p.seed
            assert s.result.to_dict() == p.result.to_dict()

    def test_sweep_json_round_trip(self):
        sweep = run_sweep(base_spec(), GRID, executor="serial")
        reloaded = SweepResult.from_dict(
            json.loads(json.dumps(sweep.to_dict()))
        )
        assert isinstance(reloaded.base_spec, ScenarioSpec)
        assert reloaded.rows() == sweep.rows()

    def test_failing_point_becomes_error_row(self):
        sweep = run_sweep(
            base_spec(),
            {"max_sim_time_s": [1e-9, 3600.0]},
            executor="serial",
        )
        rows = sweep.rows()
        assert not sweep.ok
        assert "ScenarioError" in rows[0]["error"]
        assert rows[0]["jct_avg_s"] is None
        # The healthy point is unaffected, and the row schema is stable.
        assert rows[1]["error"] is None
        assert set(rows[0]) == set(rows[1])

    def test_policy_axis(self):
        sweep = run_sweep(
            base_spec(),
            {"policy": ["first-fit", "best-fit"]},
            executor="serial",
        )
        assert [row["policy"] for row in sweep.rows()] == [
            "first-fit", "best-fit"
        ]


class TestSweepRobustness:
    """Crashed or hung workers are retried, not sweep poison."""

    def test_worker_crash_retried_once(self, monkeypatch):
        import repro.api.runner as runner_mod

        real = runner_mod._run_point
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("worker crashed")
            return real(job)

        monkeypatch.setattr(runner_mod, "_run_point", flaky)
        sweep = run_sweep(
            base_spec(), {"seed": [5]}, executor="thread",
            max_workers=1, retries=1,
        )
        point = sweep.points[0]
        assert point.error is None
        assert point.attempts == 2
        # The retry reran the same derived seed.
        assert point.seed == 5

    def test_retries_exhausted_becomes_error_row(self, monkeypatch):
        import repro.api.runner as runner_mod

        def always(job):
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(runner_mod, "_run_point", always)
        sweep = run_sweep(
            base_spec(), {"seed": [5]}, executor="thread",
            max_workers=1, retries=1,
        )
        point = sweep.points[0]
        assert "worker crashed" in point.error
        assert point.attempts == 2
        assert point.seed == 5
        # The error row keeps the stable row schema.
        assert sweep.rows()[0]["jct_avg_s"] is None

    def test_point_timeout_reported(self, monkeypatch):
        import time

        import repro.api.runner as runner_mod

        def hang(job):
            time.sleep(10.0)

        monkeypatch.setattr(runner_mod, "_run_point", hang)
        sweep = run_sweep(
            base_spec(), {"seed": [5]}, executor="thread",
            max_workers=1, point_timeout_s=0.1, retries=0,
        )
        point = sweep.points[0]
        assert "point_timeout_s" in point.error
        assert point.attempts == 1

    def test_in_point_exception_is_not_retried(self, monkeypatch):
        # An exception *inside* the point (bad spec) is deterministic:
        # it becomes an error row on the first attempt, no resubmission.
        sweep = run_sweep(
            base_spec(), {"max_sim_time_s": [1e-9]},
            executor="thread", max_workers=1, retries=3,
        )
        point = sweep.points[0]
        assert "ScenarioError" in point.error
        assert point.attempts == 1

    def test_attempts_round_trips_through_json(self, monkeypatch):
        import repro.api.runner as runner_mod

        real = runner_mod._run_point
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")
            return real(job)

        monkeypatch.setattr(runner_mod, "_run_point", flaky)
        sweep = run_sweep(
            base_spec(), {"seed": [5]}, executor="thread",
            max_workers=1, retries=1,
        )
        reloaded = SweepResult.from_dict(
            json.loads(json.dumps(sweep.to_dict()))
        )
        assert reloaded.points[0].attempts == 2

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(base_spec(), {"seed": [5]}, retries=-1)
