"""run_sweep over ScenarioSpec grids, including the process-pool story."""

import json

import pytest

from repro.api import SweepResult, point_seed, run_sweep
from repro.cluster import ScenarioSpec


def base_spec():
    return ScenarioSpec.preset("shared").with_overrides(
        {f"jobs.{i}.iterations": 2 for i in range(4)}
    )


GRID = {"fabric.kind": ["topoopt", "fattree"]}


class TestScenarioSweep:
    def test_rows_carry_scenario_metrics(self):
        sweep = run_sweep(base_spec(), GRID, executor="serial")
        rows = sweep.rows()
        assert [row["fabric.kind"] for row in rows] == [
            "topoopt", "fattree"
        ]
        for row in rows:
            assert row["error"] is None
            assert row["jobs_completed"] == 4
            assert row["jct_avg_s"] > 0
            assert row["iteration_p99_s"] >= row["iteration_avg_s"]
            assert row["policy"] == "first-fit"
        topo, fat = rows
        assert fat["iteration_p99_s"] > topo["iteration_p99_s"]

    def test_per_point_seeds_deterministic(self):
        spec = base_spec()
        sweep = run_sweep(spec, GRID, executor="serial")
        for point in sweep.points:
            assert point.seed == point_seed(spec.seed, point.overrides)
            assert point.result.spec.seed == point.seed

    def test_explicit_seed_axis_wins(self):
        sweep = run_sweep(
            base_spec(), {"seed": [3, 4]}, executor="serial"
        )
        assert [point.seed for point in sweep.points] == [3, 4]

    def test_process_executor_matches_serial(self):
        # The ROADMAP's process-pool story: scenario specs, points, and
        # results pickle, and the derived per-point seeds do not depend
        # on the executor, so a process-pool sweep is bit-identical to
        # a serial one.
        serial = run_sweep(base_spec(), GRID, executor="serial")
        process = run_sweep(
            base_spec(), GRID, executor="process", max_workers=2
        )
        assert len(serial.points) == len(process.points)
        for s, p in zip(serial.points, process.points):
            assert s.seed == p.seed
            assert s.result.to_dict() == p.result.to_dict()

    def test_sweep_json_round_trip(self):
        sweep = run_sweep(base_spec(), GRID, executor="serial")
        reloaded = SweepResult.from_dict(
            json.loads(json.dumps(sweep.to_dict()))
        )
        assert isinstance(reloaded.base_spec, ScenarioSpec)
        assert reloaded.rows() == sweep.rows()

    def test_failing_point_becomes_error_row(self):
        sweep = run_sweep(
            base_spec(),
            {"max_sim_time_s": [1e-9, 3600.0]},
            executor="serial",
        )
        rows = sweep.rows()
        assert not sweep.ok
        assert "ScenarioError" in rows[0]["error"]
        assert rows[0]["jct_avg_s"] is None
        # The healthy point is unaffected, and the row schema is stable.
        assert rows[1]["error"] is None
        assert set(rows[0]) == set(rows[1])

    def test_policy_axis(self):
        sweep = run_sweep(
            base_spec(),
            {"policy": ["first-fit", "best-fit"]},
            executor="serial",
        )
        assert [row["policy"] for row in sweep.rows()] == [
            "first-fit", "best-fit"
        ]
