"""Unit tests for CoinChangeMod routing (Algorithm 4)."""

import pytest

from repro.core.coin_change import CoinChangeRouter, coin_change_mod


class TestCoinChangeMod:
    def test_single_coin_one(self):
        routes = coin_change_mod(5, [1])
        assert routes[1] == [1]
        assert routes[4] == [1, 1, 1, 1]

    def test_every_distance_covered(self):
        routes = coin_change_mod(16, [1, 3, 7])
        assert sorted(routes) == list(range(1, 16))

    def test_sums_match_distance_mod_n(self):
        n = 16
        routes = coin_change_mod(n, [1, 3, 7])
        for distance, coins in routes.items():
            assert sum(coins) % n == distance

    def test_minimality_small_case(self):
        # Distance 6 with coins {1, 3}: 3+3 (2 coins), not 1*6.
        routes = coin_change_mod(12, [1, 3])
        assert len(routes[6]) == 2

    def test_modular_wraparound_used(self):
        # n = 10, coins {1, 9}: distance 8 is 9+9 = 18 = 8 (mod 10),
        # two coins instead of eight 1s.
        routes = coin_change_mod(10, [1, 9])
        assert len(routes[8]) == 2

    def test_non_generating_coins_raise(self):
        with pytest.raises(ValueError):
            coin_change_mod(12, [4, 6])

    def test_zero_coins_rejected(self):
        with pytest.raises(ValueError):
            coin_change_mod(12, [])
        with pytest.raises(ValueError):
            coin_change_mod(12, [12])  # 12 mod 12 == 0

    def test_coins_normalized_mod_n(self):
        routes_a = coin_change_mod(8, [1, 3])
        routes_b = coin_change_mod(8, [9, 11])  # same residues
        assert {d: len(c) for d, c in routes_a.items()} == {
            d: len(c) for d, c in routes_b.items()
        }


class TestCoinChangeRouter:
    def test_path_endpoints(self):
        router = CoinChangeRouter(16, [1, 3, 7])
        path = router.path(2, 11)
        assert path[0] == 2 and path[-1] == 11

    def test_path_follows_selected_strides(self):
        router = CoinChangeRouter(16, [1, 3, 7])
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                path = router.path(src, dst)
                for a, b in zip(path, path[1:]):
                    assert (b - a) % 16 in {1, 3, 7}

    def test_trivial_path(self):
        router = CoinChangeRouter(8, [1, 3])
        assert router.path(5, 5) == [5]
        assert router.hops(5, 5) == 0

    def test_hops_consistent_with_path(self):
        router = CoinChangeRouter(20, [1, 3, 7])
        for src, dst in [(0, 13), (5, 2), (19, 0)]:
            assert router.hops(src, dst) == len(router.path(src, dst)) - 1

    def test_max_hops_is_diameter(self):
        router = CoinChangeRouter(16, [1, 3, 7])
        worst = max(
            router.hops(s, d)
            for s in range(16)
            for d in range(16)
            if s != d
        )
        assert router.max_hops() == worst

    def test_more_coins_never_increase_diameter(self):
        few = CoinChangeRouter(32, [1])
        many = CoinChangeRouter(32, [1, 5, 11])
        assert many.max_hops() <= few.max_hops()

    def test_out_of_range_rejected(self):
        router = CoinChangeRouter(8, [1])
        with pytest.raises(ValueError):
            router.path(0, 8)

    def test_all_paths_complete(self):
        router = CoinChangeRouter(6, [1, 5])
        triples = router.all_paths()
        assert len(triples) == 6 * 5
        for src, dst, path in triples:
            assert path[0] == src and path[-1] == dst
