"""Unit tests for the max-min fair fluid network."""

import pytest

from repro.sim.flows import Flow
from repro.sim.fluid import FluidNetwork, phase_link_bytes, simulate_phase

GBPS = 1e9


def flow(path, size_bits):
    return Flow(path=tuple(path), size_bits=size_bits)


class TestRateAllocation:
    def test_single_flow_gets_full_capacity(self):
        net = FluidNetwork({(0, 1): 10 * GBPS})
        f = flow([0, 1], 1e9)
        net.add_flow(f)
        net.recompute_rates()
        assert f.rate_bps == pytest.approx(10 * GBPS)

    def test_two_flows_share_fairly(self):
        net = FluidNetwork({(0, 1): 10 * GBPS})
        f1, f2 = flow([0, 1], 1e9), flow([0, 1], 2e9)
        net.add_flow(f1)
        net.add_flow(f2)
        net.recompute_rates()
        assert f1.rate_bps == pytest.approx(5 * GBPS)
        assert f2.rate_bps == pytest.approx(5 * GBPS)

    def test_bottleneck_frees_other_links(self):
        # f1 crosses the slow link; f2 should get the leftover on (1,2).
        net = FluidNetwork({(0, 1): 2 * GBPS, (1, 2): 10 * GBPS})
        f1 = flow([0, 1, 2], 1e9)
        f2 = flow([1, 2], 1e9)
        net.add_flow(f1)
        net.add_flow(f2)
        net.recompute_rates()
        assert f1.rate_bps == pytest.approx(2 * GBPS)
        assert f2.rate_bps == pytest.approx(8 * GBPS)

    def test_max_min_textbook_example(self):
        # Three flows, two unit links: A on link1, B on both, C on link2.
        net = FluidNetwork({(0, 1): 1 * GBPS, (1, 2): 1 * GBPS})
        a = flow([0, 1], 1e9)
        b = flow([0, 1, 2], 1e9)
        c = flow([1, 2], 1e9)
        for f in (a, b, c):
            net.add_flow(f)
        net.recompute_rates()
        assert b.rate_bps == pytest.approx(0.5 * GBPS)
        assert a.rate_bps == pytest.approx(0.5 * GBPS)
        assert c.rate_bps == pytest.approx(0.5 * GBPS)

    def test_removal_restores_capacity(self):
        net = FluidNetwork({(0, 1): 10 * GBPS})
        f1, f2 = flow([0, 1], 1e9), flow([0, 1], 1e9)
        net.add_flow(f1)
        net.add_flow(f2)
        net.recompute_rates()
        net.remove_flow(f2)
        net.recompute_rates()
        assert f1.rate_bps == pytest.approx(10 * GBPS)

    def test_unknown_link_rejected(self):
        net = FluidNetwork({(0, 1): GBPS})
        with pytest.raises(KeyError):
            net.add_flow(flow([1, 0], 1e6))

    def test_capacity_conservation(self):
        # No link is oversubscribed under max-min allocation.
        caps = {(0, 1): GBPS, (1, 2): 2 * GBPS, (0, 2): GBPS}
        net = FluidNetwork(caps)
        flows = [
            flow([0, 1], 1e9),
            flow([0, 1, 2], 1e9),
            flow([0, 2], 1e9),
            flow([1, 2], 1e9),
        ]
        for f in flows:
            net.add_flow(f)
        net.recompute_rates()
        for link, cap in caps.items():
            used = sum(
                f.rate_bps for f in flows if link in f.links
            )
            assert used <= cap * (1 + 1e-9)


class TestAdvance:
    def test_completion_detection(self):
        net = FluidNetwork({(0, 1): 8e9})  # 1 GB/s
        f = flow([0, 1], 8e9)  # 1 second of work
        net.add_flow(f)
        dt = net.time_to_next_completion()
        assert dt == pytest.approx(1.0)
        done = net.advance(dt + 1e-9)
        assert done == [f]
        assert not net.active

    def test_partial_progress(self):
        net = FluidNetwork({(0, 1): 8e9})
        f = flow([0, 1], 8e9)
        net.add_flow(f)
        net.recompute_rates()
        net.advance(0.25)
        assert f.remaining_bits == pytest.approx(6e9)

    def test_negative_dt_rejected(self):
        net = FluidNetwork({(0, 1): 1e9})
        with pytest.raises(ValueError):
            net.advance(-1.0)


class TestSimulatePhase:
    def test_empty_phase_is_instant(self):
        assert simulate_phase({(0, 1): GBPS}, []) == 0.0

    def test_single_flow_makespan(self):
        t = simulate_phase(
            {(0, 1): 8e9}, [flow([0, 1], 8e9)], include_propagation=False
        )
        assert t == pytest.approx(1.0, rel=1e-6)

    def test_shared_link_serializes(self):
        t = simulate_phase(
            {(0, 1): 8e9},
            [flow([0, 1], 4e9), flow([0, 1], 4e9)],
            include_propagation=False,
        )
        assert t == pytest.approx(1.0, rel=1e-6)

    def test_short_flow_finishes_then_long_speeds_up(self):
        # 1 Gb and 3 Gb on an 8 Gbps link: share until t=0.25 (both move
        # 1 Gb), then the long one takes (3-1)/8 = 0.25 more.
        t = simulate_phase(
            {(0, 1): 8e9},
            [flow([0, 1], 2e9), flow([0, 1], 6e9)],
            include_propagation=False,
        )
        assert t == pytest.approx(1.0, rel=1e-5)

    def test_disjoint_flows_parallel(self):
        t = simulate_phase(
            {(0, 1): 8e9, (2, 3): 8e9},
            [flow([0, 1], 8e9), flow([2, 3], 8e9)],
            include_propagation=False,
        )
        assert t == pytest.approx(1.0, rel=1e-6)

    def test_propagation_delay_added(self):
        t = simulate_phase({(0, 1): 8e9}, [flow([0, 1], 8.0)])
        assert t >= 1e-6  # one hop of 1 us dominates the tiny transfer

    def test_symmetric_all_to_all_batches(self):
        # n^2 symmetric flows must complete in very few rate rounds.
        n = 8
        caps = {}
        flows = []
        for i in range(n):
            for j in range(n):
                if i != j:
                    caps[(i, j)] = GBPS
                    flows.append(flow([i, j], 1e9))
        t = simulate_phase(caps, flows, include_propagation=False)
        assert t == pytest.approx(1.0, rel=1e-4)


class TestPhaseLinkBytes:
    def test_accumulates_per_hop(self):
        flows = [flow([0, 1, 2], 8e9), flow([0, 1], 8e9)]
        totals = phase_link_bytes(flows)
        assert totals[(0, 1)] == pytest.approx(2e9)
        assert totals[(1, 2)] == pytest.approx(1e9)
