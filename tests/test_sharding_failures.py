"""Tests for cluster sharding (Appendix C) and failure handling (sec. 7)."""

import numpy as np
import pytest

from repro.core.topology_finder import AllReduceGroup
from repro.network.sharding import ShardManager, ShardingError
from repro.parallel.traffic import TrafficSummary
from repro.sim.failures import FailureManager, LinkFailureError
from repro.core.topology_finder import topology_finder


def dp_traffic(n, total_bytes=1e9):
    return TrafficSummary(
        n=n,
        allreduce_groups=[
            AllReduceGroup(members=tuple(range(n)), total_bytes=total_bytes)
        ],
        mp_matrix=np.zeros((n, n)),
    )


class TestShardManager:
    def make(self, servers=16, degree=2, lookahead=True):
        return ShardManager(
            num_servers=servers,
            degree=degree,
            link_bandwidth_bps=25e9,
            lookahead=lookahead,
        )

    def test_admission_allocates_disjoint_servers(self):
        mgr = self.make()
        shard_a, _ = mgr.admit(dp_traffic(4))
        shard_b, _ = mgr.admit(dp_traffic(4))
        assert not set(shard_a.servers) & set(shard_b.servers)
        assert mgr.free_servers == 8

    def test_capacity_enforced(self):
        mgr = self.make(servers=8)
        mgr.admit(dp_traffic(6))
        with pytest.raises(ShardingError):
            mgr.admit(dp_traffic(4))

    def test_release_returns_servers(self):
        mgr = self.make()
        shard, _ = mgr.admit(dp_traffic(8))
        mgr.release(shard.job_id)
        assert mgr.free_servers == 16
        with pytest.raises(KeyError):
            mgr.shard_of(shard.job_id)

    def test_preprovisioned_admission_is_fast(self):
        mgr = self.make()
        robot_latency = mgr.preprovision(dp_traffic(4))
        _, admit_latency = mgr.admit(dp_traffic(4))
        # Look-ahead: admission pays the 1x2 flip, not the robot.
        assert admit_latency < robot_latency

    def test_cold_admission_pays_robot(self):
        mgr = self.make()
        _, latency = mgr.admit(dp_traffic(4))
        panel = mgr._switch.planes[0]
        assert latency == pytest.approx(panel.reconfiguration_latency_s)

    def test_shard_fabric_uses_global_ids(self):
        mgr = self.make()
        mgr.admit(dp_traffic(4))  # occupies servers 0..3
        shard, _ = mgr.admit(dp_traffic(4))  # gets 4..7
        for (src, dst) in shard.fabric.capacities():
            assert src in shard.servers and dst in shard.servers

    def test_jobs_run_on_disjoint_links(self):
        mgr = self.make()
        shard_a, _ = mgr.admit(dp_traffic(4))
        shard_b, _ = mgr.admit(dp_traffic(4))
        links_a = set(shard_a.fabric.capacities())
        links_b = set(shard_b.fabric.capacities())
        assert not links_a & links_b


class TestFailureManager:
    def make_result(self, n=12, d=4):
        mp = np.zeros((n, n))
        mp[0, 5] = mp[5, 0] = 1e8
        group = AllReduceGroup(members=tuple(range(n)), total_bytes=1e9)
        return topology_finder(n, d, [group], mp)

    def test_single_failure_recoverable(self):
        manager = FailureManager(self.make_result())
        action = manager.fail_link(0, 1)
        assert action.kind == "mp_detour"
        assert action.detour_path[0] == 0
        assert action.detour_path[-1] == 1
        assert action.extra_hops >= 1

    def test_routing_patched_after_failure(self):
        result = self.make_result()
        manager = FailureManager(result)
        manager.fail_link(0, 1)
        # No routed path crosses the dead link any more.
        for table in (
            result.routing.allreduce_paths,
            result.routing.mp_paths,
        ):
            for paths in table.values():
                for path in paths:
                    for a, b in zip(path, path[1:]):
                        assert (a, b) != (0, 1)

    def test_ring_remains_logically_complete(self):
        result = self.make_result()
        manager = FailureManager(result)
        manager.fail_link(0, 1)
        assert manager.ring_still_complete(tuple(range(12)))

    def test_slowdown_bounded_by_detour(self):
        result = self.make_result()
        manager = FailureManager(result)
        action = manager.fail_link(0, 1)
        slow = manager.slowdown_factor(tuple(range(12)))
        assert 1.0 <= slow <= action.extra_hops + 1

    def test_permanent_repair_restores_routing(self):
        result = self.make_result()
        manager = FailureManager(result)
        manager.fail_link(0, 1)
        manager.repair_permanently(0, 1)
        assert manager.slowdown_factor(tuple(range(12))) == 1.0

    def test_double_failure_rejected(self):
        manager = FailureManager(self.make_result())
        manager.fail_link(0, 1)
        with pytest.raises(ValueError):
            manager.fail_link(0, 1)

    def test_missing_link_rejected(self):
        manager = FailureManager(self.make_result())
        with pytest.raises(ValueError):
            manager.fail_link(0, 6) if not manager.result.topology.has_link(
                0, 6
            ) else manager.fail_link(99, 0)

    def test_repair_unfailed_rejected(self):
        manager = FailureManager(self.make_result())
        with pytest.raises(ValueError):
            manager.repair_permanently(0, 1)


class TestMultiFailureSequences:
    """Satellite: slowdown/repair behavior across failure *sequences*."""

    def make_manager(self, n=12, d=4):
        mp = np.zeros((n, n))
        mp[0, 5] = mp[5, 0] = 1e8
        group = AllReduceGroup(members=tuple(range(n)), total_bytes=1e9)
        return FailureManager(topology_finder(n, d, [group], mp))

    def test_slowdown_accumulates_and_unwinds(self):
        manager = self.make_manager()
        members = tuple(range(12))
        assert manager.slowdown_factor(members) == 1.0
        first = manager.fail_link(0, 1)
        after_one = manager.slowdown_factor(members)
        assert after_one >= 1.0 + 1e-9
        second_edge = next(
            edge for edge in manager.ring_edges()
            if edge != (0, 1) and edge not in manager.failed
        )
        manager.fail_link(*second_edge)
        after_two = manager.slowdown_factor(members)
        # A second cut can only hold or worsen the worst-edge stretch.
        assert after_two >= after_one - 1e-12
        # Repairs unwind in any order; full repair restores 1.0 exactly.
        manager.repair_permanently(*second_edge)
        assert manager.slowdown_factor(members) <= after_two + 1e-12
        manager.repair_permanently(0, 1)
        assert manager.slowdown_factor(members) == 1.0
        assert manager.failed == set()
        kinds = [action.kind for action in manager.repairs]
        assert kinds.count("mp_detour") == 2
        assert kinds.count("port_swap") == 2
        assert first.extra_hops >= 1

    def test_overall_slowdown_tracks_worst_group(self):
        manager = self.make_manager()
        assert manager.overall_slowdown() == 1.0
        manager.fail_link(0, 1)
        assert manager.overall_slowdown() == pytest.approx(
            manager.slowdown_factor(tuple(range(12)))
        )

    def test_detour_rides_previously_failed_links_never(self):
        # The second detour must avoid both dead links, so its path
        # crosses neither.
        manager = self.make_manager()
        manager.fail_link(0, 1)
        edge = next(
            e for e in manager.ring_edges()
            if e != (0, 1) and e not in manager.failed
        )
        action = manager.fail_link(*edge)
        hops = set(zip(action.detour_path, action.detour_path[1:]))
        assert (0, 1) not in hops and edge not in hops

    def test_disconnection_leaves_manager_consistent(self):
        # A 2-server shard has no detour for its only ring edge: the
        # cut must raise without half-applying, so the caller can
        # suspend the job against a consistent failure set.
        group = AllReduceGroup(members=(0, 1), total_bytes=1e9)
        manager = FailureManager(
            topology_finder(2, 4, [group], np.zeros((2, 2)))
        )
        with pytest.raises(LinkFailureError):
            manager.fail_link(0, 1)
        assert manager.failed == set()
        assert manager.repairs == []
        assert manager.slowdown_factor((0, 1)) == 1.0
        # The reverse direction still works (and still detours nothing:
        # it is also the only edge, so it too raises cleanly).
        with pytest.raises(LinkFailureError):
            manager.fail_link(1, 0)
        assert manager.failed == set()
