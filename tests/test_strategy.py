"""Unit tests for parallelization strategies and placements."""

import pytest

from repro.models import build_dlrm, build_vgg
from repro.parallel.strategy import (
    LayerPlacement,
    ParallelizationStrategy,
    PlacementKind,
    all_sharded_strategy,
    data_parallel_strategy,
    hybrid_strategy,
)


class TestLayerPlacement:
    def test_model_parallel_needs_owner(self):
        with pytest.raises(ValueError):
            LayerPlacement(PlacementKind.MODEL_PARALLEL, ())

    def test_duplicate_servers_rejected(self):
        with pytest.raises(ValueError):
            LayerPlacement(PlacementKind.DATA_PARALLEL, (0, 0))

    def test_sharded_needs_no_servers(self):
        placement = LayerPlacement(PlacementKind.SHARDED)
        assert placement.servers == ()


class TestStrategyValidation:
    def test_out_of_range_server_rejected(self):
        with pytest.raises(ValueError):
            ParallelizationStrategy(
                4,
                {
                    "l": LayerPlacement(
                        PlacementKind.MODEL_PARALLEL, (7,)
                    )
                },
            )

    def test_validate_against_detects_missing(self):
        model = build_vgg(16)
        strategy = ParallelizationStrategy(4, {})
        with pytest.raises(ValueError):
            strategy.validate_against(model)

    def test_validate_against_detects_extra(self):
        model = build_vgg(16)
        strategy = data_parallel_strategy(model, 4)
        extra = strategy.with_placement(
            "ghost", LayerPlacement(PlacementKind.DATA_PARALLEL, (0, 1))
        )
        with pytest.raises(ValueError):
            extra.validate_against(model)

    def test_placement_lookup_missing_raises(self):
        strategy = ParallelizationStrategy(4, {})
        with pytest.raises(KeyError):
            strategy.placement("x")


class TestDataParallel:
    def test_covers_all_layers(self):
        model = build_vgg(16)
        strategy = data_parallel_strategy(model, 8)
        strategy.validate_against(model)
        assert strategy.is_pure_data_parallel()

    def test_all_servers_replicate(self):
        model = build_vgg(16)
        strategy = data_parallel_strategy(model, 8)
        for layer in model.layers:
            assert strategy.placement(layer.name).servers == tuple(range(8))


class TestHybrid:
    def test_embeddings_become_model_parallel(self):
        model = build_dlrm(num_embedding_tables=4, embedding_rows=1000)
        strategy = hybrid_strategy(model, 16)
        owners = strategy.mp_owner_servers()
        assert len(owners) == 4
        assert not strategy.is_pure_data_parallel()

    def test_owner_spacing_spreads(self):
        # Default placement spreads owners (the paper's E0->S0, E1->S3...).
        model = build_dlrm(num_embedding_tables=4, embedding_rows=1000)
        strategy = hybrid_strategy(model, 16)
        owners = sorted(
            servers[0] for servers in strategy.mp_owner_servers().values()
        )
        assert owners == [0, 4, 8, 12]

    def test_explicit_owners_respected(self):
        model = build_dlrm(num_embedding_tables=4, embedding_rows=1000)
        names = [l.name for l in model.embedding_layers]
        owners = {names[0]: 0, names[1]: 3, names[2]: 8, names[3]: 13}
        strategy = hybrid_strategy(model, 16, embedding_owners=owners)
        placed = strategy.mp_owner_servers()
        assert placed[names[1]] == (3,)
        assert placed[names[3]] == (13,)

    def test_sharded_subset(self):
        model = build_dlrm(num_embedding_tables=4, embedding_rows=1000)
        names = [l.name for l in model.embedding_layers]
        strategy = hybrid_strategy(
            model, 8, sharded_embeddings=[names[0]]
        )
        assert (
            strategy.placement(names[0]).kind == PlacementKind.SHARDED
        )
        assert (
            strategy.placement(names[1]).kind
            == PlacementKind.MODEL_PARALLEL
        )

    def test_no_embeddings_degenerates_to_dp(self):
        model = build_vgg(16)
        strategy = hybrid_strategy(model, 8)
        assert strategy.is_pure_data_parallel()


class TestAllSharded:
    def test_every_table_sharded(self):
        model = build_dlrm(num_embedding_tables=6, embedding_rows=1000)
        strategy = all_sharded_strategy(model, 8)
        for layer in model.embedding_layers:
            assert (
                strategy.placement(layer.name).kind == PlacementKind.SHARDED
            )


class TestWithPlacement:
    def test_returns_new_strategy(self):
        model = build_dlrm(num_embedding_tables=2, embedding_rows=1000)
        strategy = hybrid_strategy(model, 4)
        name = model.embedding_layers[0].name
        updated = strategy.with_placement(
            name, LayerPlacement(PlacementKind.MODEL_PARALLEL, (2,))
        )
        assert updated is not strategy
        assert updated.placement(name).servers == (2,)
        assert strategy.placement(name).servers != (2,)
