"""End-to-end integration tests: the full co-optimization pipeline."""

import pytest

from repro import (
    AlternatingOptimizer,
    IdealSwitchFabric,
    MCMCSearch,
    TopoOptFabric,
    build_model,
    compute_time_seconds,
    extract_traffic,
    hybrid_strategy,
    simulate_iteration,
    topology_finder,
)
from repro.models import build_dlrm
from repro.network.cost import cost_equivalent_fattree_bandwidth
from repro.network.fattree import FatTreeFabric

GBPS = 1e9


def small_dlrm():
    return build_dlrm(
        num_embedding_tables=8,
        embedding_rows=500_000,
        embedding_dim=128,
        num_dense_layers=4,
        dense_layer_size=1024,
        num_feature_layers=4,
        feature_layer_size=1024,
        batch_per_gpu=32,
    )


class TestFullPipeline:
    """The headline experiment at reduced scale: TopoOpt vs baselines."""

    @pytest.fixture(scope="class")
    def setup(self):
        n, d, bandwidth = 16, 4, 100 * GBPS
        model = small_dlrm()
        search = MCMCSearch(model, num_servers=n, seed=0)
        optimizer = AlternatingOptimizer(
            num_servers=n,
            degree=d,
            link_bandwidth_bps=bandwidth,
            search=search,
            max_rounds=3,
            mcmc_iterations=80,
        )
        result = optimizer.run()
        compute = search.compute_s
        return n, d, bandwidth, model, result, compute

    def test_topoopt_beats_cost_equivalent_fattree(self, setup):
        # Figure 11's headline: TopoOpt substantially beats the
        # cost-equivalent Fat-tree on a communication-heavy model.
        n, d, bandwidth, model, result, compute = setup
        topo_iter = simulate_iteration(
            result.fabric, result.traffic, compute
        ).total_s
        equiv_gbps = cost_equivalent_fattree_bandwidth(n, d, 100)
        fattree = FatTreeFabric(n, 1, equiv_gbps * GBPS)
        fat_iter = simulate_iteration(
            fattree, result.traffic, compute
        ).total_s
        assert topo_iter < fat_iter
        assert fat_iter / topo_iter > 1.3  # meaningful speedup

    def test_topoopt_within_factor_of_ideal(self, setup):
        n, d, bandwidth, model, result, compute = setup
        topo_iter = simulate_iteration(
            result.fabric, result.traffic, compute
        ).total_s
        ideal = IdealSwitchFabric(n, d, bandwidth)
        ideal_iter = simulate_iteration(
            ideal, result.traffic, compute
        ).total_s
        assert topo_iter < 2.5 * ideal_iter

    def test_final_strategy_is_hybrid(self, setup):
        # With 0.5M x 128 tables, DP AllReduce would be enormous: the
        # search should keep tables model-parallel/sharded.
        *_, result, _ = setup
        assert not result.strategy.is_pure_data_parallel()


class TestManualPipeline:
    def test_explicit_stages_compose(self):
        n, d = 12, 4
        model = build_model("DLRM", scale="testbed")
        strategy = hybrid_strategy(model, n)
        traffic = extract_traffic(model, strategy, 64, 1)
        result = topology_finder(
            n, d, traffic.allreduce_groups, traffic.mp_matrix
        )
        fabric = TopoOptFabric(result, 25 * GBPS)
        compute = compute_time_seconds(model, 64, 1)
        breakdown = simulate_iteration(fabric, traffic, compute)
        assert breakdown.total_s > 0
        assert breakdown.allreduce_s > 0
        assert breakdown.mp_s > 0

    def test_quickstart_docstring_flow(self):
        # The README / __init__ quick-start must keep working verbatim.
        from repro import (
            build_model,
            hybrid_strategy,
            extract_traffic,
            topology_finder,
            TopoOptFabric,
            simulate_iteration,
        )

        model = build_model("DLRM", scale="testbed")
        strategy = hybrid_strategy(model, num_servers=12)
        traffic = extract_traffic(
            model, strategy, batch_per_gpu=64, gpus_per_server=1
        )
        result = topology_finder(
            12, 4, traffic.allreduce_groups, traffic.mp_matrix
        )
        fabric = TopoOptFabric(result, link_bandwidth_bps=25e9)
        breakdown = simulate_iteration(fabric, traffic, compute_s=0.05)
        assert breakdown.total_s > 0.05
