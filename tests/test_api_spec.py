"""Spec serialization: round-trips, unknown-key rejection, golden files."""

import json
from pathlib import Path

import pytest

from repro.api import (
    ClusterSpec,
    ExperimentSpec,
    FabricSpec,
    OptimizerSpec,
    SimSpec,
    SpecError,
    WorkloadSpec,
    parse_overrides,
    parse_scalar,
)
from repro.models.configs import CONFIG_FAMILIES

SPECS_DIR = Path(__file__).resolve().parents[1] / "examples" / "specs"


def all_preset_specs():
    """One spec per (family, model) preset plus custom/fabric variants."""
    specs = []
    for family, table in CONFIG_FAMILIES.items():
        for model in table:
            specs.append(
                ExperimentSpec(
                    name=f"{model}-{family}",
                    workload=WorkloadSpec(model=model, scale=family),
                )
            )
    specs.append(
        ExperimentSpec(
            workload=WorkloadSpec(
                model="DLRM",
                scale="custom",
                options={"num_embedding_tables": 4, "embedding_dim": 64},
            ),
            fabric=FabricSpec(
                kind="leaf-spine",
                options={"servers_per_rack": 8, "num_spines": 2},
            ),
            optimizer=OptimizerSpec(strategy="auto"),
            sim=SimSpec(solver="batch"),
            baselines=(
                FabricSpec(kind="sipml"),
                FabricSpec(kind="expander", degree=6),
            ),
            seed=7,
        )
    )
    return specs


class TestRoundTrip:
    def test_exact_round_trip_across_presets(self):
        for spec in all_preset_specs():
            assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        for spec in all_preset_specs():
            dumped = json.dumps(spec.to_dict(), sort_keys=True)
            restored = ExperimentSpec.from_dict(json.loads(dumped))
            assert restored == spec
            assert json.dumps(restored.to_dict(), sort_keys=True) == dumped

    def test_to_dict_is_json_native(self):
        spec = all_preset_specs()[-1]
        json.dumps(spec.to_dict())  # raises on non-native types

    def test_tuple_options_normalize_to_lists(self):
        spec = FabricSpec(kind="topoopt", options={"strides": (1, 3)})
        assert spec.options["strides"] == [1, 3]
        assert FabricSpec.from_dict(spec.to_dict()) == spec


class TestUnknownKeys:
    @pytest.mark.parametrize(
        "cls", [WorkloadSpec, ClusterSpec, FabricSpec, OptimizerSpec,
                SimSpec]
    )
    def test_sub_spec_rejects_unknown_key(self, cls):
        data = cls().to_dict() if cls is not FabricSpec else (
            FabricSpec().to_dict()
        )
        data["frobnicate"] = 1
        with pytest.raises(SpecError, match="frobnicate"):
            cls.from_dict(data)

    def test_experiment_spec_rejects_unknown_key(self):
        data = ExperimentSpec().to_dict()
        data["cluter"] = {"servers": 8}  # typo'd section
        with pytest.raises(SpecError, match="cluter"):
            ExperimentSpec.from_dict(data)

    def test_nested_unknown_key_names_sub_spec(self):
        data = ExperimentSpec().to_dict()
        data["cluster"]["serverz"] = 8
        with pytest.raises(SpecError, match="ClusterSpec.*serverz"):
            ExperimentSpec.from_dict(data)


class TestValidation:
    def test_unknown_scale_lists_families(self):
        with pytest.raises(SpecError, match="galactic"):
            WorkloadSpec(model="DLRM", scale="galactic")

    def test_unknown_model_lists_presets(self):
        with pytest.raises(SpecError, match="AlexNet"):
            WorkloadSpec(model="AlexNet", scale="shared")

    def test_unknown_fabric_kind_lists_registry(self):
        with pytest.raises(SpecError, match="torus"):
            ExperimentSpec(fabric=FabricSpec(kind="torus"))

    def test_unknown_strategy_lists_registry(self):
        with pytest.raises(SpecError, match="zigzag"):
            OptimizerSpec(strategy="zigzag")

    def test_bad_cluster_dimensions(self):
        with pytest.raises(SpecError, match="servers"):
            ClusterSpec(servers=1)
        with pytest.raises(SpecError, match="bandwidth"):
            ClusterSpec(bandwidth_gbps=0)

    def test_bad_solver(self):
        with pytest.raises(SpecError, match="solver"):
            SimSpec(solver="magic")


class TestOverrides:
    def test_shorthand_and_dotted(self):
        spec = ExperimentSpec.preset("shared")
        swept = spec.with_overrides(
            {"servers": 24, "cluster.degree": 8, "fabric.kind": "expander"}
        )
        assert swept.cluster.servers == 24
        assert swept.cluster.degree == 8
        assert swept.fabric.kind == "expander"
        # original untouched (frozen value semantics)
        assert spec.cluster.servers == 16

    def test_options_paths_can_create_keys(self):
        spec = ExperimentSpec.preset("shared").with_overrides(
            {"fabric.options.servers_per_rack": 8}
        )
        assert spec.fabric.options["servers_per_rack"] == 8

    def test_unknown_override_path_fails(self):
        with pytest.raises(SpecError, match="cluster.serverz"):
            ExperimentSpec.preset("shared").with_overrides(
                {"cluster.serverz": 3}
            )

    def test_override_revalidates(self):
        with pytest.raises(SpecError, match="torus"):
            ExperimentSpec.preset("shared").with_overrides(
                {"fabric.kind": "torus"}
            )

    def test_parse_scalar_and_overrides(self):
        assert parse_scalar("16") == 16
        assert parse_scalar("2.5") == 2.5
        assert parse_scalar("true") is True
        assert parse_scalar("None") is None
        assert parse_scalar("dlrm") == "dlrm"
        assert parse_overrides(["servers=8", "model=VGG16"]) == {
            "servers": 8, "model": "VGG16",
        }
        with pytest.raises(SpecError):
            parse_overrides(["no-equals-sign"])


class TestGoldenSpecs:
    """The example spec files must always parse (CI contract)."""

    def test_specs_directory_is_populated(self):
        assert sorted(p.name for p in SPECS_DIR.glob("*.json")) == [
            "quickstart.json", "scenario_shared.json",
            "shared_compare.json", "sweep_grid.json",
        ]

    @pytest.mark.parametrize(
        "name", ["quickstart.json", "shared_compare.json"]
    )
    def test_golden_experiment_specs_parse(self, name):
        data = json.loads((SPECS_DIR / name).read_text())
        spec = ExperimentSpec.from_dict(data)
        assert spec.to_dict() == data  # files stay in canonical form
        assert spec.cluster.servers >= 2

    def test_golden_sweep_grid_applies_to_quickstart(self):
        base = ExperimentSpec.from_dict(
            json.loads((SPECS_DIR / "quickstart.json").read_text())
        )
        grid = json.loads((SPECS_DIR / "sweep_grid.json").read_text())
        for key, values in grid.items():
            assert isinstance(values, list) and values, key
            for value in values:
                base.with_overrides({key: value})  # must not raise

    def test_quickstart_spec_matches_preset(self):
        data = json.loads((SPECS_DIR / "quickstart.json").read_text())
        assert ExperimentSpec.from_dict(data) == ExperimentSpec.preset(
            "testbed"
        )
