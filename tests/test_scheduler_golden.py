"""Golden determinism snapshots for the scheduler policies.

Every policy configuration in
:data:`repro.cluster.invariants.GOLDEN_POLICIES` has a committed
``ScenarioResult`` JSON snapshot under ``tests/golden/``; a fresh run
of the same (spec, seed) must reproduce it byte for byte, wired like
the kernel-vs-reference byte-identity tests.  A legitimate semantic
change regenerates them with::

    PYTHONPATH=src python scripts/regen_golden_scheduler.py

and the snapshot diff then documents exactly what changed.
"""

import json
import pathlib

import pytest

from repro.cluster.engine import run_scenario
from repro.cluster.invariants import (
    GOLDEN_POLICIES,
    golden_scenario_spec,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.mark.parametrize("key", sorted(GOLDEN_POLICIES))
def test_policy_matches_golden_snapshot(key):
    path = GOLDEN_DIR / f"scheduler_{key}.json"
    assert path.exists(), (
        f"missing snapshot {path}; run "
        f"scripts/regen_golden_scheduler.py"
    )
    expected = path.read_text()
    result = run_scenario(golden_scenario_spec(key))
    actual = (
        json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n"
    )
    assert actual == expected, (
        f"policy {key!r} diverged from its golden snapshot; if the "
        f"change is intentional, regenerate with "
        f"scripts/regen_golden_scheduler.py"
    )


def test_snapshots_cover_distinct_behaviors():
    """The five snapshots are not five copies of one timeline."""
    logs = {}
    for key in GOLDEN_POLICIES:
        data = json.loads(
            (GOLDEN_DIR / f"scheduler_{key}.json").read_text()
        )
        logs[key] = [
            (e["event"], e["job_index"])
            for e in data["scheduler_log"]
        ]
    assert logs["fcfs"] != logs["easy"]
    assert any(e == "preempt" for e, _ in logs["preempt"])
    assert any(e == "resize" for e, _ in logs["elastic"])
