"""Equivalence tests: the sparse cost-model kernel vs. the seed loops.

The kernel layer (repro.perf.costmodel) must produce the same phase
times and iteration costs as the retained pure-Python reference
(ReferenceIterationCostModel), and the delta-updated incremental
evaluator must track the full rebuild exactly across randomized move
sequences -- including past the re-synchronization interval.
"""

import math
import random

import numpy as np
import pytest

from repro.core.topology_finder import topology_finder
from repro.models import build_dlrm, build_vgg
from repro.network.fattree import (
    IdealSwitchFabric,
    LeafSpineFabric,
    OversubscribedFatTreeFabric,
)
from repro.network.topoopt import TopoOptFabric
from repro.parallel.mcmc import MCMCSearch, ReferenceIterationCostModel
from repro.parallel.strategy import (
    LayerPlacement,
    PlacementKind,
    all_sharded_strategy,
    data_parallel_strategy,
    hybrid_strategy,
)
from repro.parallel.traffic import (
    _add_model_parallel_traffic,
    _add_sharded_traffic,
    extract_traffic,
    layer_traffic,
)
from repro.perf.costmodel import (
    SYNC_INTERVAL,
    CostModelKernel,
    IncrementalCostEvaluator,
)

GBPS = 1e9
N = 8


def small_dlrm():
    return build_dlrm(
        num_embedding_tables=4,
        embedding_rows=100_000,
        embedding_dim=256,
        num_dense_layers=2,
        dense_layer_size=512,
        num_feature_layers=2,
        feature_layer_size=512,
        batch_per_gpu=32,
    )


def topoopt_fabric(model, n=N, degree=4):
    search = MCMCSearch(model, num_servers=n, seed=0)
    traffic = extract_traffic(
        model, search.initial_strategy(), search.batch_per_gpu
    )
    result = topology_finder(
        n, degree, traffic.allreduce_groups, traffic.mp_matrix
    )
    return TopoOptFabric(result, 100 * GBPS)


def fabrics_for(model):
    return [
        IdealSwitchFabric(N, 4, 100 * GBPS),
        LeafSpineFabric(N, 4, 100 * GBPS, servers_per_rack=2, num_spines=2),
        OversubscribedFatTreeFabric(N, 4, 100 * GBPS, servers_per_rack=4),
        topoopt_fabric(model),
    ]


def strategies_for(model):
    return [
        data_parallel_strategy(model, N),
        hybrid_strategy(model, N),
        all_sharded_strategy(model, N),
    ]


class TestKernelEquivalence:
    def test_phase_times_match_reference(self):
        model = small_dlrm()
        for fabric in fabrics_for(model):
            kernel = CostModelKernel(fabric)
            reference = ReferenceIterationCostModel(fabric, 0.0)
            for strategy in strategies_for(model):
                traffic = extract_traffic(model, strategy, 32)
                assert kernel.mp_time(traffic) == pytest.approx(
                    reference.mp_time(traffic), rel=1e-12
                )
                assert kernel.allreduce_time(traffic) == pytest.approx(
                    reference.allreduce_time(traffic), rel=1e-12
                )

    def test_pure_dp_model_matches(self):
        model = build_vgg(16)
        strategy = data_parallel_strategy(model, N)
        traffic = extract_traffic(model, strategy, 8)
        for fabric in fabrics_for(model):
            kernel = CostModelKernel(fabric)
            reference = ReferenceIterationCostModel(fabric, 1.0)
            assert kernel.cost(traffic, 1.0) == pytest.approx(
                reference.cost(traffic), rel=1e-12
            )

    def test_unroutable_traffic_is_infinite(self):
        class DeadFabric:
            name = "dead"

            def capacities(self):
                return {(0, 1): GBPS}

            def paths(self, src, dst, kind="mp"):
                return []

        model = small_dlrm()
        traffic = extract_traffic(model, hybrid_strategy(model, 4), 8)
        kernel = CostModelKernel(DeadFabric())
        assert math.isinf(kernel.cost(traffic, 0.0))


class TestLayerDecomposition:
    def test_contributions_sum_to_extracted_matrix(self):
        model = small_dlrm()
        for strategy in strategies_for(model):
            summary = extract_traffic(model, strategy, 32)
            total = np.zeros(N * N)
            groups = {}
            for layer in model.layers:
                contribution = layer_traffic(
                    layer, strategy.placement(layer.name), 32 * 4, N
                )
                np.add.at(
                    total,
                    contribution.mp_pair_indices,
                    contribution.mp_pair_bytes,
                )
                if contribution.dp_replicas is not None:
                    groups[contribution.dp_replicas] = (
                        groups.get(contribution.dp_replicas, 0.0)
                        + contribution.dp_bytes
                    )
            assert np.array_equal(total.reshape(N, N), summary.mp_matrix)
            assert groups == {
                g.members: g.total_bytes for g in summary.allreduce_groups
            }

    def test_matches_seed_accumulators(self):
        model = small_dlrm()
        layer = model.embedding_layers[0]
        batch_per_server = 128

        mp = layer_traffic(
            layer,
            LayerPlacement(PlacementKind.MODEL_PARALLEL, (3,)),
            batch_per_server,
            N,
        )
        expected = np.zeros((N, N))
        _add_model_parallel_traffic(
            expected, (3,), layer.activation_bytes_per_sample,
            batch_per_server, N,
        )
        got = np.zeros(N * N)
        np.add.at(got, mp.mp_pair_indices, mp.mp_pair_bytes)
        assert np.array_equal(got.reshape(N, N), expected)

        sharded = layer_traffic(
            layer, LayerPlacement(PlacementKind.SHARDED), batch_per_server, N
        )
        expected = np.zeros((N, N))
        _add_sharded_traffic(
            expected, layer.activation_bytes_per_sample, batch_per_server, N
        )
        got = np.zeros(N * N)
        np.add.at(got, sharded.mp_pair_indices, sharded.mp_pair_bytes)
        assert np.array_equal(got.reshape(N, N), expected)


def random_placement(rng, n):
    move = rng.random()
    if move < 0.45:
        return LayerPlacement(
            PlacementKind.MODEL_PARALLEL, (rng.randrange(n),)
        )
    if move < 0.8:
        return LayerPlacement(PlacementKind.DATA_PARALLEL, tuple(range(n)))
    return LayerPlacement(PlacementKind.SHARDED)


class TestIncrementalEvaluator:
    def _evaluator(self, model, fabric, strategy):
        search = MCMCSearch(model, num_servers=N, seed=0)
        kernel = CostModelKernel(fabric)
        evaluator = IncrementalCostEvaluator(kernel, search.compute_s)
        compiled = {
            layer.name: kernel.compile_layer(layer_traffic(
                layer,
                strategy.placement(layer.name),
                search.batch_per_server,
                N,
            ))
            for layer in model.layers
        }
        evaluator.reset(compiled)
        return search, kernel, evaluator

    def test_random_moves_track_full_rebuild_oracle(self):
        model = small_dlrm()
        rng = random.Random(11)
        movable = [layer.name for layer in model.embedding_layers]
        for fabric in (
            IdealSwitchFabric(N, 4, 100 * GBPS),
            topoopt_fabric(model),
        ):
            strategy = hybrid_strategy(model, N)
            search, kernel, evaluator = self._evaluator(
                model, fabric, strategy
            )
            reference = ReferenceIterationCostModel(fabric, search.compute_s)
            layers = {layer.name: layer for layer in model.layers}
            for _ in range(120):
                name = rng.choice(movable)
                placement = random_placement(rng, N)
                strategy = strategy.with_placement(name, placement)
                evaluator.set_layer(name, kernel.compile_layer(layer_traffic(
                    layers[name], placement, search.batch_per_server, N
                )))
                expected = reference.cost(extract_traffic(
                    model, strategy, search.batch_per_gpu
                ))
                assert evaluator.cost() == pytest.approx(
                    expected, rel=1e-12
                )

    def test_undo_is_exact(self):
        model = small_dlrm()
        fabric = topoopt_fabric(model)
        strategy = hybrid_strategy(model, N)
        search, kernel, evaluator = self._evaluator(model, fabric, strategy)
        name = model.embedding_layers[0].name
        layers = {layer.name: layer for layer in model.layers}
        before = evaluator.cost()
        old = evaluator.layer(name)
        evaluator.set_layer(name, kernel.compile_layer(layer_traffic(
            layers[name],
            LayerPlacement(PlacementKind.SHARDED),
            search.batch_per_server,
            N,
        )))
        assert evaluator.cost() != pytest.approx(before, rel=1e-6)
        evaluator.set_layer(name, old)
        assert evaluator.cost() == pytest.approx(before, rel=1e-12)

    def test_unroutable_state_is_exact_after_moves(self):
        # Regression: unroutability must be tracked by exact counting,
        # not float byte sums -- moving every unroutable layer away
        # must return the evaluator to a finite cost immediately (not
        # only at the next re-sync), matching the rebuild oracle.
        class OneWayBlockedFabric:
            # Fully routable except 0 -> 2 (the reverse direction and
            # the AllReduce ring 0 -> 1 -> 2 -> 0 still work).
            name = "partial"
            num_servers = 3

            def capacities(self):
                caps = {}
                for a in range(3):
                    for b in range(3):
                        if a != b and (a, b) != (0, 2):
                            caps[(a, b)] = GBPS
                return caps

            def paths(self, src, dst, kind="mp"):
                if src == dst:
                    return [[src]]
                if (src, dst) == (0, 2):
                    return []
                return [[src, dst]]

        model = small_dlrm()
        n = 3
        fabric = OneWayBlockedFabric()
        search = MCMCSearch(model, num_servers=n, seed=0)
        kernel = CostModelKernel(fabric)
        evaluator = IncrementalCostEvaluator(kernel, search.compute_s)
        # Two embedding tables model-parallel on server 0: each puts
        # MP demand on the pathless (0, 2) pair.
        strategy = hybrid_strategy(
            model, n,
            embedding_owners={
                layer.name: 0 for layer in model.embedding_layers
            },
        )
        compiled = {
            layer.name: kernel.compile_layer(layer_traffic(
                layer, strategy.placement(layer.name),
                search.batch_per_server, n,
            ))
            for layer in model.layers
        }
        evaluator.reset(compiled)
        assert math.isinf(evaluator.cost())
        layers = {layer.name: layer for layer in model.layers}
        dp = LayerPlacement(PlacementKind.DATA_PARALLEL, tuple(range(n)))
        for layer in model.embedding_layers:
            strategy = strategy.with_placement(layer.name, dp)
            evaluator.set_layer(layer.name, kernel.compile_layer(
                layer_traffic(
                    layers[layer.name], dp, search.batch_per_server, n
                )
            ))
        cost = evaluator.cost()
        assert math.isfinite(cost)
        expected = ReferenceIterationCostModel(fabric, search.compute_s).cost(
            extract_traffic(model, strategy, search.batch_per_gpu)
        )
        assert cost == pytest.approx(expected, rel=1e-12)

    def test_drift_bounded_past_sync_interval(self):
        model = small_dlrm()
        fabric = IdealSwitchFabric(N, 4, 100 * GBPS)
        strategy = hybrid_strategy(model, N)
        search, kernel, evaluator = self._evaluator(model, fabric, strategy)
        name = model.embedding_layers[0].name
        layers = {layer.name: layer for layer in model.layers}
        rng = random.Random(3)
        for _ in range(SYNC_INTERVAL + 50):
            placement = random_placement(rng, N)
            strategy = strategy.with_placement(name, placement)
            evaluator.set_layer(name, kernel.compile_layer(layer_traffic(
                layers[name], placement, search.batch_per_server, N
            )))
        reference = ReferenceIterationCostModel(fabric, search.compute_s)
        expected = reference.cost(extract_traffic(
            model, strategy, search.batch_per_gpu
        ))
        assert evaluator.cost() == pytest.approx(expected, rel=1e-12)
