"""Unit tests for the MP-sub-topology matching (Algorithm 1, step 3)."""

import numpy as np
import pytest

from repro.core.matching import (
    halve_discount,
    matching_edge_counts,
    max_weight_matching,
    mp_matchings,
)


def demand_for(pairs, n):
    matrix = np.zeros((n, n))
    for (i, j), value in pairs.items():
        matrix[i, j] = value
    return matrix


class TestMaxWeightMatching:
    def test_picks_heaviest_pair(self):
        demand = demand_for({(0, 1): 100.0, (2, 3): 1.0}, 4)
        matched = max_weight_matching(demand)
        assert (0, 1) in matched

    def test_matching_is_disjoint(self):
        demand = demand_for(
            {(0, 1): 10, (1, 2): 10, (2, 3): 10, (0, 3): 10}, 4
        )
        matched = max_weight_matching(demand)
        used = [node for pair in matched for node in pair]
        assert len(used) == len(set(used))

    def test_weight_beats_cardinality(self):
        # One heavy pair (0,1) vs two light pairs (0,2) + (1,3):
        # Blossom with maxcardinality=False takes the heavy edge.
        demand = demand_for({(0, 1): 100, (0, 2): 1, (1, 3): 1}, 4)
        matched = max_weight_matching(demand)
        assert matched == {(0, 1)}

    def test_zero_demand_empty(self):
        assert max_weight_matching(np.zeros((4, 4))) == set()

    def test_asymmetric_demand_symmetrized(self):
        demand = demand_for({(0, 1): 10, (1, 0): 90, (2, 3): 50}, 4)
        matched = max_weight_matching(demand)
        assert (0, 1) in matched  # combined weight 100 > 50

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            max_weight_matching(np.zeros((3, 4)))


class TestMpMatchings:
    def test_round_count(self):
        demand = demand_for({(0, 1): 10, (2, 3): 5}, 4)
        assert len(mp_matchings(demand, rounds=3)) == 3

    def test_zero_rounds(self):
        assert mp_matchings(np.ones((4, 4)), rounds=0) == []

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            mp_matchings(np.ones((2, 2)), rounds=-1)

    def test_halving_diversifies(self):
        # Round 1: {(0,1),(2,3)} weighs 210 > 120.  After halving (0,1)
        # to 100, round 2 flips to {(0,2),(1,3)} = 120 > 110.
        demand = demand_for(
            {(0, 1): 200, (0, 2): 60, (1, 3): 60, (2, 3): 10}, 4
        )
        rounds = mp_matchings(demand, rounds=2)
        assert (0, 1) in rounds[0]
        assert (0, 2) in rounds[1] and (1, 3) in rounds[1]

    def test_no_discount_repeats_heaviest(self):
        demand = demand_for(
            {(0, 1): 200, (0, 2): 60, (1, 3): 60, (2, 3): 10}, 4
        )
        rounds = mp_matchings(demand, rounds=2, discount=lambda v: v)
        assert (0, 1) in rounds[0] and (0, 1) in rounds[1]

    def test_original_demand_unchanged(self):
        demand = demand_for({(0, 1): 100}, 4)
        snapshot = demand.copy()
        mp_matchings(demand, rounds=3)
        assert np.array_equal(demand, snapshot)


class TestHelpers:
    def test_halve_discount(self):
        assert halve_discount(8.0) == 4.0

    def test_matching_edge_counts(self):
        rounds = [{(0, 1), (2, 3)}, {(0, 1)}, set()]
        counts = matching_edge_counts(rounds)
        assert counts == {(0, 1): 2, (2, 3): 1}


class TestKernelBackendOracle:
    """The scipy kernel backend against the retained Blossom oracle."""

    @staticmethod
    def total_weight(matched, demand):
        return sum(
            demand[i, j] + demand[j, i] for i, j in matched
        )

    @staticmethod
    def assert_valid(matched, demand):
        seen = set()
        for i, j in matched:
            assert i < j
            assert demand[i, j] + demand[j, i] > 0
            assert i not in seen and j not in seen
            seen.update((i, j))

    def test_random_graphs_match_oracle_weight(self):
        from repro.core.matching import max_weight_matching_reference

        rng = np.random.default_rng(29)
        for trial in range(60):
            n = int(rng.integers(2, 14))
            density = float(rng.uniform(0.1, 0.9))
            demand = rng.uniform(0.0, 100.0, size=(n, n))
            demand *= rng.random((n, n)) < density
            np.fill_diagonal(demand, 0.0)
            kernel = max_weight_matching(demand, backend="kernel")
            oracle = max_weight_matching_reference(demand)
            self.assert_valid(kernel, demand)
            assert self.total_weight(kernel, demand) == pytest.approx(
                self.total_weight(oracle, demand), rel=1e-9, abs=1e-9
            )

    def test_odd_cycle_falls_back_to_blossom_exactly(self):
        # A 5-cycle is non-bipartite: the kernel must route it through
        # the Blossom fallback and still find the optimal matching
        # (the two heaviest non-adjacent edges).
        n = 5
        demand = np.zeros((n, n))
        weights = [10.0, 1.0, 9.0, 1.0, 8.0]
        for k in range(n):
            demand[k, (k + 1) % n] = weights[k]
        matched = max_weight_matching(demand, backend="kernel")
        assert matched == {(0, 1), (2, 3)}

    def test_path_component_uses_hungarian(self):
        # Even structures (paths) are bipartite: alternating heavy
        # edges force the kernel to skip the single heaviest edge's
        # neighbors, a case greedy matching gets wrong.
        demand = demand_for(
            {(0, 1): 5.0, (1, 2): 8.0, (2, 3): 5.0}, 4
        )
        matched = max_weight_matching(demand, backend="kernel")
        assert matched == {(0, 1), (2, 3)}

    def test_backends_validated(self):
        with pytest.raises(ValueError, match="backend"):
            max_weight_matching(np.zeros((2, 2)), backend="bogus")

    def test_mp_matchings_backend_passthrough(self):
        demand = demand_for({(0, 1): 100.0, (2, 3): 40.0}, 4)
        kernel = mp_matchings(demand, rounds=3, backend="kernel")
        reference = mp_matchings(demand, rounds=3, backend="reference")
        assert kernel == reference
