"""Unit tests for the MP-sub-topology matching (Algorithm 1, step 3)."""

import numpy as np
import pytest

from repro.core.matching import (
    halve_discount,
    matching_edge_counts,
    max_weight_matching,
    mp_matchings,
)


def demand_for(pairs, n):
    matrix = np.zeros((n, n))
    for (i, j), value in pairs.items():
        matrix[i, j] = value
    return matrix


class TestMaxWeightMatching:
    def test_picks_heaviest_pair(self):
        demand = demand_for({(0, 1): 100.0, (2, 3): 1.0}, 4)
        matched = max_weight_matching(demand)
        assert (0, 1) in matched

    def test_matching_is_disjoint(self):
        demand = demand_for(
            {(0, 1): 10, (1, 2): 10, (2, 3): 10, (0, 3): 10}, 4
        )
        matched = max_weight_matching(demand)
        used = [node for pair in matched for node in pair]
        assert len(used) == len(set(used))

    def test_weight_beats_cardinality(self):
        # One heavy pair (0,1) vs two light pairs (0,2) + (1,3):
        # Blossom with maxcardinality=False takes the heavy edge.
        demand = demand_for({(0, 1): 100, (0, 2): 1, (1, 3): 1}, 4)
        matched = max_weight_matching(demand)
        assert matched == {(0, 1)}

    def test_zero_demand_empty(self):
        assert max_weight_matching(np.zeros((4, 4))) == set()

    def test_asymmetric_demand_symmetrized(self):
        demand = demand_for({(0, 1): 10, (1, 0): 90, (2, 3): 50}, 4)
        matched = max_weight_matching(demand)
        assert (0, 1) in matched  # combined weight 100 > 50

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            max_weight_matching(np.zeros((3, 4)))


class TestMpMatchings:
    def test_round_count(self):
        demand = demand_for({(0, 1): 10, (2, 3): 5}, 4)
        assert len(mp_matchings(demand, rounds=3)) == 3

    def test_zero_rounds(self):
        assert mp_matchings(np.ones((4, 4)), rounds=0) == []

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            mp_matchings(np.ones((2, 2)), rounds=-1)

    def test_halving_diversifies(self):
        # Round 1: {(0,1),(2,3)} weighs 210 > 120.  After halving (0,1)
        # to 100, round 2 flips to {(0,2),(1,3)} = 120 > 110.
        demand = demand_for(
            {(0, 1): 200, (0, 2): 60, (1, 3): 60, (2, 3): 10}, 4
        )
        rounds = mp_matchings(demand, rounds=2)
        assert (0, 1) in rounds[0]
        assert (0, 2) in rounds[1] and (1, 3) in rounds[1]

    def test_no_discount_repeats_heaviest(self):
        demand = demand_for(
            {(0, 1): 200, (0, 2): 60, (1, 3): 60, (2, 3): 10}, 4
        )
        rounds = mp_matchings(demand, rounds=2, discount=lambda v: v)
        assert (0, 1) in rounds[0] and (0, 1) in rounds[1]

    def test_original_demand_unchanged(self):
        demand = demand_for({(0, 1): 100}, 4)
        snapshot = demand.copy()
        mp_matchings(demand, rounds=3)
        assert np.array_equal(demand, snapshot)


class TestHelpers:
    def test_halve_discount(self):
        assert halve_discount(8.0) == 4.0

    def test_matching_edge_counts(self):
        rounds = [{(0, 1), (2, 3)}, {(0, 1)}, set()]
        counts = matching_edge_counts(rounds)
        assert counts == {(0, 1): 2, (2, 3): 1}
