"""Tests for the synthetic production-trace generator (section 2.2)."""

import numpy as np
import pytest

from repro.analysis.cdf import empirical_cdf
from repro.analysis.heatmap import diagonal_offsets
from repro.traces.generator import (
    WORKLOAD_MIX,
    ProductionTraceGenerator,
)


class TestJobPopulation:
    def test_population_size(self):
        gen = ProductionTraceGenerator(seed=1)
        jobs = gen.sample_population(200)
        assert len(jobs) == 200

    def test_worker_counts_in_paper_range(self):
        # Figure 2a: workers clipped to [8, 700].
        gen = ProductionTraceGenerator(seed=1)
        jobs = gen.sample_population(500)
        workers = [j.num_workers for j in jobs]
        assert min(workers) >= 8
        assert max(workers) <= 700

    def test_most_jobs_between_32_and_700_workers(self):
        # "Most jobs are distributed across 32 to 700 workers."
        gen = ProductionTraceGenerator(seed=2)
        jobs = gen.sample_population(1000)
        in_range = sum(1 for j in jobs if 32 <= j.num_workers <= 700)
        assert in_range / len(jobs) > 0.6

    def test_median_duration_over_10_hours(self):
        # Figure 2b: "most jobs last over 10 hours."
        gen = ProductionTraceGenerator(seed=3)
        jobs = gen.sample_population(1000)
        cdf = empirical_cdf([j.duration_hours for j in jobs])
        assert cdf.median > 10.0

    def test_top_decile_over_96_hours(self):
        # "The top 10% of jobs take more than 96 hours."
        gen = ProductionTraceGenerator(seed=3)
        jobs = gen.sample_population(2000)
        cdf = empirical_cdf([j.duration_hours for j in jobs])
        assert cdf.percentile(0.90) > 96.0

    def test_family_filter(self):
        gen = ProductionTraceGenerator(seed=1)
        jobs = gen.sample_population(50, family="Recommendation")
        assert all(j.family == "Recommendation" for j in jobs)

    def test_all_families_known(self):
        gen = ProductionTraceGenerator(seed=4)
        jobs = gen.sample_population(200)
        assert {j.family for j in jobs} <= set(WORKLOAD_MIX)

    def test_deterministic_for_seed(self):
        a = ProductionTraceGenerator(seed=9).sample_population(20)
        b = ProductionTraceGenerator(seed=9).sample_population(20)
        assert [j.num_workers for j in a] == [j.num_workers for j in b]

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            ProductionTraceGenerator().sample_population(0)


class TestProductionHeatmap:
    def test_ring_diagonal_present(self):
        # Figure 4: every production heatmap shows the ring-AllReduce
        # diagonal.
        gen = ProductionTraceGenerator(seed=0)
        heatmap = gen.production_heatmap(16, num_mp_layers=3, seed=1)
        assert 1 in diagonal_offsets(heatmap, threshold=0.05)

    def test_mp_rows_and_columns(self):
        gen = ProductionTraceGenerator(seed=0)
        heatmap = gen.production_heatmap(16, num_mp_layers=3, seed=1)
        # MP owners broadcast to everyone: some row is (almost) full.
        full_rows = [
            i
            for i in range(16)
            if (np.delete(heatmap[i], i) > 0).all()
        ]
        assert full_rows

    def test_iteration_invariance(self):
        # Section 2.2: the per-iteration heatmap is identical across
        # iterations -- our extractor is deterministic by construction.
        gen_a = ProductionTraceGenerator(seed=0)
        gen_b = ProductionTraceGenerator(seed=0)
        h1 = gen_a.production_heatmap(12, 2, seed=5)
        h2 = gen_b.production_heatmap(12, 2, seed=5)
        assert np.array_equal(h1, h2)


class TestNetworkOverheadCurve:
    def test_overhead_grows_with_gpus(self):
        # Figure 3: overhead rises with GPU count.
        gen = ProductionTraceGenerator(seed=0)
        curve = gen.network_overhead_curve(
            allreduce_gb=2.0,
            mp_gb_per_server_pair=0.05,
            compute_s=0.5,
            gpu_counts=[8, 16, 32, 64, 128],
        )
        overheads = [o for _, o in curve]
        assert all(a <= b for a, b in zip(overheads, overheads[1:]))

    def test_overhead_reaches_tens_of_percent(self):
        # "Up to 60% of iteration time" at 128 GPUs.
        gen = ProductionTraceGenerator(seed=0)
        curve = gen.network_overhead_curve(
            allreduce_gb=2.0,
            mp_gb_per_server_pair=0.05,
            compute_s=0.5,
            gpu_counts=[128],
        )
        assert 0.3 < curve[0][1] < 0.9

    def test_fractions_bounded(self):
        gen = ProductionTraceGenerator(seed=0)
        curve = gen.network_overhead_curve(1.0, 0.01, 1.0, [8, 128])
        assert all(0 <= o < 1 for _, o in curve)
