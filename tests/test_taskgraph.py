"""Unit tests for the iteration task graph."""

import pytest

from repro.models import build_dlrm, build_vgg
from repro.parallel.strategy import data_parallel_strategy, hybrid_strategy
from repro.parallel.taskgraph import build_iteration_plan


def small_dlrm():
    return build_dlrm(
        num_embedding_tables=4,
        embedding_rows=10_000,
        embedding_dim=64,
        num_dense_layers=2,
        dense_layer_size=256,
        num_feature_layers=2,
        feature_layer_size=256,
    )


class TestDataParallelPlan:
    def test_compute_task_per_server(self):
        model = build_vgg(16)
        plan = build_iteration_plan(
            model, data_parallel_strategy(model, 4), batch_per_gpu=8
        )
        assert len(plan.compute_tasks) == 4

    def test_balanced_compute(self):
        model = build_vgg(16)
        plan = build_iteration_plan(
            model, data_parallel_strategy(model, 4), batch_per_gpu=8
        )
        durations = [t.duration_s for t in plan.compute_tasks]
        assert max(durations) == pytest.approx(min(durations))

    def test_no_mp_phase(self):
        model = build_vgg(16)
        plan = build_iteration_plan(
            model, data_parallel_strategy(model, 4), batch_per_gpu=8
        )
        assert not plan.mp_phase.tasks

    def test_allreduce_ring_task_count(self):
        model = build_vgg(16)
        plan = build_iteration_plan(
            model, data_parallel_strategy(model, 4), batch_per_gpu=8
        )
        assert len(plan.allreduce_phase.tasks) == 4  # one per ring edge

    def test_every_server_runs_all_layers(self):
        model = build_vgg(16)
        plan = build_iteration_plan(
            model, data_parallel_strategy(model, 4), batch_per_gpu=8
        )
        for task in plan.compute_tasks:
            assert len(task.layer_names) == len(model.layers)


class TestHybridPlan:
    def test_mp_tasks_created(self):
        model = small_dlrm()
        plan = build_iteration_plan(
            model, hybrid_strategy(model, 8), batch_per_gpu=8
        )
        assert plan.mp_phase.tasks
        assert plan.mp_phase.total_bytes > 0

    def test_embedding_layers_only_on_owners(self):
        model = small_dlrm()
        strategy = hybrid_strategy(model, 8)
        plan = build_iteration_plan(model, strategy, batch_per_gpu=8)
        owners = {
            servers[0]
            for servers in strategy.mp_owner_servers().values()
        }
        embedding_names = {l.name for l in model.embedding_layers}
        for task in plan.compute_tasks:
            has_embedding = embedding_names & set(task.layer_names)
            if task.server not in owners:
                assert not has_embedding

    def test_owner_compute_heavier(self):
        model = small_dlrm()
        strategy = hybrid_strategy(model, 8)
        plan = build_iteration_plan(model, strategy, batch_per_gpu=8)
        owners = {
            servers[0]
            for servers in strategy.mp_owner_servers().values()
        }
        owner_time = max(
            t.duration_s for t in plan.compute_tasks if t.server in owners
        )
        other_time = min(
            t.duration_s
            for t in plan.compute_tasks
            if t.server not in owners
        )
        assert owner_time >= other_time

    def test_critical_path_is_max(self):
        model = small_dlrm()
        plan = build_iteration_plan(
            model, hybrid_strategy(model, 8), batch_per_gpu=8
        )
        assert plan.compute_s == max(
            t.duration_s for t in plan.compute_tasks
        )

    def test_traffic_attached(self):
        model = small_dlrm()
        plan = build_iteration_plan(
            model, hybrid_strategy(model, 8), batch_per_gpu=8
        )
        assert plan.traffic.total_mp_bytes == pytest.approx(
            plan.mp_phase.total_bytes
        )
