"""Fault-schedule specs, recovery specs, and the fault-plane pieces.

Construction-time validation (negative times, repairs preceding their
failure, duplicate link cuts), exact JSON round-trips, deterministic
storm resolution, the allocator's failed-server pool, and the
FailureManager's consistency guarantee on disconnection.
"""

import random

import pytest

from repro.api.spec import SpecError
from repro.cluster import ScenarioSpec
from repro.cluster.engine import FailureInjection, ScenarioError
from repro.cluster.faults import (
    FaultEventSpec,
    FaultPlane,
    FaultScheduleSpec,
    RecoverySpec,
)
from repro.cluster.scheduler import ShardAllocator
from repro.core.ocs_reconfig import OCS_RECONFIG_LATENCY_S


def make_allocator(servers: int) -> ShardAllocator:
    return ShardAllocator(servers, "first-fit", random.Random(0))


class TestFaultEventSpec:
    def test_kind_validated(self):
        with pytest.raises(SpecError):
            FaultEventSpec(kind="gamma-ray", time_s=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SpecError):
            FaultEventSpec(kind="server", time_s=-1.0, server=0)

    def test_repair_before_failure_rejected(self):
        with pytest.raises(SpecError):
            FaultEventSpec(
                kind="server", time_s=10.0, repair_s=5.0, server=0
            )

    def test_link_fault_needs_job_index(self):
        with pytest.raises(SpecError):
            FaultEventSpec(kind="link", time_s=1.0)

    def test_server_fault_needs_server(self):
        with pytest.raises(SpecError):
            FaultEventSpec(kind="server", time_s=1.0)

    def test_storm_needs_a_victim(self):
        with pytest.raises(SpecError):
            FaultEventSpec(
                kind="storm", time_s=1.0, region_size=4,
                servers_hit=0, links_hit=0,
            )

    def test_storm_servers_bounded_by_region(self):
        with pytest.raises(SpecError):
            FaultEventSpec(
                kind="storm", time_s=1.0, region_size=2, servers_hit=3
            )

    def test_round_trip_every_kind(self):
        events = (
            FaultEventSpec(kind="link", time_s=3.0, job_index=1,
                           link=(0, 5), repair_s=9.0),
            FaultEventSpec(kind="server", time_s=4.0, server=7),
            FaultEventSpec(kind="storm", time_s=5.0, repair_s=6.0,
                           region_start=8, region_size=8,
                           servers_hit=2, links_hit=1),
        )
        for event in events:
            assert FaultEventSpec.from_dict(event.to_dict()) == event

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError):
            FaultEventSpec.from_dict(
                {"kind": "server", "time_s": 1.0, "server": 0,
                 "blast_radius": 3}
            )


class TestFaultScheduleSpec:
    def test_duplicate_link_cut_rejected(self):
        cut = {"kind": "link", "time_s": 2.0, "job_index": 0,
               "link": [0, 1]}
        with pytest.raises(SpecError):
            FaultScheduleSpec(events=(cut, dict(cut)))

    def test_same_link_at_different_times_allowed(self):
        FaultScheduleSpec(events=(
            {"kind": "link", "time_s": 2.0, "job_index": 0,
             "link": [0, 1]},
            {"kind": "link", "time_s": 8.0, "job_index": 0,
             "link": [0, 1]},
        ))

    def test_storm_knobs_validated(self):
        with pytest.raises(SpecError):
            FaultScheduleSpec(storms=-1)
        with pytest.raises(SpecError):
            FaultScheduleSpec(storms=1, storm_window_s=0.0)
        with pytest.raises(SpecError):
            FaultScheduleSpec(storms=1, mean_repair_s=0.0)
        with pytest.raises(SpecError):
            FaultScheduleSpec(storms=1, storm_servers=0, storm_links=0)

    def test_round_trip(self):
        schedule = FaultScheduleSpec(
            events=({"kind": "server", "time_s": 1.0, "server": 2},),
            storms=3, storm_window_s=100.0, mean_repair_s=5.0,
        )
        assert FaultScheduleSpec.from_dict(schedule.to_dict()) == schedule

    def test_resolve_is_deterministic_and_sorted(self):
        schedule = FaultScheduleSpec(storms=4, storm_window_s=50.0)
        a = schedule.resolve(seed=3, cluster_servers=32)
        b = schedule.resolve(seed=3, cluster_servers=32)
        assert a == b
        assert len(a) == 4
        assert list(a) == sorted(a, key=lambda e: (e.time_s, e.kind))
        # A different seed draws a different timeline.
        assert a != schedule.resolve(seed=4, cluster_servers=32)

    def test_resolve_clamps_region_to_cluster(self):
        schedule = FaultScheduleSpec(
            storms=5, storm_region_size=64, storm_servers=2
        )
        for event in schedule.resolve(seed=0, cluster_servers=8):
            assert event.region_size == 8
            assert event.region_start == 0
            assert event.servers_hit == 2

    def test_is_empty(self):
        assert FaultScheduleSpec().is_empty
        assert not FaultScheduleSpec(storms=1).is_empty


class TestRecoverySpec:
    def test_policy_validated(self):
        with pytest.raises(SpecError):
            RecoverySpec(policy="pray")

    def test_threshold_and_intervals_validated(self):
        with pytest.raises(SpecError):
            RecoverySpec(degradation_threshold=0.5)
        with pytest.raises(SpecError):
            RecoverySpec(checkpoint_interval_s=0.0)
        with pytest.raises(SpecError):
            RecoverySpec(restart_s=-1.0)

    def test_default_latency_is_ocs_reconfig(self):
        assert RecoverySpec().reoptimize_latency_s == OCS_RECONFIG_LATENCY_S

    def test_round_trip(self):
        spec = RecoverySpec(policy="checkpoint-restart",
                            checkpoint_interval_s=7.5, restart_s=0.2)
        assert RecoverySpec.from_dict(spec.to_dict()) == spec


class TestScenarioSpecIntegration:
    def test_faults_and_recovery_round_trip(self):
        spec = ScenarioSpec.preset("shared").with_overrides({
            "storms": 2,
            "storm_window_s": 40.0,
            "recovery_policy": "checkpoint-restart",
            "checkpoint_interval_s": 5.0,
        })
        back = ScenarioSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.faults.storms == 2
        assert back.recovery.policy == "checkpoint-restart"

    def test_empty_schedule_normalizes_to_none(self):
        spec = ScenarioSpec.preset("shared")
        assert spec.faults is None
        assert "faults" not in spec.to_dict()
        assert "recovery" not in spec.to_dict()

    def test_server_fault_bounded_by_cluster(self):
        with pytest.raises(SpecError):
            ScenarioSpec.preset("shared").with_overrides({
                "faults.events": [
                    {"kind": "server", "time_s": 1.0, "server": 10_000}
                ],
            })

    def test_legacy_injection_validated_at_construction(self):
        with pytest.raises(ScenarioError):
            FailureInjection(time_s=-1.0, job_index=0)
        with pytest.raises(ScenarioError):
            FailureInjection(time_s=5.0, job_index=0, repair_s=2.0)
        with pytest.raises(ScenarioError):
            FailureInjection(time_s=5.0, job_index=-1)


class TestFaultPlane:
    def test_heap_orders_and_drains(self):
        schedule = FaultScheduleSpec(events=(
            {"kind": "server", "time_s": 5.0, "server": 1,
             "repair_s": 9.0},
            {"kind": "link", "time_s": 2.0, "job_index": 0},
        ))
        plane = FaultPlane(schedule, seed=0, cluster_servers=8)
        assert plane.next_time() == 2.0
        due = plane.pop_due(5.0, eps=1e-9)
        assert [tag for tag, _ in due] == ["link_fail", "server_fail"]
        # The server repair is still pending; drain returns it.
        left = plane.drain()
        assert [(when, tag) for when, tag, _ in left] == \
            [(9.0, "server_repair")]
        assert plane.next_time() == float("inf")


class TestShardAllocatorFailures:
    def test_failed_server_leaves_the_pool(self):
        alloc = make_allocator(8)
        alloc.fail_server(3)
        assert alloc.failed_count == 1
        assert alloc.free_count == 7
        assert alloc.busy_count == 0
        # The failed host punches a hole: no block is carved across
        # it, so the largest allocatable run is the 4 servers above it.
        assert alloc.allocate(7) is None
        block = alloc.allocate(4)
        assert block == (4, 5, 6, 7)
        assert alloc.busy_count == 4

    def test_repair_returns_server(self):
        alloc = make_allocator(4)
        alloc.fail_server(0)
        assert alloc.allocate(4) is None
        alloc.repair_server(0)
        assert sorted(alloc.allocate(4)) == [0, 1, 2, 3]

    def test_busy_server_must_be_evicted_first(self):
        alloc = make_allocator(4)
        block = alloc.allocate(2)
        with pytest.raises(ValueError):
            alloc.fail_server(block[0])

    def test_double_fail_and_bad_repair_rejected(self):
        alloc = make_allocator(4)
        alloc.fail_server(1)
        with pytest.raises(ValueError):
            alloc.fail_server(1)
        with pytest.raises(ValueError):
            alloc.repair_server(2)
        with pytest.raises(ValueError):
            alloc.fail_server(99)
