"""Unit tests for the DNN model zoo."""

import pytest

from repro.models import (
    DNNModel,
    Layer,
    LayerKind,
    build_bert,
    build_candle,
    build_dlrm,
    build_model,
    build_ncf,
    build_resnet50,
    build_vgg,
)
from repro.models.base import (
    attention_block,
    conv_layer,
    dense_layer,
    embedding_layer,
)
from repro.models.configs import (
    SHARED_CLUSTER_CONFIGS,
    SIMULATION_CONFIGS,
    TESTBED_CONFIGS,
)

GB = 1e9


class TestLayerBuilders:
    def test_dense_layer_params(self):
        layer = dense_layer("fc", 100, 50)
        assert layer.params_bytes == (100 * 50 + 50) * 4

    def test_dense_layer_flops(self):
        layer = dense_layer("fc", 100, 50)
        assert layer.flops_per_sample == 2 * 100 * 50

    def test_conv_layer_accounting(self):
        layer = conv_layer("c", 3, 64, 3, 112)
        assert layer.params_bytes == (9 * 3 * 64 + 64) * 4
        assert layer.flops_per_sample == 2 * 9 * 3 * 64 * 112 * 112

    def test_embedding_layer_size(self):
        layer = embedding_layer("e", 1000, 64)
        assert layer.kind == LayerKind.EMBEDDING
        assert layer.params_bytes == 1000 * 64 * 4
        assert layer.activation_bytes_per_sample == 64 * 4

    def test_embedding_multi_lookup(self):
        layer = embedding_layer("e", 1000, 64, lookups_per_sample=8)
        assert layer.activation_bytes_per_sample == 8 * 64 * 4

    def test_attention_block_param_count(self):
        blocks = attention_block("b", 1024, 64, 16)
        total = sum(layer.params_bytes for layer in blocks)
        # 4 h^2 attention + 8 h^2 FFN = 12 h^2 params.
        assert total == 12 * 1024 * 1024 * 4

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Layer("bad", LayerKind.DENSE, -1.0, 0.0, 0.0)


class TestDNNModel:
    def test_duplicate_names_rejected(self):
        layer = dense_layer("fc", 4, 4)
        with pytest.raises(ValueError):
            DNNModel("m", (layer, layer), 8)

    def test_layer_lookup(self):
        model = build_vgg(16)
        assert model.layer("fc1").params_bytes > 0
        with pytest.raises(KeyError):
            model.layer("nope")

    def test_embedding_split(self):
        model = build_dlrm(num_embedding_tables=4, embedding_rows=1000)
        assert len(model.embedding_layers) == 4
        assert model.dense_params_bytes + model.embedding_params_bytes == (
            model.total_params_bytes
        )


class TestVgg:
    def test_vgg16_parameter_count(self):
        # The canonical VGG-16 has ~138.4M parameters.
        model = build_vgg(16)
        params = model.total_params_bytes / 4
        assert 135e6 < params < 142e6

    def test_vgg16_flops(self):
        # ~15.5 GMACs forward per 224x224 sample (widely reported);
        # we count 2 FLOPs per MAC, so ~31 GFLOPs.
        model = build_vgg(16)
        assert 28e9 < model.total_flops_per_sample < 34e9

    def test_vgg19_larger_than_vgg16(self):
        assert (
            build_vgg(19).total_params_bytes > build_vgg(16).total_params_bytes
        )

    def test_fc1_dominates(self):
        model = build_vgg(16)
        fc1 = model.layer("fc1").params_bytes
        assert fc1 > 0.7 * model.total_params_bytes / 2

    def test_bad_variant_rejected(self):
        with pytest.raises(ValueError):
            build_vgg(13)


class TestResNet:
    def test_parameter_count(self):
        # ResNet-50 has ~25.6M parameters.
        model = build_resnet50()
        params = model.total_params_bytes / 4
        assert 23e6 < params < 28e6

    def test_flops(self):
        # ~4 GMACs forward per sample -> ~8 GFLOPs at 2 FLOPs/MAC.
        model = build_resnet50()
        assert 6.5e9 < model.total_flops_per_sample < 9e9

    def test_compute_bound_profile(self):
        # ResNet50 has fewer parameter bytes per FLOP than VGG16: the
        # paper's "not communication-heavy" model.
        resnet = build_resnet50()
        vgg = build_vgg(16)
        resnet_ratio = resnet.total_params_bytes / resnet.total_flops_per_sample
        vgg_ratio = vgg.total_params_bytes / vgg.total_flops_per_sample
        assert resnet_ratio < 0.8 * vgg_ratio


class TestDlrm:
    def test_embedding_tables_dominate(self):
        model = build_dlrm()
        assert model.embedding_params_bytes > 0.9 * model.total_params_bytes

    def test_section_2_example_scale(self):
        # Section 2.1: 4 tables of 512 x 1e7 -> ~22 GB model (8B params
        # in the paper; 4B here gives half).
        model = build_dlrm(
            num_embedding_tables=4,
            embedding_dim=512,
            embedding_rows=10_000_000,
        )
        assert model.embedding_params_bytes == pytest.approx(
            4 * 512 * 1e7 * 4
        )

    def test_table_count_respected(self):
        model = build_dlrm(num_embedding_tables=12, embedding_rows=1000)
        assert len(model.embedding_layers) == 12


class TestBert:
    def test_block_count(self):
        model = build_bert(num_blocks=12)
        attn = [l for l in model.layers if l.kind == LayerKind.ATTENTION]
        assert len(attn) == 12

    def test_hidden_heads_divisibility(self):
        with pytest.raises(ValueError):
            build_bert(hidden=1000, heads=16)

    def test_params_scale_with_hidden(self):
        small = build_bert(hidden=512, heads=8)
        large = build_bert(hidden=1024, heads=16)
        assert large.total_params_bytes > 2 * small.total_params_bytes


class TestNcf:
    def test_embedding_table_count(self):
        model = build_ncf(num_user_tables=4, num_item_tables=4)
        # Each table family has MF + MLP variants.
        assert len(model.embedding_layers) == 16

    def test_many_embeddings_profile(self):
        # NCF's defining property for the paper: many mid-size tables,
        # hence high MP communication degree.
        model = build_ncf()
        assert len(model.embedding_layers) == 128


class TestCandle:
    def test_dense_only(self):
        model = build_candle()
        assert not model.embedding_layers

    def test_communication_heavy(self):
        # CANDLE at 16384-wide layers is AllReduce-dominated: several GB
        # of dense parameters.
        model = build_candle()
        assert model.total_params_bytes > 10 * GB


class TestConfigs:
    def test_all_simulation_presets_build(self):
        for name, config in SIMULATION_CONFIGS.items():
            model = config.build()
            assert model.total_params_bytes > 0, name

    def test_all_shared_presets_build(self):
        for config in SHARED_CLUSTER_CONFIGS.values():
            assert config.build().total_params_bytes > 0

    def test_all_testbed_presets_build(self):
        for config in TESTBED_CONFIGS.values():
            assert config.build().total_params_bytes > 0

    def test_build_model_scales(self):
        big = build_model("BERT", scale="simulation")
        small = build_model("BERT", scale="shared")
        assert big.total_params_bytes > small.total_params_bytes

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_model("BERT", scale="nope")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("AlexNet", scale="simulation")

    def test_testbed_models_smaller(self):
        sim = build_model("CANDLE", scale="simulation")
        tb = build_model("CANDLE", scale="testbed")
        assert tb.total_params_bytes < sim.total_params_bytes
