"""ScenarioSpec validation, serialization, overrides, and allocation."""

import json
import random

import pytest

from repro.api.spec import ClusterSpec, FabricSpec, SpecError
from repro.cluster import (
    ArrivalSpec,
    JobTemplateSpec,
    ScenarioSpec,
    SchedulerSpec,
    ShardAllocator,
)


class TestRoundTrip:
    def test_exact_round_trip(self):
        spec = ScenarioSpec.preset("shared")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_survives_json(self):
        spec = ScenarioSpec.preset("lifetime")
        reloaded = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert reloaded == spec

    def test_json_native_types(self):
        payload = json.dumps(ScenarioSpec.preset("shared").to_dict())
        assert isinstance(payload, str)

    def test_golden_spec_file_loads(self):
        with open("examples/specs/scenario_shared.json") as handle:
            spec = ScenarioSpec.from_dict(json.load(handle))
        assert spec == ScenarioSpec.preset("shared")


class TestValidation:
    def test_unknown_top_level_key(self):
        data = ScenarioSpec().to_dict()
        data["turbo"] = True
        with pytest.raises(SpecError, match="turbo"):
            ScenarioSpec.from_dict(data)

    def test_unknown_nested_key(self):
        data = ScenarioSpec().to_dict()
        data["scheduler"]["quantum"] = 5
        with pytest.raises(SpecError, match="quantum"):
            ScenarioSpec.from_dict(data)

    def test_unknown_policy(self):
        with pytest.raises(SpecError, match="worst-fit"):
            SchedulerSpec(policy="worst-fit")

    def test_unknown_process(self):
        with pytest.raises(SpecError, match="lognormal"):
            ArrivalSpec(process="lognormal")

    def test_unknown_strategy(self):
        with pytest.raises(SpecError, match="greedy"):
            JobTemplateSpec(strategy="greedy")

    def test_unknown_model(self):
        with pytest.raises(SpecError, match="GPT9"):
            JobTemplateSpec(model="GPT9")

    def test_unknown_custom_model_rejected_at_construction(self):
        with pytest.raises(SpecError, match="NotAModel"):
            JobTemplateSpec(model="NotAModel", scale="custom")

    def test_unknown_fabric(self):
        with pytest.raises(SpecError, match="warpdrive"):
            ScenarioSpec(fabric=FabricSpec(kind="warpdrive"))

    def test_self_simulating_fabric_rejected(self):
        with pytest.raises(SpecError, match="simulates itself"):
            ScenarioSpec(fabric=FabricSpec(kind="sipml"))

    def test_hierarchical_rejected(self):
        with pytest.raises(SpecError, match="hierarchical"):
            ScenarioSpec(fabric=FabricSpec(kind="hierarchical"))

    def test_explicit_needs_times(self):
        with pytest.raises(SpecError, match="times"):
            ArrivalSpec(process="explicit")

    def test_template_larger_than_cluster(self):
        with pytest.raises(SpecError, match="cluster has only"):
            ScenarioSpec(
                cluster=ClusterSpec(servers=4),
                jobs=(JobTemplateSpec(servers=8),),
            )

    def test_unknown_solver(self):
        with pytest.raises(SpecError, match="quantum"):
            ScenarioSpec(solver="quantum")

    def test_unknown_preset(self):
        with pytest.raises(SpecError, match="unknown scenario preset"):
            ScenarioSpec.preset("imaginary")


class TestOverrides:
    def test_dotted_path(self):
        spec = ScenarioSpec.preset("shared").with_overrides(
            {"cluster.servers": 64, "scheduler.policy": "best-fit"}
        )
        assert spec.cluster.servers == 64
        assert spec.scheduler.policy == "best-fit"

    def test_shorthands(self):
        spec = ScenarioSpec.preset("shared").with_overrides(
            {"fabric": "fattree", "policy": "random", "count": 3}
        )
        assert spec.fabric.kind == "fattree"
        assert spec.scheduler.policy == "random"
        assert spec.arrivals.count == 3

    def test_list_index_path(self):
        spec = ScenarioSpec.preset("shared").with_overrides(
            {"jobs.1.model": "DLRM", "jobs.1.iterations": 9}
        )
        assert spec.jobs[1].model == "DLRM"
        assert spec.jobs[1].iterations == 9

    def test_list_index_out_of_range(self):
        with pytest.raises(SpecError, match="jobs.9.model"):
            ScenarioSpec.preset("shared").with_overrides(
                {"jobs.9.model": "DLRM"}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="no spec field"):
            ScenarioSpec.preset("shared").with_overrides(
                {"cluster.racks": 4}
            )

    def test_result_is_revalidated(self):
        with pytest.raises(SpecError):
            ScenarioSpec.preset("shared").with_overrides(
                {"scheduler.policy": "worst-fit"}
            )


class TestShardAllocator:
    def _allocator(self, n=16, policy="first-fit", seed=0):
        return ShardAllocator(n, policy, random.Random(seed))

    def test_first_fit_takes_lowest_hole(self):
        alloc = self._allocator()
        a = alloc.allocate(4)
        assert a == (0, 1, 2, 3)
        b = alloc.allocate(4)
        assert b == (4, 5, 6, 7)
        alloc.free(a)
        # First-fit returns to the lowest hole even though the tail
        # hole is larger.
        assert alloc.allocate(2) == (0, 1)

    def test_best_fit_prefers_smallest_hole(self):
        alloc = self._allocator(policy="best-fit")
        a = alloc.allocate(4)   # 0-3
        b = alloc.allocate(4)   # 4-7
        alloc.allocate(4)       # 8-11; tail hole 12-15
        alloc.free(a)           # holes: [0-3], [12-15] both size 4
        alloc.free(b)           # holes: [0-7], [12-15]
        # Best-fit picks the 4-hole at 12, not the 8-hole at 0.
        assert alloc.allocate(3) == (12, 13, 14)

    def test_random_is_seeded(self):
        def run(seed):
            alloc = self._allocator(policy="random", seed=seed)
            blocks = [alloc.allocate(2) for _ in range(4)]
            alloc.free(blocks[1])
            alloc.free(blocks[3])
            return alloc.allocate(2)

        assert run(3) == run(3)

    def test_returns_none_when_fragmented(self):
        alloc = self._allocator(n=8)
        a = alloc.allocate(3)   # 0-2
        alloc.allocate(2)       # 3-4
        b = alloc.allocate(3)   # 5-7
        alloc.free(a)
        alloc.free(b)
        # 6 servers free but the largest hole is 3.
        assert alloc.free_count == 6
        assert alloc.allocate(4) is None
        assert alloc.fragmentation() == pytest.approx(0.5)

    def test_fragmentation_zero_when_contiguous(self):
        alloc = self._allocator()
        assert alloc.fragmentation() == 0.0
        block = alloc.allocate(4)
        assert alloc.fragmentation() == 0.0
        alloc.free(block)
        assert alloc.fragmentation() == 0.0

    def test_double_free_rejected(self):
        alloc = self._allocator()
        block = alloc.allocate(2)
        alloc.free(block)
        with pytest.raises(ValueError, match="already free"):
            alloc.free(block)

    def test_utilization(self):
        alloc = self._allocator(n=10)
        alloc.allocate(4)
        assert alloc.utilization() == pytest.approx(0.4)
