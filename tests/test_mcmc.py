"""Unit and behavioural tests for the MCMC strategy search."""

import math

import pytest

from repro.models import build_dlrm, build_vgg
from repro.network.fattree import IdealSwitchFabric
from repro.parallel.mcmc import IterationCostModel, MCMCSearch
from repro.parallel.strategy import (
    data_parallel_strategy,
    hybrid_strategy,
)
from repro.parallel.traffic import extract_traffic

GBPS = 1e9


def small_dlrm():
    return build_dlrm(
        num_embedding_tables=4,
        embedding_rows=100_000,
        embedding_dim=256,
        num_dense_layers=2,
        dense_layer_size=512,
        num_feature_layers=2,
        feature_layer_size=512,
        batch_per_gpu=32,
    )


class TestIterationCostModel:
    def test_cost_includes_compute(self):
        fabric = IdealSwitchFabric(4, 2, 100 * GBPS)
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 4), 8
        )
        cost_model = IterationCostModel(fabric, compute_s=1.0)
        assert cost_model.cost(traffic) > 1.0

    def test_allreduce_time_formula(self):
        n, d, B = 8, 4, 100 * GBPS
        fabric = IdealSwitchFabric(n, d, B)
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, n), 8
        )
        cost_model = IterationCostModel(fabric, 0.0)
        expected = (
            2 * (n - 1) / n * model.total_params_bytes * 8 / (d * B)
        )
        assert cost_model.allreduce_time(traffic) == pytest.approx(
            expected, rel=1e-6
        )

    def test_unroutable_traffic_is_infinite(self):
        class DeadFabric:
            name = "dead"

            def capacities(self):
                return {(0, 1): GBPS}

            def paths(self, src, dst, kind="mp"):
                return []

        model = small_dlrm()
        traffic = extract_traffic(model, hybrid_strategy(model, 4), 8)
        cost_model = IterationCostModel(DeadFabric(), 0.0)
        assert math.isinf(cost_model.cost(traffic))


class TestProposals:
    def test_vgg_has_no_moves(self):
        model = build_vgg(16)
        search = MCMCSearch(model, num_servers=4, batch_per_gpu=8)
        strategy = search.initial_strategy()
        assert search.propose(strategy) is strategy

    def test_dlrm_moves_change_placement(self):
        model = small_dlrm()
        search = MCMCSearch(model, num_servers=8, seed=3)
        strategy = search.initial_strategy()
        changed = 0
        for _ in range(20):
            candidate = search.propose(strategy)
            if candidate is not strategy:
                changed += 1
        assert changed > 0


class TestSearch:
    def test_best_cost_never_worse_than_initial(self):
        model = small_dlrm()
        search = MCMCSearch(model, num_servers=8, seed=0)
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        initial = search.initial_strategy()
        initial_traffic = extract_traffic(
            model, initial, search.batch_per_gpu
        )
        initial_cost = IterationCostModel(fabric, search.compute_s).cost(
            initial_traffic
        )
        result = search.search(fabric, iterations=100)
        assert result.cost_s <= initial_cost + 1e-12

    def test_cost_trace_length(self):
        model = small_dlrm()
        search = MCMCSearch(model, num_servers=4, seed=1)
        fabric = IdealSwitchFabric(4, 4, 100 * GBPS)
        result = search.search(fabric, iterations=50)
        assert len(result.cost_trace) == 51  # initial + one per step

    def test_deterministic_for_seed(self):
        model = small_dlrm()
        fabric = IdealSwitchFabric(4, 4, 100 * GBPS)
        r1 = MCMCSearch(model, 4, seed=7).search(fabric, iterations=60)
        r2 = MCMCSearch(model, 4, seed=7).search(fabric, iterations=60)
        assert r1.cost_s == pytest.approx(r2.cost_s)

    def test_pure_dp_model_stays_dp(self):
        model = build_vgg(16)
        search = MCMCSearch(model, num_servers=4, batch_per_gpu=8)
        fabric = IdealSwitchFabric(4, 4, 100 * GBPS)
        result = search.search(fabric, iterations=10)
        assert result.strategy.is_pure_data_parallel()

    def test_search_avoids_pure_dp_for_huge_embeddings(self):
        # The whole point of hybrid parallelism: with enormous embedding
        # tables, data parallelism's AllReduce is ruinous, so the search
        # should keep embeddings model-parallel.
        model = build_dlrm(
            num_embedding_tables=4,
            embedding_rows=5_000_000,
            embedding_dim=512,
            num_dense_layers=2,
            dense_layer_size=256,
            num_feature_layers=2,
            feature_layer_size=256,
            batch_per_gpu=8,
        )
        search = MCMCSearch(model, num_servers=8, seed=2)
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        result = search.search(fabric, iterations=150)
        placements = result.strategy.mp_owner_servers()
        sharded = [
            name
            for name, p in result.strategy.placements.items()
            if p.kind.value == "sharded"
        ]
        # Every huge table stays off the AllReduce path.
        assert len(placements) + len(sharded) == 4
