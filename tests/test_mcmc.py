"""Unit and behavioural tests for the MCMC strategy search."""

import math

import numpy as np
import pytest

from repro.core.topology_finder import topology_finder
from repro.models import build_bert, build_dlrm, build_vgg
from repro.network.fattree import IdealSwitchFabric
from repro.network.topoopt import TopoOptFabric
from repro.parallel.mcmc import (
    IterationCostModel,
    MCMCSearch,
    ReferenceIterationCostModel,
)
from repro.parallel.strategy import (
    data_parallel_strategy,
    hybrid_strategy,
)
from repro.parallel.traffic import extract_traffic

GBPS = 1e9


def small_dlrm():
    return build_dlrm(
        num_embedding_tables=4,
        embedding_rows=100_000,
        embedding_dim=256,
        num_dense_layers=2,
        dense_layer_size=512,
        num_feature_layers=2,
        feature_layer_size=512,
        batch_per_gpu=32,
    )


def small_bert():
    return build_bert(num_blocks=2, hidden=256, seq_len=32, heads=4,
                      embedding_size=128, vocab_size=10_000, batch_per_gpu=8)


def topoopt_fabric(model, n=8, degree=4):
    search = MCMCSearch(model, num_servers=n, seed=0)
    traffic = extract_traffic(
        model, search.initial_strategy(), search.batch_per_gpu
    )
    result = topology_finder(
        n, degree, traffic.allreduce_groups, traffic.mp_matrix
    )
    return TopoOptFabric(result, 100 * GBPS)


class TestIterationCostModel:
    def test_cost_includes_compute(self):
        fabric = IdealSwitchFabric(4, 2, 100 * GBPS)
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 4), 8
        )
        cost_model = IterationCostModel(fabric, compute_s=1.0)
        assert cost_model.cost(traffic) > 1.0

    def test_allreduce_time_formula(self):
        n, d, B = 8, 4, 100 * GBPS
        fabric = IdealSwitchFabric(n, d, B)
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, n), 8
        )
        cost_model = IterationCostModel(fabric, 0.0)
        expected = (
            2 * (n - 1) / n * model.total_params_bytes * 8 / (d * B)
        )
        assert cost_model.allreduce_time(traffic) == pytest.approx(
            expected, rel=1e-6
        )

    def test_unroutable_traffic_is_infinite(self):
        class DeadFabric:
            name = "dead"

            def capacities(self):
                return {(0, 1): GBPS}

            def paths(self, src, dst, kind="mp"):
                return []

        model = small_dlrm()
        traffic = extract_traffic(model, hybrid_strategy(model, 4), 8)
        cost_model = IterationCostModel(DeadFabric(), 0.0)
        assert math.isinf(cost_model.cost(traffic))


class TestProposals:
    def test_vgg_has_no_moves(self):
        model = build_vgg(16)
        search = MCMCSearch(model, num_servers=4, batch_per_gpu=8)
        strategy = search.initial_strategy()
        assert search.propose(strategy) is strategy

    def test_dlrm_moves_change_placement(self):
        model = small_dlrm()
        search = MCMCSearch(model, num_servers=8, seed=3)
        strategy = search.initial_strategy()
        changed = 0
        for _ in range(20):
            candidate = search.propose(strategy)
            if candidate is not strategy:
                changed += 1
        assert changed > 0


class TestSearch:
    def test_best_cost_never_worse_than_initial(self):
        model = small_dlrm()
        search = MCMCSearch(model, num_servers=8, seed=0)
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        initial = search.initial_strategy()
        initial_traffic = extract_traffic(
            model, initial, search.batch_per_gpu
        )
        initial_cost = IterationCostModel(fabric, search.compute_s).cost(
            initial_traffic
        )
        result = search.search(fabric, iterations=100)
        assert result.cost_s <= initial_cost + 1e-12

    def test_cost_trace_length(self):
        model = small_dlrm()
        search = MCMCSearch(model, num_servers=4, seed=1)
        fabric = IdealSwitchFabric(4, 4, 100 * GBPS)
        result = search.search(fabric, iterations=50)
        assert len(result.cost_trace) == 51  # initial + one per step

    def test_deterministic_for_seed(self):
        model = small_dlrm()
        fabric = IdealSwitchFabric(4, 4, 100 * GBPS)
        r1 = MCMCSearch(model, 4, seed=7).search(fabric, iterations=60)
        r2 = MCMCSearch(model, 4, seed=7).search(fabric, iterations=60)
        assert r1.cost_s == pytest.approx(r2.cost_s)

    def test_pure_dp_model_stays_dp(self):
        model = build_vgg(16)
        search = MCMCSearch(model, num_servers=4, batch_per_gpu=8)
        fabric = IdealSwitchFabric(4, 4, 100 * GBPS)
        result = search.search(fabric, iterations=10)
        assert result.strategy.is_pure_data_parallel()

    def test_identical_trace_for_same_seed(self):
        # Determinism of the incremental default path: two fresh
        # searches with the same seed must walk the exact same chain.
        model = small_dlrm()
        fabric = topoopt_fabric(model)
        t1 = MCMCSearch(model, 8, seed=9).search(fabric, 80).cost_trace
        t2 = MCMCSearch(model, 8, seed=9).search(fabric, 80).cost_trace
        assert t1 == t2

    def test_incremental_matches_full_rebuild_oracle(self):
        # The headline equivalence: the delta-updated kernel must score
        # every step of the chain like the seed full-rebuild discipline
        # (same seed => same proposal stream => comparable traces).
        for model in (small_dlrm(), small_bert()):
            for fabric in (
                topoopt_fabric(model),
                IdealSwitchFabric(8, 4, 100 * GBPS),
            ):
                ref = MCMCSearch(model, 8, seed=4).search(
                    fabric, 120, incremental=False
                )
                inc = MCMCSearch(model, 8, seed=4).search(
                    fabric, 120, incremental=True
                )
                a = np.asarray(ref.cost_trace)
                b = np.asarray(inc.cost_trace)
                assert ref.accepted_moves == inc.accepted_moves
                assert np.all(
                    np.abs(a - b) <= 1e-12 * np.maximum(np.abs(a), 1e-300)
                )
                assert inc.cost_s == pytest.approx(ref.cost_s, rel=1e-12)

    def test_best_cost_matches_reference_cost_model(self):
        # The returned best cost must be reproducible by scoring the
        # returned strategy's traffic with the pure-Python reference.
        model = small_dlrm()
        fabric = topoopt_fabric(model)
        search = MCMCSearch(model, 8, seed=6)
        result = search.search(fabric, iterations=60)
        expected = ReferenceIterationCostModel(
            fabric, search.compute_s
        ).cost(result.traffic)
        assert result.cost_s == pytest.approx(expected, rel=1e-12)

    def test_multi_chain_restarts_best_of(self):
        model = small_dlrm()
        fabric = topoopt_fabric(model)
        single = MCMCSearch(model, 8, seed=2).search(fabric, 60)
        multi = MCMCSearch(model, 8, seed=2).search(fabric, 60, restarts=3)
        assert multi.chains == 3
        assert len(multi.chain_best_costs) == 3
        assert multi.proposed_moves == 180
        # Chain 0 reuses the single-chain rng, so best-of can only help.
        assert multi.cost_s <= single.cost_s + 1e-12
        again = MCMCSearch(model, 8, seed=2).search(fabric, 60, restarts=3)
        assert multi.chain_best_costs == again.chain_best_costs

    def test_invalid_restarts_rejected(self):
        model = small_dlrm()
        fabric = IdealSwitchFabric(4, 4, 100 * GBPS)
        with pytest.raises(ValueError):
            MCMCSearch(model, 4).search(fabric, 10, restarts=0)

    def test_search_avoids_pure_dp_for_huge_embeddings(self):
        # The whole point of hybrid parallelism: with enormous embedding
        # tables, data parallelism's AllReduce is ruinous, so the search
        # should keep embeddings model-parallel.
        model = build_dlrm(
            num_embedding_tables=4,
            embedding_rows=5_000_000,
            embedding_dim=512,
            num_dense_layers=2,
            dense_layer_size=256,
            num_feature_layers=2,
            feature_layer_size=256,
            batch_per_gpu=8,
        )
        search = MCMCSearch(model, num_servers=8, seed=2)
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        result = search.search(fabric, iterations=150)
        placements = result.strategy.mp_owner_servers()
        sharded = [
            name
            for name, p in result.strategy.placements.items()
            if p.kind.value == "sharded"
        ]
        # Every huge table stays off the AllReduce path.
        assert len(placements) + len(sharded) == 4
