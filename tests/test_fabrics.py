"""Unit tests for the switch, expander, and TopoOpt fabrics."""

import numpy as np
import pytest

from repro.core.topology_finder import AllReduceGroup, topology_finder
from repro.network.expander import ExpanderFabric, random_regular_topology
from repro.network.fattree import (
    FatTreeFabric,
    IdealSwitchFabric,
    OversubscribedFatTreeFabric,
)
from repro.network.topoopt import RemappedFabric, TopoOptFabric

GBPS = 1e9


class TestIdealSwitch:
    def test_capacity_per_server(self):
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        caps = fabric.capacities()
        assert caps[(0, fabric.hub)] == 400 * GBPS
        assert caps[(fabric.hub, 0)] == 400 * GBPS

    def test_paths_via_hub(self):
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        assert fabric.paths(0, 5) == [[0, fabric.hub, 5]]

    def test_self_path(self):
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        assert fabric.paths(3, 3) == [[3]]

    def test_out_of_range_rejected(self):
        fabric = IdealSwitchFabric(8, 4, 100 * GBPS)
        with pytest.raises(ValueError):
            fabric.paths(0, 9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            IdealSwitchFabric(0, 4, GBPS)
        with pytest.raises(ValueError):
            IdealSwitchFabric(4, 0, GBPS)
        with pytest.raises(ValueError):
            IdealSwitchFabric(4, 4, 0.0)


class TestFatTree:
    def test_cost_equivalent_bandwidth_lower(self):
        ideal = IdealSwitchFabric(8, 4, 100 * GBPS)
        fattree = FatTreeFabric(8, 4, 30 * GBPS)
        assert (
            fattree.server_bandwidth_bps < ideal.server_bandwidth_bps
        )


class TestOversubFatTree:
    def test_uplink_is_half(self):
        fabric = OversubscribedFatTreeFabric(
            32, 4, 100 * GBPS, servers_per_rack=16
        )
        caps = fabric.capacities()
        tor0 = fabric.tor_of(0)
        assert caps[(tor0, fabric.core)] == pytest.approx(
            16 * 400 * GBPS / 2
        )

    def test_same_rack_path_avoids_core(self):
        fabric = OversubscribedFatTreeFabric(
            32, 4, 100 * GBPS, servers_per_rack=16
        )
        path = fabric.paths(0, 5)[0]
        assert fabric.core not in path

    def test_cross_rack_path_uses_core(self):
        fabric = OversubscribedFatTreeFabric(
            32, 4, 100 * GBPS, servers_per_rack=16
        )
        path = fabric.paths(0, 20)[0]
        assert fabric.core in path

    def test_partial_last_rack(self):
        fabric = OversubscribedFatTreeFabric(
            20, 4, 100 * GBPS, servers_per_rack=16
        )
        caps = fabric.capacities()
        last_tor = fabric.tor_of(19)
        assert caps[(last_tor, fabric.core)] == pytest.approx(
            4 * 400 * GBPS / 2
        )


class TestRandomRegular:
    def test_degree_exact(self):
        topo = random_regular_topology(16, 4, seed=1)
        for node in range(16):
            assert topo.out_degree(node) == 4
            assert topo.in_degree(node) == 4

    def test_connected(self):
        for seed in range(3):
            assert random_regular_topology(12, 3, seed).is_strongly_connected()

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            random_regular_topology(5, 3)

    def test_deterministic_for_seed(self):
        a = random_regular_topology(12, 3, seed=5)
        b = random_regular_topology(12, 3, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())


class TestExpanderFabric:
    def test_capacities_match_topology(self):
        fabric = ExpanderFabric(16, 4, 25 * GBPS, seed=2)
        caps = fabric.capacities()
        total = sum(caps.values())
        assert total == pytest.approx(16 * 4 * 25 * GBPS)

    def test_paths_exist_for_all_pairs(self):
        fabric = ExpanderFabric(12, 3, 25 * GBPS, seed=2)
        for src in range(12):
            for dst in range(12):
                if src != dst:
                    assert fabric.paths(src, dst)

    def test_path_cache_stable(self):
        fabric = ExpanderFabric(12, 3, 25 * GBPS, seed=2)
        assert fabric.paths(0, 5) is fabric.paths(0, 5)


def _topoopt(n=12, d=4):
    group = AllReduceGroup(members=tuple(range(n)), total_bytes=1e9)
    mp = np.zeros((n, n))
    mp[0, n - 1] = mp[n - 1, 0] = 1e8
    result = topology_finder(n, d, [group], mp)
    return TopoOptFabric(result, 25 * GBPS)


class TestTopoOptFabric:
    def test_capacities_respect_multiplicity(self):
        fabric = _topoopt()
        caps = fabric.capacities()
        total_links = fabric.result.topology.num_links()
        assert sum(caps.values()) == pytest.approx(total_links * 25 * GBPS)

    def test_paths_always_available(self):
        fabric = _topoopt()
        for src in range(12):
            for dst in range(12):
                if src != dst:
                    assert fabric.paths(src, dst, "mp")
                    assert fabric.paths(src, dst, "allreduce")

    def test_ring_edges_are_direct(self):
        fabric = _topoopt()
        members = tuple(range(12))
        for path, _ in fabric.ring_edge_paths(members):
            assert len(path) == 2

    def test_ring_strides_match_plan(self):
        fabric = _topoopt()
        strides = fabric.ring_strides_for(tuple(range(12)))
        assert strides and strides[0] == 1

    def test_unknown_group_defaults_to_plus_one(self):
        fabric = _topoopt()
        assert fabric.ring_strides_for((0, 1, 2)) == [1]

    def test_invalid_bandwidth_rejected(self):
        result = _topoopt().result
        with pytest.raises(ValueError):
            TopoOptFabric(result, 0.0)


class TestRemappedFabric:
    def test_translation(self):
        fabric = _topoopt(n=4, d=2)
        remapped = RemappedFabric(fabric, [10, 11, 12, 13])
        paths = remapped.paths(10, 12)
        for path in paths:
            assert all(node >= 10 for node in path)
            assert path[0] == 10 and path[-1] == 12

    def test_capacities_translated(self):
        fabric = _topoopt(n=4, d=2)
        remapped = RemappedFabric(fabric, [10, 11, 12, 13])
        for (src, dst) in remapped.capacities():
            assert src >= 10 and dst >= 10

    def test_wrong_size_map_rejected(self):
        fabric = _topoopt(n=4, d=2)
        with pytest.raises(ValueError):
            RemappedFabric(fabric, [1, 2])

    def test_non_injective_map_rejected(self):
        fabric = _topoopt(n=4, d=2)
        with pytest.raises(ValueError):
            RemappedFabric(fabric, [1, 1, 2, 3])

    def test_ring_strides_delegated(self):
        # A relabeled shard must expose the same fabric interface as
        # TopoOptFabric: ring_strides_for translates members back to
        # local ids and returns the underlying plan's strides.
        fabric = _topoopt(n=12, d=4)
        server_map = [20 + i for i in range(12)]
        remapped = fabric.relabel(server_map)
        local_members = tuple(range(12))
        global_members = tuple(server_map[m] for m in local_members)
        assert remapped.ring_strides_for(global_members) == (
            fabric.ring_strides_for(local_members)
        )
        assert remapped.ring_strides_for(tuple(server_map[:3])) == [1]

    def test_relabel_round_trip(self):
        # Translating every query through the map and back must
        # reproduce the local fabric exactly.
        fabric = _topoopt(n=6, d=3)
        server_map = [13, 7, 42, 0, 9, 21]
        remapped = fabric.relabel(server_map)
        inverse = {g: l for l, g in enumerate(server_map)}

        assert {
            (inverse[s], inverse[d]): cap
            for (s, d), cap in remapped.capacities().items()
        } == fabric.capacities()
        for src in range(6):
            for dst in range(6):
                if src == dst:
                    continue
                for kind in ("mp", "allreduce"):
                    local = fabric.paths(src, dst, kind)
                    translated = [
                        [inverse[node] for node in path]
                        for path in remapped.paths(
                            server_map[src], server_map[dst], kind
                        )
                    ]
                    assert translated == local
        members = tuple(range(6))
        mapped = tuple(server_map[m] for m in members)
        assert [
            ([inverse[node] for node in path], rings)
            for path, rings in remapped.ring_edge_paths(mapped)
        ] == fabric.ring_edge_paths(members)
        assert remapped.ring_strides_for(mapped) == (
            fabric.ring_strides_for(members)
        )
