"""Unit tests for AllReduce mutability (section 4.3, Appendix A)."""

import numpy as np
import pytest

from repro.core.mutability import (
    dbt_traffic_matrix,
    double_binary_trees,
    permutation_traffic_matrix,
    permute_allreduce_order,
    ring_traffic_matrix,
    tree_is_valid,
)


class TestRingTrafficMatrix:
    def test_per_edge_bytes(self):
        n, total = 16, 1000.0
        matrix = ring_traffic_matrix(list(range(n)), total, n)
        expected = 2.0 * 15 / 16 * total
        assert matrix[0, 1] == pytest.approx(expected)

    def test_edges_follow_stride(self):
        n = 16
        matrix = ring_traffic_matrix(list(range(n)), 1.0, n, stride=3)
        assert matrix[0, 3] > 0
        assert matrix[0, 1] == 0

    def test_total_traffic_is_k_edges(self):
        n, total = 12, 600.0
        matrix = ring_traffic_matrix(list(range(n)), total, n)
        per_edge = 2.0 * 11 / 12 * total
        assert matrix.sum() == pytest.approx(n * per_edge)

    def test_multi_ring_split(self):
        n = 12
        single = ring_traffic_matrix(list(range(n)), 120.0, n, num_rings=1)
        split = ring_traffic_matrix(list(range(n)), 120.0, n, num_rings=3)
        assert split.max() == pytest.approx(single.max() / 3)

    def test_tiny_group_is_empty(self):
        assert ring_traffic_matrix([5], 100.0, 8).sum() == 0.0

    def test_mutability_same_volume_different_pattern(self):
        # The paper's core claim: permuting changes the pattern, not the
        # volume or the per-edge load.
        n = 16
        m1 = ring_traffic_matrix(list(range(n)), 1.0, n, stride=1)
        m3 = ring_traffic_matrix(list(range(n)), 1.0, n, stride=3)
        assert m1.sum() == pytest.approx(m3.sum())
        assert m1.max() == pytest.approx(m3.max())
        assert not np.array_equal(m1, m3)


class TestPermuteOrder:
    def test_identity(self):
        group = [4, 5, 6]
        assert permute_allreduce_order(group, [0, 1, 2]) == group

    def test_relabel(self):
        assert permute_allreduce_order([4, 5, 6], [2, 0, 1]) == [6, 4, 5]

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            permute_allreduce_order([4, 5, 6], [0, 0, 2])

    def test_permutation_traffic_preserves_volume(self):
        base = permutation_traffic_matrix([0, 1, 2, 3], 100.0, 4)
        shuffled = permutation_traffic_matrix([2, 0, 3, 1], 100.0, 4)
        assert base.sum() == pytest.approx(shuffled.sum())


class TestDoubleBinaryTrees:
    def test_trees_are_valid(self):
        group = list(range(16))
        t1, t2 = double_binary_trees(group)
        assert tree_is_valid(group, t1)
        assert tree_is_valid(group, t2)

    def test_leaf_sets_flip(self):
        # Appendix A: a node that is a leaf in tree 1 should be in-tree
        # in tree 2 (except possibly at the boundary roots).
        group = list(range(16))
        t1, t2 = double_binary_trees(group)
        leaves1 = {node for node, kids in t1.items() if not kids}
        leaves2 = {node for node, kids in t2.items() if not kids}
        assert len(leaves1 & leaves2) <= 1

    def test_small_group_rejected(self):
        with pytest.raises(ValueError):
            double_binary_trees([3])

    def test_various_sizes_valid(self):
        for k in (2, 3, 5, 8, 12, 17, 32):
            group = list(range(k))
            t1, t2 = double_binary_trees(group)
            assert tree_is_valid(group, t1), k
            assert tree_is_valid(group, t2), k


class TestDbtTraffic:
    def test_volume_matches_tree_edges(self):
        group = list(range(8))
        matrix = dbt_traffic_matrix(group, 100.0, 8)
        # Two trees x 7 edges x (reduce + broadcast) x S/2 bytes.
        assert matrix.sum() == pytest.approx(2 * 7 * 2 * 50.0)

    def test_symmetric_per_edge(self):
        group = list(range(8))
        matrix = dbt_traffic_matrix(group, 100.0, 8)
        assert np.allclose(matrix, matrix.T)

    def test_permuted_group_same_volume(self):
        base = dbt_traffic_matrix(list(range(8)), 100.0, 8)
        perm = dbt_traffic_matrix([3, 1, 7, 0, 5, 2, 6, 4], 100.0, 8)
        assert base.sum() == pytest.approx(perm.sum())
        assert not np.array_equal(base, perm)


class TestTreeValidation:
    def test_detects_two_roots(self):
        tree = {0: [1], 1: [], 2: [3], 3: []}
        assert not tree_is_valid([0, 1, 2, 3], tree)

    def test_detects_cycle(self):
        tree = {0: [1], 1: [0]}
        assert not tree_is_valid([0, 1], tree)

    def test_detects_foreign_node(self):
        tree = {0: [1], 1: [9]}
        assert not tree_is_valid([0, 1], tree)
