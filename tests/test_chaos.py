"""Chaos harness: randomized fault storms vs. the invariant checker.

The acceptance gates of the failure-storm issue, as tier-1 tests:

* >= 25 seeded chaos scenarios (random scenario x random storm
  schedule x random recovery policy) verify clean -- byte-identical
  reruns, scheduler-log replay, conservation, and fault bounds;
* a deterministic storm scenario drains a full trace under all three
  recovery policies;
* checkpoint-restart loses at most one checkpoint interval (plus the
  iteration in flight) per host failure;
* a host death releases the victim's exact server block;
* a legacy ``FailureInjection`` that disconnects a shard suspends the
  job instead of raising, even with the fault plane disabled.
"""

import math

import pytest

from repro.api.spec import ClusterSpec, FabricSpec
from repro.cluster import (
    ArrivalSpec,
    FailureInjection,
    JobTemplateSpec,
    ScenarioSpec,
    run_scenario,
)
from repro.cluster.invariants import (
    chaos_scenario_spec,
    check_scenario_invariants,
    verify_scenario,
)
from repro.cluster.spec import SchedulerSpec

CHAOS_SEEDS = 25


class TestChaosHarness:
    def test_chaos_seeds_verify_clean(self):
        policies = set()
        kinds = set()
        for seed in range(CHAOS_SEEDS):
            spec = chaos_scenario_spec(seed)
            policies.add(spec.recovery.policy)
            result = verify_scenario(spec)
            kinds.update(entry["kind"] for entry in result.failure_log)
        # The draw really exercises the plane: multiple policies and
        # at least one applied (non-skipped) fault kind showed up.
        assert len(policies) >= 2
        assert kinds & {"mp_detour", "link_cut", "server_fail", "storm"}

    def test_chaos_spec_is_deterministic(self):
        assert chaos_scenario_spec(11) == chaos_scenario_spec(11)
        assert chaos_scenario_spec(11) != chaos_scenario_spec(12)

    def test_policy_override_pins_recovery(self):
        spec = chaos_scenario_spec(0, policy="checkpoint-restart")
        assert spec.recovery.policy == "checkpoint-restart"


def storm_spec(policy: str) -> ScenarioSpec:
    """A compact deterministic storm: 12 jobs, 4 correlated storms."""
    spec = ScenarioSpec(
        name=f"storm-{policy}",
        cluster=ClusterSpec(servers=16, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="topoopt"),
        arrivals=ArrivalSpec(
            process="poisson", count=12, mean_interarrival_s=6.0,
            max_servers=8,
        ),
        jobs=(
            JobTemplateSpec(model="DLRM", servers=4, iterations=40),
            JobTemplateSpec(model="BERT", servers=4, iterations=40),
        ),
        scheduler=SchedulerSpec(policy="first-fit"),
        max_sim_time_s=1e5,
    )
    return spec.with_overrides({
        "storms": 4,
        "storm_window_s": 60.0,
        "storm_region_size": 8,
        "storm_servers": 1,
        "storm_links": 1,
        "mean_repair_s": 20.0,
        "recovery_policy": policy,
        "checkpoint_interval_s": 5.0,
    })


class TestStormScenarios:
    @pytest.mark.parametrize(
        "policy", ["detour", "reoptimize", "checkpoint-restart"]
    )
    def test_storm_drains_and_verifies(self, policy):
        result = verify_scenario(storm_spec(policy))
        assert len(result.jobs) == 12
        assert not result.unfinished_jobs
        # The storm bit: the failure log is populated and the fault
        # metric block appears in metrics().
        assert result.failure_log
        assert "fault_events" in result.metrics()

    def test_no_fault_scenario_has_no_fault_metrics(self):
        spec = storm_spec("detour").with_overrides({"storms": 0})
        result = run_scenario(spec)
        assert not result.failure_log
        assert "fault_events" not in result.metrics()


class TestCheckpointRestartBounds:
    def one_job_spec(self, interval=0.7):
        spec = ScenarioSpec(
            name="ckpt-bound",
            cluster=ClusterSpec(servers=8, degree=4,
                                bandwidth_gbps=100.0),
            fabric=FabricSpec(kind="topoopt"),
            arrivals=ArrivalSpec(process="explicit", times=(0.0,)),
            jobs=(JobTemplateSpec(model="DLRM", servers=4,
                                  iterations=200),),
            scheduler=SchedulerSpec(policy="first-fit"),
            max_sim_time_s=1e5,
        )
        return spec.with_overrides({
            "recovery_policy": "checkpoint-restart",
            "checkpoint_interval_s": interval,
        })

    def run_with_host_fault(self, interval=0.7, fault_t=1.0):
        # The 200-iteration job runs ~2.3 s, so t=1.0 lands mid-run (and
        # 0.7 does not divide 1.0, so the rollback discards real work).
        spec = self.one_job_spec(interval).with_overrides({
            "faults.events": [
                {"kind": "server", "time_s": fault_t, "server": 0,
                 "repair_s": fault_t + 1.0},
            ],
        })
        return spec, run_scenario(spec)

    def test_lost_work_bounded_by_one_interval(self):
        spec, result = self.run_with_host_fault()
        entry = next(
            e for e in result.failure_log if e["kind"] == "server_fail"
        )
        interval = spec.recovery.checkpoint_interval_s
        # The direct acceptance bound: at most one checkpoint interval
        # plus the iteration straddling the boundary.
        assert entry["since_checkpoint_s"] <= interval + 1e-9
        assert entry["lost_work_s"] <= (
            entry["since_checkpoint_s"] + entry["step_s"] + 1e-9
        )
        assert check_scenario_invariants(result) == []

    def test_job_finishes_after_restart(self):
        _, result = self.run_with_host_fault()
        assert len(result.jobs) == 1
        job = result.jobs[0]
        assert job.iterations_completed == 200
        assert job.fault_suspensions == 1
        assert job.lost_work_s > 0.0
        assert job.fault_wait_s >= 0.0
        # The lost work is real: JCT exceeds the no-fault run's.
        baseline = run_scenario(self.one_job_spec())
        assert job.jct_s > baseline.jobs[0].jct_s

    def test_fault_metrics_account_the_loss(self):
        _, result = self.run_with_host_fault()
        fault = result.fault_metrics()
        assert fault["fault_events"] == 1
        assert fault["fault_suspensions"] == 1
        assert fault["lost_work_s"] == pytest.approx(
            result.jobs[0].lost_work_s
        )
        assert 0.0 < fault["goodput_degradation"] < 1.0
        assert 0.0 < fault["availability"] <= 1.0
        assert math.isfinite(fault["mttr_s"])


class TestHostDeathReleasesBlock:
    def test_suspend_releases_exact_block(self):
        spec, result = (
            TestCheckpointRestartBounds().run_with_host_fault()
        )
        events = result.scheduler_log
        start = next(
            e for e in events
            if e["event"] in ("admit", "start") and e["job_index"] == 0
        )
        suspend = next(e for e in events if e["event"] == "suspend")
        assert suspend["job_index"] == 0
        assert sorted(suspend["servers"]) == sorted(start["servers"])
        assert 0 in suspend["servers"]
        # The fault/repair pair brackets the suspension.
        fault = next(
            e for e in events
            if e["event"] == "fault" and e.get("kind") == "server"
        )
        repair = next(
            e for e in events
            if e["event"] == "repair" and e.get("kind") == "server"
        )
        assert fault["time_s"] <= repair["time_s"]


class TestLegacyDisconnectionSuspends:
    def two_server_spec(self):
        return ScenarioSpec(
            name="legacy-disconnect",
            cluster=ClusterSpec(servers=4, degree=4,
                                bandwidth_gbps=100.0),
            fabric=FabricSpec(kind="topoopt"),
            arrivals=ArrivalSpec(process="explicit", times=(0.0,)),
            jobs=(JobTemplateSpec(model="DLRM", servers=2,
                                  iterations=30),),
            scheduler=SchedulerSpec(policy="first-fit"),
            max_sim_time_s=1e5,
        )

    def test_disconnecting_cut_suspends_not_raises(self):
        spec = self.two_server_spec()
        period = run_scenario(spec).jobs[0].iteration_avg_s
        # A 2-server shard has no detour for its only ring edge, so
        # this legacy injection disconnects the shard.  With the fault
        # plane entirely disabled the engine must still suspend +
        # requeue instead of raising.
        result = run_scenario(
            spec,
            failures=[
                FailureInjection(time_s=2.5 * period, job_index=0)
            ],
        )
        cut = next(
            e for e in result.failure_log if e["kind"] == "link_cut"
        )
        assert "disconnected" in cut["reason"]
        assert any(
            e["event"] == "suspend" for e in result.scheduler_log
        )
        # The job restarted and still finished its full quota.
        assert result.jobs[0].iterations_completed == 30
        assert result.jobs[0].fault_suspensions == 1
        assert not result.unfinished_jobs
        assert check_scenario_invariants(result) == []
