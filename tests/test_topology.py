"""Unit tests for the direct-connect topology abstraction."""

import pytest

from repro.network.topology import (
    DegreeExceededError,
    DirectConnectTopology,
)


def ring_topology(n, degree=2):
    topo = DirectConnectTopology(n, degree)
    topo.add_ring(list(range(n)))
    return topo


class TestConstruction:
    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            DirectConnectTopology(0, 4)

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            DirectConnectTopology(4, 0)

    def test_starts_with_no_links(self):
        topo = DirectConnectTopology(4, 2)
        assert topo.num_links() == 0


class TestAddLink:
    def test_basic_link(self):
        topo = DirectConnectTopology(4, 2)
        topo.add_link(0, 1)
        assert topo.has_link(0, 1)
        assert not topo.has_link(1, 0)

    def test_parallel_links_accumulate(self):
        topo = DirectConnectTopology(4, 3)
        topo.add_link(0, 1, count=2)
        assert topo.multiplicity(0, 1) == 2

    def test_degree_budget_enforced_tx(self):
        topo = DirectConnectTopology(4, 1)
        topo.add_link(0, 1)
        with pytest.raises(DegreeExceededError):
            topo.add_link(0, 2)

    def test_degree_budget_enforced_rx(self):
        topo = DirectConnectTopology(4, 1)
        topo.add_link(0, 1)
        with pytest.raises(DegreeExceededError):
            topo.add_link(2, 1)

    def test_self_link_rejected(self):
        topo = DirectConnectTopology(4, 2)
        with pytest.raises(ValueError):
            topo.add_link(1, 1)

    def test_out_of_range_rejected(self):
        topo = DirectConnectTopology(4, 2)
        with pytest.raises(ValueError):
            topo.add_link(0, 4)

    def test_enforcement_disabled(self):
        topo = DirectConnectTopology(3, 1, enforce_degree=False)
        topo.add_link(0, 1)
        topo.add_link(0, 2)  # would exceed d=1
        assert topo.out_degree(0) == 2


class TestRemoveLink:
    def test_remove_restores_degree(self):
        topo = DirectConnectTopology(4, 1)
        topo.add_link(0, 1)
        topo.remove_link(0, 1)
        assert topo.free_tx(0) == 1
        topo.add_link(0, 2)

    def test_remove_missing_raises(self):
        topo = DirectConnectTopology(4, 2)
        with pytest.raises(ValueError):
            topo.remove_link(0, 1)


class TestAddRing:
    def test_ring_links(self):
        topo = ring_topology(5)
        for i in range(5):
            assert topo.has_link(i, (i + 1) % 5)

    def test_ring_is_atomic_on_failure(self):
        topo = DirectConnectTopology(4, 1)
        topo.add_link(2, 3)  # consumes server 2's only tx port
        with pytest.raises(DegreeExceededError):
            topo.add_ring([0, 1, 2, 3])
        # Nothing from the failed ring was laid down.
        assert not topo.has_link(0, 1)
        assert not topo.has_link(1, 2)

    def test_ring_rejects_duplicates(self):
        topo = DirectConnectTopology(4, 2)
        with pytest.raises(ValueError):
            topo.add_ring([0, 1, 1, 2])


class TestPaths:
    def test_shortest_path_direct(self):
        topo = ring_topology(6)
        assert topo.shortest_path(0, 1) == [0, 1]

    def test_shortest_path_around_ring(self):
        topo = ring_topology(6)
        # Directed ring: 5 -> 0 is one hop, 0 -> 5 is five hops.
        assert topo.shortest_path(5, 0) == [5, 0]
        assert len(topo.shortest_path(0, 5)) == 6

    def test_unreachable_returns_none(self):
        topo = DirectConnectTopology(4, 2)
        topo.add_link(0, 1)
        assert topo.shortest_path(1, 0) is None

    def test_lengths_from_source(self):
        topo = ring_topology(4)
        assert topo.shortest_path_lengths_from(0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_all_shortest_paths_count(self):
        topo = DirectConnectTopology(4, 3)
        # Two disjoint 2-hop routes 0 -> 3.
        topo.add_link(0, 1)
        topo.add_link(1, 3)
        topo.add_link(0, 2)
        topo.add_link(2, 3)
        paths = topo.all_shortest_paths(0, 3)
        assert sorted(paths) == [[0, 1, 3], [0, 2, 3]]

    def test_all_shortest_paths_cap(self):
        topo = DirectConnectTopology(6, 5, enforce_degree=False)
        for mid in (1, 2, 3, 4):
            topo.add_link(0, mid)
            topo.add_link(mid, 5)
        assert len(topo.all_shortest_paths(0, 5, cap=2)) == 2
        assert len(topo.all_shortest_paths(0, 5, cap=10)) == 4

    def test_k_shortest_paths_distinct(self):
        topo = DirectConnectTopology(4, 3)
        topo.add_link(0, 1)
        topo.add_link(1, 3)
        topo.add_link(0, 2)
        topo.add_link(2, 3)
        topo.add_link(0, 3)
        paths = topo.k_shortest_paths(0, 3, 3)
        assert paths[0] == [0, 3]
        assert len(paths) == 3
        assert len({tuple(p) for p in paths}) == 3

    def test_k_shortest_paths_matches_reference(self):
        # Yen's path *lengths* are uniquely determined even when
        # equal-length ties resolve to different concrete paths, so the
        # CSR-backed spur loop must match the seed implementation
        # hop-for-hop on randomized topologies.
        import random

        rng = random.Random(7)
        for trial in range(15):
            n = rng.randrange(6, 14)
            topo = DirectConnectTopology(n, n, enforce_degree=False)
            topo.add_ring(list(range(n)))
            for _ in range(2 * n):
                src, dst = rng.randrange(n), rng.randrange(n)
                if src != dst:
                    topo.add_link(src, dst)
            for _ in range(4):
                src, dst = rng.randrange(n), rng.randrange(n)
                if src == dst:
                    continue
                k = rng.randrange(1, 6)
                fast = topo.k_shortest_paths(src, dst, k)
                reference = topo._k_shortest_paths_reference(src, dst, k)
                assert [len(p) for p in fast] == [len(p) for p in reference]
                assert len({tuple(p) for p in fast}) == len(fast)
                for path in fast:
                    assert path[0] == src and path[-1] == dst
                    assert len(set(path)) == len(path)  # loopless
                    for a, b in zip(path, path[1:]):
                        assert topo.has_link(a, b)

    def test_k_shortest_paths_unreachable(self):
        topo = DirectConnectTopology(3, 2)
        topo.add_link(0, 1)
        assert topo.k_shortest_paths(0, 2, 3) == []
        assert topo._k_shortest_paths_reference(0, 2, 3) == []

    def test_k_shortest_paths_cache_safe_across_mutation(self):
        # The spur loop must not poison the version-invalidated caches:
        # mutate, query, mutate again, and re-query.
        topo = DirectConnectTopology(5, 4)
        topo.add_ring([0, 1, 2, 3, 4])
        first = topo.k_shortest_paths(0, 2, 2)
        assert first[0] == [0, 1, 2]
        topo.add_link(0, 2)
        assert topo.k_shortest_paths(0, 2, 2)[0] == [0, 2]


class TestGraphMetrics:
    def test_ring_diameter(self):
        assert ring_topology(8).diameter() == 7

    def test_bidirectional_ring_diameter(self):
        topo = DirectConnectTopology(8, 2)
        for i in range(8):
            topo.add_bidirectional(i, (i + 1) % 8)
        assert topo.diameter() == 4

    def test_diameter_requires_connectivity(self):
        topo = DirectConnectTopology(4, 2)
        topo.add_link(0, 1)
        with pytest.raises(ValueError):
            topo.diameter()

    def test_strongly_connected_ring(self):
        assert ring_topology(5).is_strongly_connected()

    def test_one_way_chain_not_strongly_connected(self):
        topo = DirectConnectTopology(3, 2)
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        assert not topo.is_strongly_connected()

    def test_average_path_length_ring(self):
        # Directed n-ring: distances 1..n-1 from each node -> mean n/2.
        topo = ring_topology(6)
        assert topo.average_path_length() == pytest.approx(3.0)

    def test_path_length_distribution_size(self):
        topo = ring_topology(5)
        assert len(topo.path_length_distribution()) == 5 * 4

    def test_copy_is_independent(self):
        topo = ring_topology(4)
        clone = topo.copy()
        clone.remove_link(0, 1)
        assert topo.has_link(0, 1)
        assert not clone.has_link(0, 1)

    def test_capacity_map(self):
        topo = DirectConnectTopology(3, 2)
        topo.add_link(0, 1, count=2)
        caps = topo.capacity_map(10e9)
        assert caps.capacity(0, 1) == 20e9
        assert caps.capacity(1, 0) == 0.0
