"""Equivalence tests: incremental max-min solver vs. the batch solver.

The incremental frontier solver (``repro.perf.fairshare.
IncrementalFairShare``) must reproduce the PR-1 batch solver exactly --
identical rates after arbitrary add/remove sequences, and identical
makespans and completion orders on randomized staggered phases where
every flow finishes at a distinct time, including mid-phase flow
arrival and cancellation.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.perf.bench import ring_topology, staggered_phase_flows
from repro.perf.fairshare import (
    IncrementalFairShare,
    build_incidence_from_paths,
    progressive_filling_rates,
)
from repro.sim.events import FlowEventEngine
from repro.sim.flows import Flow
from repro.sim.fluid import simulate_phase

GBPS = 1e9


def random_incidence(rng, max_links=30, max_flows=60):
    """Random 0/1 incidence with every flow crossing at least one link."""
    num_links = int(rng.integers(4, max_links))
    num_flows = int(rng.integers(5, max_flows))
    dense = (
        rng.random((num_links, num_flows)) < rng.uniform(0.1, 0.5)
    ).astype(float)
    for flow in range(num_flows):
        if dense[:, flow].sum() == 0:
            dense[int(rng.integers(0, num_links)), flow] = 1.0
    capacities = rng.uniform(0.5, 10.0, num_links)
    return sparse.csr_matrix(dense), capacities


def staggered_flows(topo, rng):
    """Single-path flows with jittered sizes (all-distinct completions)."""
    flows = []
    for src in range(topo.n):
        for dst, paths in topo.min_hop_paths_from(src, 1).items():
            flows.append(Flow(
                path=tuple(paths[0]),
                size_bits=1e9 * float(rng.uniform(0.5, 1.5)),
            ))
    return flows


class TestIncrementalSolverEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_add_remove_sequences_match_batch(self, seed):
        rng = np.random.default_rng(seed)
        incidence, capacities = random_incidence(rng)
        num_flows = incidence.shape[1]
        solver = IncrementalFairShare(capacities, incidence)
        active = np.ones(num_flows, dtype=bool)
        for _ in range(80):
            act = np.flatnonzero(active)
            inact = np.flatnonzero(~active)
            remove = (rng.random() < 0.6 and act.size) or inact.size == 0
            if remove:
                if act.size == 0:
                    break
                pick = rng.choice(
                    act, size=int(rng.integers(1, min(4, act.size) + 1)),
                    replace=False,
                )
                solver.remove_flows(pick)
                active[pick] = False
            else:
                pick = rng.choice(
                    inact, size=int(rng.integers(1, min(4, inact.size) + 1)),
                    replace=False,
                )
                solver.add_flows(pick)
                active[pick] = True
            reference = progressive_filling_rates(
                capacities, incidence, active
            )
            np.testing.assert_allclose(
                solver.rates, reference, rtol=1e-9, atol=1e-9
            )

    def test_initial_solution_matches_batch(self):
        rng = np.random.default_rng(123)
        incidence, capacities = random_incidence(rng)
        solver = IncrementalFairShare(capacities, incidence)
        reference = progressive_filling_rates(capacities, incidence)
        np.testing.assert_allclose(solver.rates, reference, rtol=1e-12)

    def test_remove_can_lower_other_rates(self):
        # The doctest scenario: freeing flow 0 lets flow 1 rise, which
        # squeezes flow 2 on the downstream link.
        incidence = sparse.csr_matrix(
            np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
        )
        solver = IncrementalFairShare(np.array([4.0, 10.0]), incidence)
        np.testing.assert_allclose(solver.rates, [2.0, 2.0, 8.0])
        solver.remove_flows([0])
        np.testing.assert_allclose(solver.rates, [0.0, 4.0, 6.0])

    def test_duplicate_and_noop_deltas_ignored(self):
        incidence = sparse.csr_matrix(np.ones((1, 3)))
        solver = IncrementalFairShare(np.array([3.0]), incidence)
        solver.remove_flows([1, 1])
        solver.remove_flows([1])
        np.testing.assert_allclose(solver.rates, [1.5, 0.0, 1.5])
        solver.add_flows([1, 1])
        np.testing.assert_allclose(solver.rates, [1.0, 1.0, 1.0])

    def test_recompute_matches_incremental_state(self):
        rng = np.random.default_rng(7)
        incidence, capacities = random_incidence(rng)
        solver = IncrementalFairShare(capacities, incidence)
        solver.remove_flows([0, 2])
        before = solver.rates
        solver.recompute()
        np.testing.assert_allclose(solver.rates, before, rtol=1e-9)

    def test_aggregate_sync_does_not_drift(self):
        # Hammer a tiny network for far more events than SYNC_INTERVAL.
        incidence = sparse.csr_matrix(np.ones((2, 4)))
        capacities = np.array([4.0, 2.0])
        solver = IncrementalFairShare(capacities, incidence)
        rng = np.random.default_rng(11)
        active = np.ones(4, dtype=bool)
        for _ in range(3 * IncrementalFairShare.SYNC_INTERVAL):
            flow = int(rng.integers(0, 4))
            if active[flow]:
                solver.remove_flows([flow])
            else:
                solver.add_flows([flow])
            active[flow] = ~active[flow]
            reference = progressive_filling_rates(
                capacities, incidence, active
            )
            np.testing.assert_allclose(
                solver.rates, reference, rtol=1e-9, atol=1e-12
            )


class TestStaggeredPhaseEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_makespan_and_completion_order_match(self, seed):
        rng = np.random.default_rng(seed)
        topo = ring_topology(16, 4)
        capacities = {
            (s, d): c * 100 * GBPS for s, d, c in topo.edges()
        }
        flows = staggered_flows(topo, rng)
        batch = FlowEventEngine(capacities, flows, solver="batch")
        batch.run()
        flows2 = staggered_flows(topo, np.random.default_rng(seed))
        incremental = FlowEventEngine(
            capacities, flows2, solver="incremental"
        )
        incremental.run()
        np.testing.assert_allclose(
            incremental.completion_times,
            batch.completion_times,
            rtol=1e-9,
        )
        assert np.array_equal(
            np.argsort(incremental.completion_times, kind="stable"),
            np.argsort(batch.completion_times, kind="stable"),
        )

    def test_simulate_phase_solvers_agree(self):
        topo = ring_topology(16, 4)
        capacities = {
            (s, d): c * 100 * GBPS for s, d, c in topo.edges()
        }
        rng = np.random.default_rng(3)
        flows = staggered_flows(topo, rng)
        batch = simulate_phase(capacities, flows, False, solver="batch")
        flows2 = staggered_flows(topo, np.random.default_rng(3))
        incremental = simulate_phase(capacities, flows2, False)
        assert incremental == pytest.approx(batch, rel=1e-9)

    def test_realistic_staggered_workload_agrees(self):
        topo = ring_topology(16, 4)
        capacities = {
            (s, d): c * 100 * GBPS for s, d, c in topo.edges()
        }
        flows = staggered_phase_flows(topo, chunks=4)
        batch = simulate_phase(capacities, flows, False, solver="batch")
        flows2 = staggered_phase_flows(topo, chunks=4)
        incremental = simulate_phase(capacities, flows2, False)
        assert incremental == pytest.approx(batch, rel=1e-9)

    def test_unknown_solver_rejected(self):
        flows = [Flow(path=(0, 1), size_bits=1e9)]
        with pytest.raises(ValueError, match="unknown solver"):
            FlowEventEngine({(0, 1): GBPS}, flows, solver="magic")


class TestMidPhaseArrivalAndRemoval:
    @pytest.mark.parametrize("seed", range(4))
    def test_staggered_arrivals_match_batch(self, seed):
        rng = np.random.default_rng(100 + seed)
        topo = ring_topology(12, 4)
        capacities = {
            (s, d): c * 100 * GBPS for s, d, c in topo.edges()
        }
        flows = staggered_flows(topo, rng)
        starts = rng.uniform(0.0, 0.05, len(flows))
        batch = FlowEventEngine(
            capacities, flows, start_times=starts, solver="batch"
        )
        batch.run()
        flows2 = staggered_flows(topo, np.random.default_rng(100 + seed))
        incremental = FlowEventEngine(
            capacities, flows2, start_times=starts.copy(),
            solver="incremental",
        )
        incremental.run()
        np.testing.assert_allclose(
            incremental.completion_times,
            batch.completion_times,
            rtol=1e-9,
        )

    def test_mid_phase_cancellation_matches_batch(self):
        rng = np.random.default_rng(42)
        topo = ring_topology(12, 4)
        capacities = {
            (s, d): c * 100 * GBPS for s, d, c in topo.edges()
        }

        def run(solver):
            flows = staggered_flows(topo, np.random.default_rng(42))
            engine = FlowEventEngine(capacities, flows, solver=solver)
            cancel = rng.integers(0, len(flows), size=5)
            steps = 0
            while engine.step() is not None:
                steps += 1
                if steps == 3:
                    engine.cancel_flows(cancel)
            return engine

        rng = np.random.default_rng(7)
        batch = run("batch")
        rng = np.random.default_rng(7)
        incremental = run("incremental")
        np.testing.assert_allclose(
            incremental.completion_times,
            batch.completion_times,
            rtol=1e-9,
            equal_nan=True,
        )
        # Cancelled flows never record a completion time.
        assert np.isnan(incremental.completion_times).sum() > 0

    def test_cancel_before_arrival_drops_flow(self):
        flows = [
            Flow(path=(0, 1), size_bits=1e9),
            Flow(path=(0, 1), size_bits=1e9),
        ]
        engine = FlowEventEngine(
            {(0, 1): GBPS}, flows, start_times=[0.0, 10.0]
        )
        engine.cancel_flows([1])
        engine.run()
        assert engine.pending_count() == 0
        assert np.isnan(engine.completion_times[1])
        assert engine.completion_times[0] == pytest.approx(1.0)

    def test_clock_never_rewinds_on_quantum_window_arrival(self):
        # Two completions merge into one batch that advances the clock
        # to the later of the pair; an arrival landing between the two
        # must not move the clock backward.
        quantum = 1e-9
        flows = [
            Flow(path=(0, 1), size_bits=1e9),                  # done at 1.0
            Flow(path=(2, 3), size_bits=1e9 + 0.9 * quantum * 1e9),
            Flow(path=(4, 5), size_bits=1e9),
        ]
        starts = [0.0, 0.0, 1.0 + 0.5 * quantum]
        engine = FlowEventEngine(
            {(0, 1): 1e9, (2, 3): 1e9, (4, 5): 1e9},
            flows, start_times=starts,
        )
        times = []
        while True:
            step = engine.step()
            if step is None:
                break
            times.append(step[0])
        assert times == sorted(times)
        assert np.all(np.diff(engine.completion_times[np.argsort(
            engine.completion_times)]) >= 0)


class TestConstructionValidation:
    def test_zero_link_flow_rejected(self):
        incidence = sparse.csr_matrix(
            np.array([[1.0, 1.0, 0.0]])  # flow 2 crosses no link
        )
        with pytest.raises(ValueError, match="at least one link"):
            IncrementalFairShare(np.array([4.0]), incidence)
