"""Scenario hot-loop kernelization (ISSUE 6).

Equivalence and feature gates for the persistent substrate flow kernel,
the fleet-scale scenario machinery (wall-clock durations, analytic
fast-forward), the process-wide warm caches, the weighted iteration
statistics, and the LP assembly dispatch:

* kernel vs reference solver: byte-identical ``ScenarioResult`` JSON
  (modulo the spec's own ``solver`` field) on staggered multi-job
  scenarios with mid-scenario link failures, across seeds;
* wall-clock trace durations produce run-length-encoded iteration logs
  that round-trip through JSON;
* fast-forward on/off agree on iteration counts and makespan;
* warm caches change wall time only, never results.
"""

import json

import numpy as np
import pytest

from repro.api.spec import ClusterSpec, FabricSpec
from repro.cluster import (
    ArrivalSpec,
    FailureInjection,
    JobTemplateSpec,
    ScenarioSpec,
    run_scenario,
)
from repro.cluster.results import _weighted_percentile


def normalized_json(result) -> str:
    """Result JSON with the spec's solver field masked out.

    The solver choice is recorded in the spec block, so kernel and
    reference runs can only ever be compared after masking it; every
    other byte must agree.
    """
    data = result.to_dict()
    data["spec"]["solver"] = "<masked>"
    return json.dumps(data, sort_keys=True)


def staggered_spec(seed: int, solver: str) -> ScenarioSpec:
    return ScenarioSpec.preset("shared").with_overrides({
        "seed": seed,
        "solver": solver,
        "arrivals.times": [0.0, 40.0, 95.0],
        "jobs.0.iterations": 5,
        "jobs.1.iterations": 5,
        "jobs.2.iterations": 5,
    })


class TestKernelMatchesReference:
    def test_staggered_failures_byte_identical_across_seeds(self):
        period = run_scenario(
            staggered_spec(0, "kernel")
        ).jobs[0].iteration_avg_s
        failures = [
            FailureInjection(
                time_s=1.5 * period, job_index=0, repair_s=3.5 * period
            ),
            # Job 1 arrives at t=40; hit it mid-flight.
            FailureInjection(time_s=40.0 + 1.5 * period, job_index=1),
        ]
        for seed in (0, 1, 2):
            kernel = run_scenario(
                staggered_spec(seed, "kernel"), failures=failures
            )
            reference = run_scenario(
                staggered_spec(seed, "reference"), failures=failures
            )
            assert normalized_json(kernel) == normalized_json(reference)
            # The failures really happened (not skipped) in both runs.
            kinds = [entry["kind"] for entry in kernel.failure_log]
            assert "skipped" not in kinds and len(kinds) == 3

    def test_shared_fabric_contention_byte_identical(self):
        # The fattree substrate is shared: all jobs' flows contend in
        # one fair-share solve, the path where the persistent flow
        # kernel replaces the per-event solver rebuild.
        spec = ScenarioSpec(
            name="kernel-vs-reference-shared",
            cluster=ClusterSpec(servers=32, degree=4, bandwidth_gbps=100.0),
            fabric=FabricSpec(kind="fattree"),
            arrivals=ArrivalSpec(
                process="explicit", times=(0.0, 0.1, 17.0, 44.0)
            ),
            jobs=(
                JobTemplateSpec(model="DLRM", servers=8, iterations=4),
                JobTemplateSpec(model="BERT", servers=8, iterations=4),
                JobTemplateSpec(model="CANDLE", servers=8, iterations=4),
                JobTemplateSpec(model="VGG16", servers=8, iterations=4),
            ),
        )
        for seed in (0, 7):
            kernel = run_scenario(spec.with_overrides({"seed": seed}))
            reference = run_scenario(
                spec.with_overrides({"seed": seed, "solver": "reference"})
            )
            assert normalized_json(kernel) == normalized_json(reference)


class TestKernelPortSwapRoundTrip:
    def test_repair_restores_iteration_time_under_kernel(self):
        # Satellite: the transient-detour -> permanent-port-swap cycle
        # must round-trip under the kernel solver: post-repair
        # iterations match the healthy ones exactly.
        spec = staggered_spec(0, "kernel")
        period = run_scenario(spec).jobs[0].iteration_avg_s
        result = run_scenario(
            spec,
            failures=[
                FailureInjection(
                    time_s=1.5 * period, job_index=0,
                    repair_s=3.5 * period,
                )
            ],
        )
        kinds = [entry["kind"] for entry in result.failure_log]
        assert kinds == ["mp_detour", "port_swap"]
        times = result.jobs[0].iteration_times
        healthy = times[0]
        assert max(times) > healthy * 1.01       # the detour bit
        assert times[-1] == pytest.approx(healthy, rel=1e-9)

    def test_multi_failure_sequence_under_kernel(self):
        # Two cuts on the same job, repaired in order; the job still
        # finishes its quota and the log shows the full sequence.
        spec = staggered_spec(0, "kernel")
        period = run_scenario(spec).jobs[0].iteration_avg_s
        result = run_scenario(
            spec,
            failures=[
                FailureInjection(
                    time_s=1.2 * period, job_index=0,
                    repair_s=3.2 * period,
                ),
                FailureInjection(
                    time_s=2.2 * period, job_index=0,
                    repair_s=4.2 * period,
                ),
            ],
        )
        kinds = [entry["kind"] for entry in result.failure_log]
        assert kinds.count("mp_detour") + kinds.count("link_cut") >= 1
        assert result.jobs[0].iterations_completed == 5


class TestWallclockDurations:
    def spec(self):
        return ScenarioSpec.preset("lifetime").with_overrides({
            "arrivals.count": 5,
            "arrivals.durations": "wallclock",
            "fast_forward": True,
            "max_sim_time_s": 4e7,
        })

    def test_jobs_run_their_traced_hours(self):
        result = run_scenario(self.spec())
        assert len(result.jobs) == 5
        for job in result.jobs:
            assert job.duration_s is not None and job.duration_s > 0
            # The job departs at the first iteration boundary at or
            # past its deadline; queueing can only push it later.
            assert job.completed_s - job.arrival_s >= job.duration_s * 0.999
            assert job.iteration_counts is not None
            assert sum(job.iteration_counts) == job.iterations_completed
            assert len(job.iteration_counts) == len(job.iteration_times)

    def test_rle_iteration_log_round_trips(self):
        from repro.cluster.results import ScenarioResult

        result = run_scenario(self.spec())
        data = result.to_dict()
        # Months of iterations compress to a handful of RLE segments.
        for job in data["jobs"]:
            assert len(job["iteration_times"]) < 64
        restored = ScenarioResult.from_dict(data)
        assert restored.to_dict() == data

    def test_wallclock_requires_trace_process(self):
        from repro.api.spec import SpecError

        with pytest.raises(SpecError, match="wallclock"):
            ArrivalSpec(process="poisson", durations="wallclock")


class TestFastForward:
    def test_quota_mode_matches_step_by_step(self):
        base = ScenarioSpec.preset("lifetime").with_overrides({
            "arrivals.count": 6,
            "max_sim_time_s": 4e5,
        })
        stepped = run_scenario(base)
        jumped = run_scenario(base.with_overrides({"fast_forward": True}))
        assert len(stepped.jobs) == len(jumped.jobs)
        for a, b in zip(stepped.jobs, jumped.jobs):
            assert a.iterations_completed == b.iterations_completed
            assert b.completed_s == pytest.approx(a.completed_s, rel=1e-9)
        assert jumped.makespan_s == pytest.approx(
            stepped.makespan_s, rel=1e-9
        )

    def test_requires_topoopt_fabric(self):
        from repro.api.spec import SpecError

        with pytest.raises(SpecError, match="fast_forward"):
            ScenarioSpec(
                fabric=FabricSpec(kind="fattree"), fast_forward=True
            )


class TestWarmCaches:
    def test_warm_rerun_is_byte_identical(self):
        from repro.perf.warmcache import PIPELINE_CACHE, clear_all

        clear_all()
        spec = ScenarioSpec.preset("shared")
        cold = run_scenario(spec)
        cold_misses = PIPELINE_CACHE.misses
        assert cold_misses > 0
        warm = run_scenario(spec)
        assert PIPELINE_CACHE.misses == cold_misses  # all hits
        assert PIPELINE_CACHE.hits > 0
        assert (
            json.dumps(cold.to_dict(), sort_keys=True)
            == json.dumps(warm.to_dict(), sort_keys=True)
        )

    def test_costmodel_kernel_reused_per_fabric(self):
        from repro.network.fattree import FatTreeFabric
        from repro.perf.warmcache import kernel_for

        fabric = FatTreeFabric(16, 4, 100e9)
        twin = FatTreeFabric(16, 4, 100e9)
        assert kernel_for(fabric) is kernel_for(twin)

    def test_lru_eviction_bounds_size(self):
        from repro.perf.warmcache import WarmCache

        cache = WarmCache(maxsize=2)
        for key in range(5):
            cache.get_or_build(key, lambda k=key: k * 10)
        assert len(cache) == 2
        assert cache.get_or_build(4, lambda: -1) == 40  # still cached


class TestWeightedPercentile:
    def test_matches_numpy_on_expanded_samples(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.1, 5.0, size=40)
        counts = rng.integers(1, 6, size=40)
        expanded = np.repeat(values, counts)
        for q in (0.0, 25.0, 50.0, 99.0, 100.0):
            assert _weighted_percentile(values, counts, q) == pytest.approx(
                float(np.percentile(expanded, q)), rel=1e-12
            )

    def test_unit_counts_degenerate_to_plain_percentile(self):
        values = np.array([3.0, 1.0, 2.0])
        counts = np.ones(3)
        assert _weighted_percentile(values, counts, 50.0) == 2.0


class TestLpAssemblyDispatch:
    def test_dense_and_sparse_paths_agree(self, monkeypatch):
        from repro.core import routing_lp

        volumes = [2.0, 1.0]
        paths = [[[0, 1], [0, 2, 1]], [[1, 2]]]
        capacities = {
            (0, 1): 10.0, (0, 2): 10.0, (2, 1): 10.0, (1, 2): 10.0
        }
        dense = routing_lp.assemble_lp_constraints(
            volumes, paths, capacities
        )
        assert isinstance(dense[0], np.ndarray)
        monkeypatch.setattr(routing_lp, "DENSE_ASSEMBLY_MAX_VARS", 0)
        sparse_out = routing_lp.assemble_lp_constraints(
            volumes, paths, capacities
        )
        assert not isinstance(sparse_out[0], np.ndarray)
        assert np.array_equal(sparse_out[0].toarray(), dense[0])
        assert np.array_equal(sparse_out[2].toarray(), dense[2])
        assert np.array_equal(sparse_out[1], dense[1])
        assert np.array_equal(sparse_out[3], dense[3])
        assert sparse_out[4] == dense[4] and sparse_out[5] == dense[5]
