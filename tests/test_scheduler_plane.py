"""Unit tests for the scheduler control plane's building blocks.

The policy-level behavior is covered by the property harness
(``test_scheduler_invariants.py``), the backfill oracles
(``test_backfill.py``) and the golden snapshots; this file pins the
layer underneath: the strict block-tracking allocator (the ISSUE 7
fix -- ``free`` used to silently accept servers it never allocated),
the availability profile's window arithmetic, the look-ahead
``ShardManager`` credit model, the new spec knobs, and the
preemption/elastic lifecycle accounting on small deterministic
scenarios.
"""

import random

import numpy as np
import pytest

from repro.api.spec import SpecError
from repro.cluster import ScenarioSpec, run_scenario
from repro.cluster.scheduler import (
    AvailabilityProfile,
    ShardAllocator,
    ShardManager,
)
from repro.cluster.spec import SchedulerSpec


def allocator(servers=16, policy="first-fit", seed=0):
    return ShardAllocator(servers, policy, random.Random(seed))


class TestStrictFree:
    """``free`` only accepts blocks it handed out (the ISSUE 7 fix)."""

    def test_round_trip(self):
        alloc = allocator()
        block = alloc.allocate(8)
        alloc.free(block)
        assert alloc.free_count == 16
        assert alloc.allocate(16) == tuple(range(16))

    def test_never_allocated_block_raises(self):
        alloc = allocator()
        alloc.allocate(4)  # block [0, 4)
        alloc.allocate(4)  # block [4, 8)
        with pytest.raises(ValueError, match="never allocated"):
            alloc.free((2, 3, 4, 5))  # busy, but spans two blocks

    def test_out_of_range_server_raises(self):
        alloc = allocator()
        alloc.allocate(16)
        with pytest.raises(ValueError, match="outside this cluster"):
            alloc.free((14, 15, 16))  # 16 would hit the mask sentinel
        with pytest.raises(ValueError, match="outside this cluster"):
            alloc.free((-1, 0))

    def test_double_free_raises(self):
        alloc = allocator()
        block = alloc.allocate(4)
        alloc.free(block)
        with pytest.raises(ValueError, match="already free"):
            alloc.free(block)

    def test_partial_block_raises(self):
        alloc = allocator()
        block = alloc.allocate(8)
        with pytest.raises(ValueError, match="never allocated"):
            alloc.free(block[:4])

    def test_empty_free_raises(self):
        with pytest.raises(ValueError, match="empty"):
            allocator().free(())

    def test_rejected_free_leaves_pool_intact(self):
        alloc = allocator()
        alloc.allocate(8)
        with pytest.raises(ValueError):
            alloc.free((8, 9))
        assert alloc.free_count == 8
        assert alloc.busy_count == 8

    def test_allocate_block_exact_and_busy(self):
        alloc = allocator()
        assert alloc.allocate_block(4, 4) == (4, 5, 6, 7)
        with pytest.raises(ValueError, match="not entirely free"):
            alloc.allocate_block(6, 4)
        with pytest.raises(ValueError, match="outside"):
            alloc.allocate_block(14, 4)
        alloc.free((4, 5, 6, 7))
        assert alloc.free_count == 16

    def test_largest_hole_tracks_fragmentation(self):
        alloc = allocator()
        first = alloc.allocate(4)
        alloc.allocate(4)
        alloc.free(first)  # free [0,4), busy [4,8), free [8,16)
        assert alloc.largest_hole() == 8
        assert list(alloc.free_mask()[:9]) == (
            [True] * 4 + [False] * 4 + [True]
        )


class TestAvailabilityProfile:
    def test_immediate_fit(self):
        mask = np.ones(8, dtype=bool)
        profile = AvailabilityProfile(0.0, mask)
        assert profile.earliest_block(4, 10.0) == (0.0, 0)

    def test_waits_for_release(self):
        mask = np.zeros(8, dtype=bool)
        mask[6:] = True
        profile = AvailabilityProfile(
            0.0, mask, releases=[(5.0, range(0, 6))]
        )
        # 2 servers fit now; 4 only after the release at t=5.
        assert profile.earliest_block(2, 1.0) == (0.0, 6)
        assert profile.earliest_block(4, 1.0) == (5.0, 0)

    def test_hold_blocks_window(self):
        mask = np.ones(8, dtype=bool)
        profile = AvailabilityProfile(0.0, mask)
        profile.add_hold(0.0, 10.0, 0, 8)
        assert profile.earliest_block(4, 1.0) == (10.0, 0)

    def test_hold_forces_duration_past_boundary(self):
        mask = np.ones(8, dtype=bool)
        profile = AvailabilityProfile(0.0, mask)
        # Held from t=5: a 10s window starting now would overlap it.
        profile.add_hold(5.0, 20.0, 0, 8)
        assert profile.earliest_block(8, 4.0) == (0.0, 0)
        assert profile.earliest_block(8, 10.0) == (20.0, 0)

    def test_best_fit_choice(self):
        mask = np.ones(12, dtype=bool)
        mask[3] = False  # holes: [0,3) and [4,12)
        profile = AvailabilityProfile(0.0, mask)
        assert profile.earliest_block(2, 1.0, policy="best-fit") == (
            0.0, 0
        )
        assert profile.earliest_block(2, 1.0) == (0.0, 0)
        assert profile.earliest_block(4, 1.0, policy="best-fit") == (
            0.0, 4
        )

    def test_oversized_request_returns_none(self):
        profile = AvailabilityProfile(0.0, np.ones(4, dtype=bool))
        assert profile.earliest_block(5, 1.0) is None


class TestShardManager:
    def test_flat_mode_always_charges_full_latency(self):
        manager = ShardManager(
            SchedulerSpec(admission_latency_s=2.0, provisioning="flat")
        )
        manager.note_head(0, 10.0)
        assert manager.admission_latency(0, 15.0) == 2.0

    def test_lookahead_credits_time_at_head(self):
        manager = ShardManager(
            SchedulerSpec(
                admission_latency_s=2.0, provisioning="lookahead"
            )
        )
        manager.note_head(0, 10.0)
        assert manager.admission_latency(0, 10.5) == 1.5
        # Fully provisioned once the wait exceeds the latency.
        assert manager.admission_latency(0, 13.0) == 0.0

    def test_lookahead_never_head_pays_full(self):
        manager = ShardManager(
            SchedulerSpec(
                admission_latency_s=2.0, provisioning="lookahead"
            )
        )
        assert manager.admission_latency(7, 10.0) == 2.0

    def test_forget_resets_credit(self):
        manager = ShardManager(
            SchedulerSpec(
                admission_latency_s=2.0, provisioning="lookahead"
            )
        )
        manager.note_head(0, 10.0)
        manager.forget(0)
        assert manager.admission_latency(0, 20.0) == 2.0


class TestSpecValidation:
    def test_unknown_queue_rejected(self):
        with pytest.raises(SpecError, match="queue"):
            SchedulerSpec(queue="sjf")

    def test_unknown_preemption_rejected(self):
        with pytest.raises(SpecError, match="preemption"):
            SchedulerSpec(preemption="always")

    def test_negative_costs_rejected(self):
        for knob in (
            "admission_latency_s", "checkpoint_s", "restart_s",
            "resize_latency_s",
        ):
            with pytest.raises(SpecError, match=knob):
                SchedulerSpec(**{knob: -1.0})

    def test_elastic_range_validation(self):
        spec = ScenarioSpec.preset("shared")
        with pytest.raises(SpecError, match="min_servers"):
            spec.with_overrides({"jobs.0.min_servers": 1})
        with pytest.raises(SpecError, match="max_servers"):
            spec.with_overrides({"jobs.0.max_servers": 4})  # < servers=8
        with pytest.raises(SpecError, match="max_servers"):
            spec.with_overrides({"jobs.0.max_servers": 64})  # > cluster

    def test_scheduler_knobs_round_trip(self):
        spec = ScenarioSpec.preset("shared").with_overrides({
            "queue": "easy",
            "preemption": "priority",
            "checkpoint_s": 0.5,
            "restart_s": 0.25,
            "elastic": True,
            "resize_latency_s": 0.1,
            "provisioning": "lookahead",
            "jobs.0.priority": 3,
            "jobs.0.min_servers": 4,
            "jobs.0.max_servers": 16,
        })
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.scheduler.queue == "easy"
        assert again.jobs[0].elastic_range() == (4, 16)


def contended_spec(**overrides):
    base = ScenarioSpec.preset("shared").with_overrides({
        "jobs.0.iterations": 40, "jobs.0.servers": 24,
        "jobs.1.iterations": 4, "jobs.1.servers": 16,
        "arrivals.times": [0.0, 0.05],
        "count": 2,
    })
    return base.with_overrides(overrides)


class TestPreemptionLifecycle:
    def test_priority_preempts_and_conserves_work(self):
        result = run_scenario(contended_spec(**{
            "preemption": "priority",
            "checkpoint_s": 0.2, "restart_s": 0.3,
            "jobs.0.priority": 0, "jobs.1.priority": 5,
        }))
        events = [e["event"] for e in result.scheduler_log]
        assert "preempt" in events
        victim = next(j for j in result.jobs if j.index == 0)
        winner = next(j for j in result.jobs if j.index == 1)
        assert victim.preemptions == 1
        assert victim.preempted_wait_s > 0
        assert victim.iterations_completed == 40  # conserved
        assert winner.preemptions == 0
        # The high-priority job did not wait for the victim to finish.
        assert winner.admitted_s < victim.completed_s

    def test_no_preemption_of_equal_priority(self):
        result = run_scenario(contended_spec(**{
            "preemption": "priority",
            "jobs.0.priority": 5, "jobs.1.priority": 5,
        }))
        assert all(
            e["event"] != "preempt" for e in result.scheduler_log
        )

    def test_preemption_cost_charged(self):
        cheap = run_scenario(contended_spec(**{
            "preemption": "priority",
            "jobs.0.priority": 0, "jobs.1.priority": 5,
        }))
        costly = run_scenario(contended_spec(**{
            "preemption": "priority",
            "checkpoint_s": 1.0, "restart_s": 1.0,
            "jobs.0.priority": 0, "jobs.1.priority": 5,
        }))
        victim_cheap = next(j for j in cheap.jobs if j.index == 0)
        victim_costly = next(j for j in costly.jobs if j.index == 0)
        assert victim_costly.completed_s > victim_cheap.completed_s


class TestElasticLifecycle:
    def test_shrink_then_grow(self):
        result = run_scenario(ScenarioSpec.preset("shared").with_overrides({
            "jobs.0.iterations": 6, "jobs.0.servers": 16,
            "jobs.1.iterations": 6, "jobs.1.servers": 24,
            "jobs.1.min_servers": 8, "jobs.1.max_servers": 24,
            "arrivals.times": [0.0, 0.05],
            "count": 2,
            "elastic": True, "resize_latency_s": 0.01,
        }))
        flexible = next(j for j in result.jobs if j.index == 1)
        admits = [
            e for e in result.scheduler_log
            if e["event"] == "admit" and e["job_index"] == 1
        ]
        # Admitted shrunk (16 of 24 preferred), grew once vacated.
        assert len(admits[0]["servers"]) == 16
        assert flexible.resizes == 1
        assert flexible.num_servers == 24
        assert flexible.iterations_completed == 6  # conserved

    def test_inelastic_without_range_never_resizes(self):
        result = run_scenario(contended_spec(elastic=True))
        assert all(
            e["event"] != "resize" for e in result.scheduler_log
        )
        assert all(j.resizes == 0 for j in result.jobs)
