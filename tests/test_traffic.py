"""Unit tests for traffic extraction (Figures 1/8/9 accounting)."""

import numpy as np
import pytest

from repro.models import build_dlrm, build_vgg
from repro.parallel.strategy import (
    all_sharded_strategy,
    data_parallel_strategy,
    hybrid_strategy,
)
from repro.parallel.traffic import (
    alltoall_to_allreduce_ratio,
    extract_traffic,
)

GB = 1e9


def paper_dlrm():
    """The section 2.1 example: 4 tables of 512 x 1e7, 16 servers."""
    return build_dlrm(
        num_embedding_tables=4,
        embedding_dim=512,
        embedding_rows=10_000_000,
        num_dense_layers=2,
        dense_layer_size=512,
        num_feature_layers=2,
        feature_layer_size=512,
    )


class TestDataParallelTraffic:
    def test_single_group_all_servers(self):
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 8), batch_per_gpu=8
        )
        assert len(traffic.allreduce_groups) == 1
        assert traffic.allreduce_groups[0].members == tuple(range(8))

    def test_group_bytes_equal_model_params(self):
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 8), batch_per_gpu=8
        )
        assert traffic.total_allreduce_bytes == pytest.approx(
            model.total_params_bytes
        )

    def test_no_mp_traffic(self):
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 8), batch_per_gpu=8
        )
        assert traffic.total_mp_bytes == 0.0

    def test_figure_1a_pure_dp_dlrm(self):
        # Figure 1a: pure data parallelism on the 22 GB DLRM produces
        # ~44 GB ring-AllReduce transfers (2 (k-1)/k S with 8B params;
        # 4B params here give half of each).
        model = paper_dlrm()
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 16), batch_per_gpu=8
        )
        heatmap = traffic.heatmap()
        per_edge = heatmap.max()
        expected = 2.0 * 15 / 16 * model.total_params_bytes
        assert per_edge == pytest.approx(expected, rel=1e-6)
        assert per_edge > 15 * GB  # "44 GB" at 8B/param = ~19 GB at 4B


class TestHybridTraffic:
    def test_figure_1b_max_transfer_drops(self):
        # Figure 1b: hybrid parallelism cuts the max transfer ~10x.
        model = paper_dlrm()
        dp = extract_traffic(
            model, data_parallel_strategy(model, 16), batch_per_gpu=8
        )
        hybrid = extract_traffic(
            model, hybrid_strategy(model, 16), batch_per_gpu=8
        )
        assert hybrid.max_transfer_bytes() < dp.max_transfer_bytes() / 5

    def test_mp_bytes_match_paper_formula(self):
        # Appendix D: per-worker MP transfer = batch/server x act bytes.
        model = paper_dlrm()
        names = [l.name for l in model.embedding_layers]
        strategy = hybrid_strategy(
            model, 16, embedding_owners={n: i for i, n in enumerate(names)}
        )
        batch_per_gpu, gpus = 8, 4
        traffic = extract_traffic(model, strategy, batch_per_gpu, gpus)
        act = model.embedding_layers[0].activation_bytes_per_sample
        expected_per_worker = act * batch_per_gpu * gpus
        # Owner 0 holds table 0: it sends that much to each other server.
        assert traffic.mp_matrix[0, 5] == pytest.approx(expected_per_worker)

    def test_mp_symmetric_forward_backward(self):
        model = paper_dlrm()
        traffic = extract_traffic(
            model, hybrid_strategy(model, 16), batch_per_gpu=8
        )
        assert np.allclose(traffic.mp_matrix, traffic.mp_matrix.T)

    def test_dense_params_still_allreduced(self):
        model = paper_dlrm()
        traffic = extract_traffic(
            model, hybrid_strategy(model, 16), batch_per_gpu=8
        )
        assert traffic.total_allreduce_bytes == pytest.approx(
            model.dense_params_bytes
        )


class TestShardedTraffic:
    def test_all_to_all_pattern(self):
        model = build_dlrm(num_embedding_tables=4, embedding_rows=1000)
        traffic = extract_traffic(
            model, all_sharded_strategy(model, 8), batch_per_gpu=4
        )
        off_diagonal = traffic.mp_matrix[~np.eye(8, dtype=bool)]
        assert (off_diagonal > 0).all()
        # Uniform all-to-all.
        assert off_diagonal.max() == pytest.approx(off_diagonal.min())

    def test_ratio_grows_with_batch(self):
        # Figure 12's top axis: all-to-all share grows linearly in batch.
        model = build_dlrm(num_embedding_tables=8, embedding_rows=10_000)
        strategy = all_sharded_strategy(model, 8)
        small = alltoall_to_allreduce_ratio(
            extract_traffic(model, strategy, batch_per_gpu=16)
        )
        large = alltoall_to_allreduce_ratio(
            extract_traffic(model, strategy, batch_per_gpu=64)
        )
        assert large == pytest.approx(4 * small, rel=1e-6)


class TestHeatmaps:
    def test_heatmap_diagonal_pattern_stride1(self):
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 8), batch_per_gpu=8
        )
        heatmap = traffic.heatmap()
        for i in range(8):
            assert heatmap[i, (i + 1) % 8] > 0

    def test_heatmap_stride_permutation_moves_diagonal(self):
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 8), batch_per_gpu=8
        )
        h1 = traffic.heatmap(strides=[1])
        h3 = traffic.heatmap(strides=[3])
        assert h1[0, 1] > 0 and h3[0, 1] == 0
        assert h3[0, 3] > 0
        assert h1.sum() == pytest.approx(h3.sum())

    def test_multi_stride_load_balances(self):
        model = build_vgg(16)
        traffic = extract_traffic(
            model, data_parallel_strategy(model, 16), batch_per_gpu=8
        )
        single = traffic.heatmap(strides=[1])
        multi = traffic.heatmap(strides=[1, 3, 7])
        assert multi.max() == pytest.approx(single.max() / 3)


class TestValidation:
    def test_strategy_model_mismatch_rejected(self):
        model_a = build_vgg(16)
        model_b = build_vgg(19)
        strategy = data_parallel_strategy(model_a, 4)
        with pytest.raises(ValueError):
            extract_traffic(model_b, strategy, batch_per_gpu=4)

    def test_default_batch_used(self):
        model = build_vgg(16)
        traffic = extract_traffic(model, data_parallel_strategy(model, 4))
        assert traffic.total_allreduce_bytes > 0
