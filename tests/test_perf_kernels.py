"""Equivalence tests: vectorized kernels vs. the retained seed code.

The kernel layer (repro.perf) must produce the same rate allocations,
hop counts, and path sets as the pure-Python reference implementations
it replaced -- on randomized inputs, and across cache invalidation.
"""

import numpy as np
import pytest

from repro.core.routing_lp import _normalize_splits
from repro.network.topology import DirectConnectTopology
from repro.perf.bench import SMOKE_SIZES, run_benchmarks
from repro.perf.fairshare import (
    build_incidence,
    build_incidence_from_paths,
    progressive_filling_rates,
)
from repro.sim.flows import Flow
from repro.sim.fluid import (
    FluidNetwork,
    ReferenceFluidNetwork,
    simulate_phase,
    simulate_phase_reference,
)

GBPS = 1e9


def random_topology(rng, n, extra_edges, enforce=False):
    """Ring (for connectivity) plus random extra directed links."""
    topo = DirectConnectTopology(n, degree=n, enforce_degree=enforce)
    topo.add_ring(list(range(n)))
    for _ in range(extra_edges):
        src, dst = rng.integers(0, n, size=2)
        if src != dst:
            topo.add_link(int(src), int(dst))
    return topo


def random_flows(rng, topo, count):
    """Flows over random min-hop paths with random sizes."""
    flows = []
    n = topo.n
    while len(flows) < count:
        src, dst = rng.integers(0, n, size=2)
        if src == dst:
            continue
        paths = topo.all_shortest_paths(int(src), int(dst), cap=3)
        if not paths:
            continue
        path = paths[int(rng.integers(0, len(paths)))]
        size = float(rng.uniform(1e8, 5e9))
        flows.append(Flow(path=tuple(path), size_bits=size))
    return flows


class TestFluidRateEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_rates_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 14))
        topo = random_topology(rng, n, extra_edges=3 * n)
        capacities = {
            (s, d): count * float(rng.uniform(1, 10)) * GBPS
            for s, d, count in topo.edges()
        }
        flows_ref = random_flows(rng, topo, count=4 * n)
        flows_vec = [
            Flow(path=f.path, size_bits=f.size_bits) for f in flows_ref
        ]
        ref = ReferenceFluidNetwork(capacities)
        for f in flows_ref:
            ref.add_flow(f)
        ref.recompute_rates()
        vec = FluidNetwork(capacities)
        for f in flows_vec:
            vec.add_flow(f)
        vec.recompute_rates()
        ref_rates = np.array([f.rate_bps for f in flows_ref])
        vec_rates = np.array([f.rate_bps for f in flows_vec])
        assert np.allclose(ref_rates, vec_rates, rtol=1e-6)

    def test_kernel_direct_vs_reference_simple(self):
        # Textbook 3-flow example solved by the raw kernel.
        capacities = {(0, 1): 1 * GBPS, (1, 2): 1 * GBPS}
        paths = [(0, 1), (0, 1, 2), (1, 2)]
        incidence, cap_vec, _ = build_incidence_from_paths(paths, capacities)
        rates = progressive_filling_rates(cap_vec, incidence)
        assert np.allclose(rates, [0.5 * GBPS] * 3)

    def test_incidence_builders_agree(self):
        capacities = {(0, 1): GBPS, (1, 2): 2 * GBPS, (2, 0): GBPS}
        paths = [(0, 1, 2), (1, 2, 0), (0, 1)]
        link_lists = [list(zip(p, p[1:])) for p in paths]
        inc_a, cap_a, order_a = build_incidence(link_lists, capacities)
        inc_b, cap_b, order_b = build_incidence_from_paths(paths, capacities)
        dense_a = {
            (order_a[r], c): v
            for (r, c), v in np.ndenumerate(inc_a.toarray())
        }
        dense_b = {
            (order_b[r], c): v
            for (r, c), v in np.ndenumerate(inc_b.toarray())
        }
        assert dense_a == dense_b
        assert dict(zip(order_a, cap_a)) == dict(zip(order_b, cap_b))

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            build_incidence_from_paths([(0, 1)], {(1, 0): GBPS})

    def test_active_mask_excludes_flows(self):
        capacities = {(0, 1): GBPS}
        paths = [(0, 1), (0, 1)]
        incidence, cap_vec, _ = build_incidence_from_paths(paths, capacities)
        rates = progressive_filling_rates(
            cap_vec, incidence, active=np.array([True, False])
        )
        assert rates[0] == pytest.approx(GBPS)
        assert rates[1] == 0.0


class TestPhaseSimEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_makespans_match(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(5, 10))
        topo = random_topology(rng, n, extra_edges=2 * n)
        capacities = {
            (s, d): count * 10 * GBPS for s, d, count in topo.edges()
        }
        flows_ref = random_flows(rng, topo, count=2 * n)
        flows_vec = [
            Flow(path=f.path, size_bits=f.size_bits) for f in flows_ref
        ]
        ref = simulate_phase_reference(capacities, flows_ref)
        vec = simulate_phase(capacities, flows_vec)
        # The reference pads every completion batch by the 1 ns quantum;
        # the vectorized runner only extends to genuinely merged
        # completions, so agreement is to quantum resolution.
        assert vec == pytest.approx(ref, rel=1e-4)

    def test_no_quantum_inflation(self):
        # Seed behavior padded the makespan by one quantum per batch;
        # the batched runner must return the exact fluid makespan.
        capacities = {(0, 1): 8e9}
        flows = [
            Flow(path=(0, 1), size_bits=2e9),
            Flow(path=(0, 1), size_bits=6e9),
        ]
        makespan = simulate_phase(capacities, flows, include_propagation=False)
        assert makespan == pytest.approx(1.0, rel=1e-12)

    def test_simultaneous_completions_single_batch(self):
        n = 6
        capacities = {}
        flows = []
        for i in range(n):
            for j in range(n):
                if i != j:
                    capacities[(i, j)] = GBPS
                    flows.append(Flow(path=(i, j), size_bits=1e9))
        makespan = simulate_phase(capacities, flows, include_propagation=False)
        assert makespan == pytest.approx(1.0, rel=1e-6)

    def test_deadlock_detection(self):
        # A flow crossing only a link whose capacity is consumed can't
        # happen in max-min filling, but zero-rate detection must hold
        # for genuinely unroutable inputs (guarded by capacity checks).
        with pytest.raises((RuntimeError, ValueError)):
            simulate_phase({(0, 1): 0.0}, [Flow(path=(0, 1), size_bits=1e9)])


class TestHopCountEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_pairs_matches_per_source_bfs(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(4, 20))
        topo = DirectConnectTopology(n, degree=n, enforce_degree=False)
        for _ in range(int(rng.integers(n, 4 * n))):
            src, dst = rng.integers(0, n, size=2)
            if src != dst:
                topo.add_link(int(src), int(dst))
        if topo.num_links() == 0:
            topo.add_link(0, min(1, n - 1)) if n > 1 else None
        hops = topo.all_pairs_hop_counts()
        for src in range(n):
            bfs = topo.shortest_path_lengths_from(src)
            for dst in range(n):
                if dst in bfs:
                    assert hops[src, dst] == bfs[dst]
                else:
                    assert np.isinf(hops[src, dst])

    def test_cache_invalidation_on_mutation(self):
        topo = DirectConnectTopology(6, degree=6)
        topo.add_ring(list(range(6)))
        assert topo.all_pairs_hop_counts()[0, 3] == 3
        assert topo.diameter() == 5
        topo.add_link(0, 3)
        assert topo.all_pairs_hop_counts()[0, 3] == 1
        topo.remove_link(0, 3)
        assert topo.all_pairs_hop_counts()[0, 3] == 3
        assert topo.diameter() == 5

    def test_scalar_queries_match_seed_loops(self):
        topo = DirectConnectTopology(8, degree=4)
        topo.add_ring(list(range(8)))
        topo.add_ring([(3 * i) % 8 for i in range(8)])
        dists = [topo.shortest_path_lengths_from(s) for s in range(8)]
        seed_diameter = max(max(d.values()) for d in dists)
        seed_total = sum(sum(d.values()) for d in dists)
        assert topo.diameter() == seed_diameter
        assert topo.average_path_length() == pytest.approx(
            seed_total / (8 * 7)
        )
        assert sorted(topo.path_length_distribution()) == sorted(
            h for d in dists for node, h in d.items() if h > 0
        )


class TestPathEnumerationEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_batched_paths_match_per_pair_bfs(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(5, 12))
        topo = random_topology(rng, n, extra_edges=2 * n)
        big_cap = 10_000
        for src in range(n):
            batched = topo.min_hop_paths_from(src, big_cap)
            for dst in range(n):
                if dst == src:
                    continue
                ref = topo._all_shortest_paths_bfs(src, dst, big_cap)
                new = batched.get(dst, [])
                assert sorted(map(tuple, ref)) == sorted(map(tuple, new))

    def test_post_mutation_path_refresh(self):
        topo = DirectConnectTopology(5, degree=5)
        topo.add_ring([0, 1, 2, 3, 4])
        assert topo.min_hop_paths_from(0)[2] == [[0, 1, 2]]
        topo.add_link(0, 2)
        assert topo.min_hop_paths_from(0)[2] == [[0, 2]]

    def test_capped_enumeration_returns_valid_min_hop_paths(self):
        topo = DirectConnectTopology(6, degree=6, enforce_degree=False)
        for mid in (1, 2, 3, 4):
            topo.add_link(0, mid)
            topo.add_link(mid, 5)
        paths = topo.all_shortest_paths(0, 5, cap=2)
        assert len(paths) == 2
        for path in paths:
            assert len(path) == 3
            assert path[0] == 0 and path[-1] == 5
            for a, b in zip(path, path[1:]):
                assert topo.has_link(a, b)


class TestDegreeCounters:
    @pytest.mark.parametrize("seed", range(3))
    def test_counters_match_counter_sums(self, seed):
        rng = np.random.default_rng(400 + seed)
        n = 10
        topo = DirectConnectTopology(n, degree=n, enforce_degree=False)
        added = []
        for _ in range(60):
            src, dst = rng.integers(0, n, size=2)
            if src == dst:
                continue
            topo.add_link(int(src), int(dst))
            added.append((int(src), int(dst)))
        rng.shuffle(added)
        for src, dst in added[: len(added) // 2]:
            topo.remove_link(src, dst)
        for node in range(n):
            assert topo.out_degree(node) == sum(topo._out[node].values())
            assert topo.in_degree(node) == sum(topo._in[node].values())

    def test_copy_preserves_counters(self):
        topo = DirectConnectTopology(4, degree=2)
        topo.add_ring([0, 1, 2, 3])
        clone = topo.copy()
        for node in range(4):
            assert clone.out_degree(node) == topo.out_degree(node)
            assert clone.in_degree(node) == topo.in_degree(node)
        # Clone must accept links up to its own budget independently.
        clone.add_link(0, 2)
        assert clone.out_degree(0) == 2
        assert topo.out_degree(0) == 1


class TestLpSplitNormalization:
    def test_zero_weight_fallback_picks_best_candidate(self):
        candidates = [[0, 1, 2], [0, 3, 2]]
        splits = _normalize_splits(candidates, [1e-12, 5e-11])
        assert splits == [([0, 3, 2], 1.0)]

    def test_normal_weights_renormalized(self):
        candidates = [[0, 1], [0, 2, 1]]
        splits = _normalize_splits(candidates, [0.6, 0.2])
        total = sum(w for _, w in splits)
        assert total == pytest.approx(1.0)
        assert splits[0] == ([0, 1], pytest.approx(0.75))


class TestBenchRunner:
    def test_smoke_sizes_report_speedups(self):
        results = run_benchmarks(sizes=SMOKE_SIZES[:1], scenarios=("routing",))
        entry = results["routing"]["n=16"]
        assert entry["hop_counts_match"]
        assert entry["reference_s"] > 0
        assert entry["vectorized_s"] > 0
