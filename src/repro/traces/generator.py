"""Synthetic production traces matching the paper's section 2.2 statistics.

The paper motivates TopoOpt with measurements from Meta's clusters:

* Figure 2a: most jobs use 32-700 workers, varying by model family;
* Figure 2b: most jobs run > 10 hours; the top 10% exceed 96 hours;
* Figure 4: per-job traffic heatmaps show ring-AllReduce diagonals plus
  model-dependent MP rows/columns, identical across iterations.

We cannot ship Meta's traces, so this generator draws jobs from
distributions parameterized to reproduce those statements: log-normal
worker counts clipped to [8, 700] with family-specific medians, and
log-normal durations calibrated so the median exceeds 10 h and the 90th
percentile exceeds 96 h.  Heatmaps come from real strategies run through
the traffic extractor, so their structure is genuine, not painted.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.parallel.strategy import hybrid_strategy
from repro.parallel.traffic import extract_traffic

#: Model families of Figure 2 with (median workers, sigma, median hours).
WORKLOAD_MIX: Dict[str, Tuple[float, float, float]] = {
    "Recommendation": (128.0, 0.9, 24.0),
    "Natural Language Proc.": (96.0, 0.8, 30.0),
    "Image Recognition": (48.0, 0.7, 16.0),
    "Object Tracking": (64.0, 0.9, 20.0),
}

_MAX_WORKERS = 700
_MIN_WORKERS = 8
#: Duration sigma calibrated so P90 > 96 h when the median is ~20 h.
_DURATION_SIGMA = 1.25


@dataclass(frozen=True)
class JobRecord:
    """One logged training job (what the paper's instrumentation records)."""

    job_id: int
    family: str
    num_workers: int
    duration_hours: float
    total_bytes_transferred: float


class ProductionTraceGenerator:
    """Draws synthetic job populations with the paper's statistics."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def sample_job(self, job_id: int, family: Optional[str] = None) -> JobRecord:
        if family is None:
            family = self.rng.choice(sorted(WORKLOAD_MIX))
        median_workers, sigma, median_hours = WORKLOAD_MIX[family]
        workers = int(
            round(
                math.exp(
                    self.rng.gauss(math.log(median_workers), sigma)
                )
            )
        )
        workers = max(_MIN_WORKERS, min(_MAX_WORKERS, workers))
        duration = math.exp(
            self.rng.gauss(math.log(median_hours), _DURATION_SIGMA)
        )
        # Transferred volume scales with workers x duration (AllReduce
        # every iteration for the whole run).
        bytes_transferred = workers * duration * 3600 * 1e9 * (
            0.5 + self.rng.random()
        )
        return JobRecord(
            job_id=job_id,
            family=family,
            num_workers=workers,
            duration_hours=duration,
            total_bytes_transferred=bytes_transferred,
        )

    def sample_population(
        self, count: int, family: Optional[str] = None
    ) -> List[JobRecord]:
        if count < 1:
            raise ValueError("need at least one job")
        return [self.sample_job(i, family) for i in range(count)]

    # ------------------------------------------------------------------
    def production_heatmap(
        self, num_servers: int, num_mp_layers: int, seed: Optional[int] = None
    ) -> np.ndarray:
        """A Figure 4-style heatmap: ring diagonal + MP rows/columns.

        Built from a real hybrid strategy over a synthetic model with
        ``num_mp_layers`` embedding layers placed on random owners, so
        the diagonal (ring-AllReduce) and the light rows/columns (MP
        broadcast/incast) arise from the actual traffic extractor.
        """
        from repro.models.dlrm import build_dlrm

        rng = random.Random(self.rng.random() if seed is None else seed)
        model = build_dlrm(
            num_embedding_tables=max(num_mp_layers, 1),
            embedding_rows=100_000,
            embedding_dim=128,
            num_dense_layers=4,
            dense_layer_size=1024,
            num_feature_layers=4,
            feature_layer_size=1024,
        )
        owners = {
            layer.name: rng.randrange(num_servers)
            for layer in model.embedding_layers
        }
        strategy = hybrid_strategy(model, num_servers, embedding_owners=owners)
        traffic = extract_traffic(model, strategy, batch_per_gpu=64)
        return traffic.heatmap()

    def network_overhead_curve(
        self,
        allreduce_gb: float,
        mp_gb_per_server_pair: float,
        compute_s: float,
        gpu_counts: List[int],
        gpus_per_server: int = 8,
        server_bandwidth_gbps: float = 100.0,
    ) -> List[Tuple[int, float]]:
        """Figure 3's overhead-vs-scale curve from first principles.

        Network overhead = comm / (comm + compute).  AllReduce time per
        iteration is roughly scale-invariant (2(k-1)/k S / B), but MP
        traffic grows with worker count while per-server compute stays
        fixed (weak scaling), so the communication share rises with
        GPU count -- the paper's up-to-60% observation.
        """
        results = []
        for gpus in gpu_counts:
            servers = max(gpus // gpus_per_server, 1)
            bandwidth_bps = server_bandwidth_gbps * 1e9
            allreduce_s = (
                2.0 * (servers - 1) / max(servers, 1)
                * allreduce_gb * 8e9 / bandwidth_bps
                if servers > 1
                else 0.0
            )
            mp_s = (
                (servers - 1) * mp_gb_per_server_pair * 8e9 / bandwidth_bps
            )
            comm = allreduce_s + mp_s
            overhead = comm / (comm + compute_s)
            results.append((gpus, overhead))
        return results
