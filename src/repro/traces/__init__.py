"""Synthetic production-trace generation (substitute for Meta's traces)."""

from repro.traces.generator import (
    JobRecord,
    ProductionTraceGenerator,
    WORKLOAD_MIX,
)

__all__ = ["JobRecord", "ProductionTraceGenerator", "WORKLOAD_MIX"]
