"""NCCL integration model: topology awareness and multi-ring AllReduce.

Section 6 of the paper modifies NCCL in two ways:

1. **Topology awareness** -- stock NCCL assumes every interface can reach
   every other; TopoOpt's NCCL respects the computed routing (certain
   server pairs are only reachable through specific ports).
2. **TotientPerms load balancing** -- parameter synchronization is split
   across multiple ring-AllReduce permutations, one communication
   channel per selected stride.

This module models that communicator: it validates that the selected
ring channels exist in the physical topology, splits a payload across
channels, and computes the resulting per-channel completion time on the
testbed's links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.totient import ring_permutation
from repro.network.topology import DirectConnectTopology
from repro.parallel.collectives import allreduce_edge_bytes


@dataclass(frozen=True)
class NcclRingChannel:
    """One NCCL communication channel bound to a ring permutation."""

    stride: int
    order: Tuple[int, ...]

    @property
    def edges(self) -> List[Tuple[int, int]]:
        k = len(self.order)
        return [
            (self.order[i], self.order[(i + 1) % k]) for i in range(k)
        ]


class NcclCommunicator:
    """Multi-ring AllReduce over an explicit physical topology."""

    def __init__(
        self,
        topology: DirectConnectTopology,
        group: Sequence[int],
        strides: Sequence[int],
    ):
        if len(group) < 2:
            raise ValueError("an AllReduce group needs at least two ranks")
        if not strides:
            raise ValueError("need at least one ring stride")
        self.topology = topology
        self.group = tuple(group)
        self.channels = [
            NcclRingChannel(
                stride=stride,
                order=tuple(ring_permutation(group, stride)),
            )
            for stride in strides
        ]
        self._validate_channels()

    def _validate_channels(self) -> None:
        """Topology awareness: every ring edge must be a physical link."""
        for channel in self.channels:
            for src, dst in channel.edges:
                if not self.topology.has_link(src, dst):
                    raise ValueError(
                        f"ring channel +{channel.stride} needs link "
                        f"{src}->{dst} which is not in the topology; "
                        "stock NCCL would hang here"
                    )

    # ------------------------------------------------------------------
    def channel_payloads(self, total_bytes: float) -> Dict[int, float]:
        """Even split of the payload across channels (stride -> bytes)."""
        share = total_bytes / len(self.channels)
        return {channel.stride: share for channel in self.channels}

    def allreduce_time_s(
        self, total_bytes: float, link_bandwidth_bps: float
    ) -> float:
        """Completion time of a load-balanced multi-ring AllReduce.

        Each channel moves its share around its own ring concurrently on
        disjoint links (each ring permutation owns one interface), so
        the collective finishes when the slowest channel does -- with an
        even split, after ``2 (k-1)/k * S/R / B``.
        """
        k = len(self.group)
        worst = 0.0
        for channel, payload in zip(
            self.channels, self.channel_payloads(total_bytes).values()
        ):
            per_edge = allreduce_edge_bytes(payload, k, num_rings=1)
            worst = max(worst, 8.0 * per_edge / link_bandwidth_bps)
        return worst

    def speedup_over_single_ring(self) -> float:
        """Multi-ring load balancing speedup (equals the channel count)."""
        return float(len(self.channels))
