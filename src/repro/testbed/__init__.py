"""Emulation of the paper's 12-node prototype (section 6)."""

from repro.testbed.prototype import (
    TestbedConfig,
    TestbedEmulator,
    TESTBED,
)
from repro.testbed.nccl import NcclCommunicator, NcclRingChannel
from repro.testbed.accuracy import TimeToAccuracyModel

__all__ = [
    "TestbedConfig",
    "TestbedEmulator",
    "TESTBED",
    "NcclCommunicator",
    "NcclRingChannel",
    "TimeToAccuracyModel",
]
