"""Time-to-accuracy model for the Figure 20 reproduction.

Figure 20 trains VGG19 on ImageNet to 90% top-5 accuracy on the three
testbed fabrics.  The fabrics differ only in iteration *throughput*
(TopoOpt keeps the statistical trajectory intact -- it runs the same
SGD), so accuracy-vs-time curves are the same accuracy-vs-epoch curve
stretched by each fabric's epoch time.  We model top-5 accuracy with
the standard saturating-exponential learning curve

    acc(e) = a_max * (1 - exp(-e / tau))

calibrated to VGG-on-ImageNet's published behaviour (~90% top-5 around
epoch 50 of 74, a_max ~ 92%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class TimeToAccuracyModel:
    """Accuracy trajectory generator for a fixed samples/second rate."""

    samples_per_second: float
    dataset_size: int = 1_281_167  # ImageNet-1k train split
    max_accuracy: float = 0.92
    tau_epochs: float = 20.0

    def __post_init__(self):
        if self.samples_per_second <= 0:
            raise ValueError("throughput must be positive")
        if not 0 < self.max_accuracy <= 1:
            raise ValueError("max accuracy must be in (0, 1]")

    @property
    def epoch_seconds(self) -> float:
        return self.dataset_size / self.samples_per_second

    def accuracy_at_epoch(self, epoch: float) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.max_accuracy * (1.0 - math.exp(-epoch / self.tau_epochs))

    def accuracy_at_time(self, seconds: float) -> float:
        return self.accuracy_at_epoch(seconds / self.epoch_seconds)

    def time_to_accuracy_s(self, target: float) -> float:
        """Seconds of training until top-5 accuracy reaches ``target``."""
        if not 0 < target < self.max_accuracy:
            raise ValueError(
                f"target {target} unreachable (max {self.max_accuracy})"
            )
        epochs = -self.tau_epochs * math.log(1.0 - target / self.max_accuracy)
        return epochs * self.epoch_seconds

    def curve(
        self, hours: float, points: int = 25
    ) -> List[Tuple[float, float]]:
        """(hours, accuracy) samples for plotting Figure 20's lines."""
        if points < 2:
            raise ValueError("need at least two points")
        step = hours / (points - 1)
        return [
            (i * step, self.accuracy_at_time(i * step * 3600.0))
            for i in range(points)
        ]
