"""The 12-node TopoOpt prototype, emulated (section 6).

The paper's testbed: 12 ASUS servers, one A100 each, one HPE 100 Gbps
NIC broken out into 4x25 Gbps interfaces (d=4, B=25 Gbps), wired through
a Telescent patch panel, with RoCEv2 + NPAR host forwarding.  Baselines:
the same servers behind a 100 Gbps switch ("Switch 100Gbps" ~ Ideal
Switch) and behind a 25 Gbps switch ("Switch 25Gbps").

The emulator builds each fabric, runs the co-optimized (or hybrid
default) strategy through the fluid simulator, applies the RDMA
forwarding penalty to multi-hop MP traffic, and reports training
throughput in samples/second (Figure 19) and all-to-all sweeps
(Figure 21).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.models.base import DNNModel
from repro.models.compute import GPUSpec, A100, compute_time_seconds
from repro.models.configs import TESTBED_CONFIGS
from repro.network.fattree import IdealSwitchFabric
from repro.network.topoopt import TopoOptFabric
from repro.core.topology_finder import topology_finder
from repro.parallel.strategy import auto_strategy
from repro.parallel.traffic import TrafficSummary, extract_traffic
from repro.sim.network_sim import IterationBreakdown, simulate_iteration
from repro.sim.rdma import RdmaForwardingModel

GBPS = 1e9


@dataclass(frozen=True)
class TestbedConfig:
    """Physical parameters of the prototype."""

    num_servers: int = 12
    degree: int = 4
    link_gbps: float = 25.0
    gpus_per_server: int = 1
    kernel_forwarding_penalty: float = 0.05

    @property
    def link_bandwidth_bps(self) -> float:
        return self.link_gbps * GBPS


TESTBED = TestbedConfig()


class TestbedEmulator:
    """Runs testbed workloads on the three section 6 fabrics."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, config: TestbedConfig = TESTBED, gpu: GPUSpec = A100):
        self.config = config
        self.gpu = gpu
        self.rdma = RdmaForwardingModel(
            config.degree, config.kernel_forwarding_penalty
        )

    # ------------------------------------------------------------------
    def _strategy(self, model: DNNModel, batch_per_gpu: Optional[int] = None):
        return auto_strategy(
            model,
            self.config.num_servers,
            batch_per_gpu,
            self.config.gpus_per_server,
        )

    def _traffic(self, model: DNNModel, batch_per_gpu: Optional[int]):
        strategy = self._strategy(model, batch_per_gpu)
        return extract_traffic(
            model,
            strategy,
            batch_per_gpu or model.default_batch_per_gpu,
            self.config.gpus_per_server,
        )

    def _compute_s(self, model: DNNModel, batch_per_gpu: Optional[int]):
        return compute_time_seconds(
            model,
            batch_per_gpu or model.default_batch_per_gpu,
            self.config.gpus_per_server,
            self.gpu,
        )

    def _topoopt_fabric(self, traffic: TrafficSummary) -> TopoOptFabric:
        result = topology_finder(
            self.config.num_servers,
            self.config.degree,
            traffic.allreduce_groups,
            traffic.mp_matrix,
        )
        return TopoOptFabric(result, self.config.link_bandwidth_bps)

    def _switch_fabric(self, gbps: float) -> IdealSwitchFabric:
        fabric = IdealSwitchFabric(
            self.config.num_servers, 1, gbps * GBPS
        )
        fabric.name = f"Switch {int(gbps)}Gbps"
        return fabric

    # ------------------------------------------------------------------
    def iteration(
        self,
        model: DNNModel,
        fabric_name: str,
        batch_per_gpu: Optional[int] = None,
    ) -> IterationBreakdown:
        """Simulate one iteration on one of the three testbed fabrics.

        ``fabric_name``: "TopoOpt 4x25Gbps", "Switch 100Gbps", or
        "Switch 25Gbps".
        """
        traffic = self._traffic(model, batch_per_gpu)
        compute_s = self._compute_s(model, batch_per_gpu)
        if fabric_name == "TopoOpt 4x25Gbps":
            fabric = self._topoopt_fabric(traffic)
            breakdown = simulate_iteration(fabric, traffic, compute_s)
            return self._apply_rdma_penalty(breakdown, fabric, traffic)
        if fabric_name == "Switch 100Gbps":
            fabric = self._switch_fabric(100.0)
        elif fabric_name == "Switch 25Gbps":
            fabric = self._switch_fabric(25.0)
        else:
            raise ValueError(
                f"unknown testbed fabric {fabric_name!r}; use "
                "'TopoOpt 4x25Gbps', 'Switch 100Gbps', or 'Switch 25Gbps'"
            )
        return simulate_iteration(fabric, traffic, compute_s)

    def _apply_rdma_penalty(
        self,
        breakdown: IterationBreakdown,
        fabric: TopoOptFabric,
        traffic: TrafficSummary,
    ) -> IterationBreakdown:
        """Stretch the MP phase by the kernel-forwarding overhead.

        Multi-hop logical RDMA connections run at a reduced rate on the
        relay hops (Appendix I); the slowdown applied is the demand-
        weighted average of the per-path penalty factors.
        """
        matrix = traffic.mp_matrix
        n = traffic.n
        weighted = 0.0
        total = 0.0
        for src in range(n):
            for dst in range(n):
                byte_count = float(matrix[src, dst])
                if src == dst or byte_count <= 0:
                    continue
                paths = fabric.paths(src, dst, "mp")
                hops = len(paths[0]) - 1 if paths else 1
                rate_fraction = (
                    self.rdma.effective_rate_bps(hops, 1.0) if hops >= 1 else 1.0
                )
                weighted += byte_count / max(rate_fraction, 1e-9)
                total += byte_count
        slowdown = (weighted / total) if total > 0 else 1.0
        return IterationBreakdown(
            compute_s=breakdown.compute_s,
            mp_s=breakdown.mp_s * slowdown,
            allreduce_s=breakdown.allreduce_s,
            link_bytes=breakdown.link_bytes,
        )

    # ------------------------------------------------------------------
    def throughput_samples_per_s(
        self,
        model_name: str,
        fabric_name: str,
        batch_per_gpu: Optional[int] = None,
    ) -> float:
        """Figure 19's samples/second for one (model, fabric) pair."""
        model = TESTBED_CONFIGS[model_name].build()
        batch = batch_per_gpu or model.default_batch_per_gpu
        breakdown = self.iteration(model, fabric_name, batch)
        samples = batch * self.config.gpus_per_server * self.config.num_servers
        return samples / breakdown.total_s

    def throughput_table(
        self, model_names: List[str]
    ) -> Dict[str, Dict[str, float]]:
        """Figure 19: model -> fabric -> samples/second."""
        fabrics = ["TopoOpt 4x25Gbps", "Switch 100Gbps", "Switch 25Gbps"]
        return {
            name: {
                fabric: self.throughput_samples_per_s(name, fabric)
                for fabric in fabrics
            }
            for name in model_names
        }
