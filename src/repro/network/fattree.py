"""Switch-based fabrics: Ideal Switch, Fat-tree, oversubscribed Fat-tree.

The paper's baselines (section 5.1):

* **Ideal Switch** -- a single electrical switch scaling to any number of
  servers, each attached with ``d x B`` bandwidth.  No network can beat
  it; a full-bisection Fat-tree approximates it, so both are modelled as
  a star through an infinitely fast hub with per-server up/down capacity.
* **Fat-tree** -- a full-bisection Fat-tree *cost-equivalent* to TopoOpt:
  one NIC per server at bandwidth ``d x B'`` with ``B' < B`` chosen so
  the interconnect cost matches (section 5.2).
* **Oversub. Fat-tree** -- a 2:1 oversubscribed Fat-tree: full ``d x B``
  at the server, but only half the ToR uplink capacity, so cross-rack
  traffic contends.

All three expose the fabric interface the flow simulator consumes:
``num_servers``, ``capacities()`` (directed link -> bps), and
``paths(src, dst)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

Link = Tuple[int, int]


class SwitchFabricBase:
    """Common star/tree plumbing for switch-based fabrics."""

    name = "switch"

    def __init__(self, num_servers: int):
        if num_servers < 1:
            raise ValueError("need at least one server")
        self.num_servers = num_servers

    # Interface ---------------------------------------------------------
    def capacities(self) -> Dict[Link, float]:
        raise NotImplementedError

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        raise NotImplementedError

    def bulk_paths(self, kind: str = "mp"):
        """Yield ``(src, dst, paths)`` over the whole ordered pair space.

        The routing-matrix assembly in :mod:`repro.perf.costmodel`
        consumes this instead of one :meth:`paths` call per pair;
        subclasses with closed-form paths override it to skip the
        per-call range checks.
        """
        for src in range(self.num_servers):
            for dst in range(self.num_servers):
                if src != dst:
                    yield src, dst, self.paths(src, dst, kind)

    def _check(self, server: int) -> None:
        if not 0 <= server < self.num_servers:
            raise ValueError(
                f"server {server} out of range [0, {self.num_servers})"
            )


@dataclass
class IdealSwitchFabric(SwitchFabricBase):
    """One giant switch; per-server access bandwidth ``d * B`` (section 5.1).

    The hub is node id ``num_servers``.  Hub-internal capacity is
    unbounded, so the only constraints are the per-server up and down
    links -- exactly the Ideal Switch semantics.
    """

    def __init__(self, num_servers: int, degree: int, link_bandwidth_bps: float):
        super().__init__(num_servers)
        if degree < 1 or link_bandwidth_bps <= 0:
            raise ValueError("degree and bandwidth must be positive")
        self.degree = degree
        self.link_bandwidth_bps = link_bandwidth_bps
        self.name = "IdealSwitch"

    @property
    def hub(self) -> int:
        return self.num_servers

    @property
    def server_bandwidth_bps(self) -> float:
        return self.degree * self.link_bandwidth_bps

    def capacities(self) -> Dict[Link, float]:
        caps: Dict[Link, float] = {}
        for server in range(self.num_servers):
            caps[(server, self.hub)] = self.server_bandwidth_bps
            caps[(self.hub, server)] = self.server_bandwidth_bps
        return caps

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return [[src]]
        return [[src, self.hub, dst]]

    def bulk_paths(self, kind: str = "mp"):
        hub = self.hub
        for src in range(self.num_servers):
            for dst in range(self.num_servers):
                if src != dst:
                    yield src, dst, [[src, hub, dst]]


class FatTreeFabric(IdealSwitchFabric):
    """Cost-equivalent full-bisection Fat-tree (one NIC at ``d * B'``).

    Structurally identical to the Ideal Switch star -- full bisection
    means the core never bottlenecks before the access links -- but the
    access bandwidth uses the *cost-equivalent* ``B'`` (about one third
    of TopoOpt's raw ``B`` under the paper's cost model; see
    :func:`repro.network.cost.cost_equivalent_fattree_bandwidth`).
    """

    def __init__(
        self, num_servers: int, degree: int, equivalent_bandwidth_bps: float
    ):
        super().__init__(num_servers, degree, equivalent_bandwidth_bps)
        self.name = "FatTree"


class LeafSpineFabric(SwitchFabricBase):
    """Two-tier leaf-spine Fat-tree with hash-based ECMP.

    Unlike the star abstraction, this fabric models individual spine
    links: each leaf has one uplink per spine, and a cross-rack flow is
    pinned to one spine by a deterministic hash of its (src, dst) pair
    -- the ECMP behaviour real Fat-trees exhibit.  Hash collisions
    concentrate unlucky flows on one spine link, which is exactly the
    congestion the section 7 "TotientPerms in Fat-trees" conjecture says
    multi-permutation AllReduce can dilute.

    Node ids: servers 0..n-1, leaf of rack r is n+r, spine s is
    n+racks+s.
    """

    def __init__(
        self,
        num_servers: int,
        degree: int,
        link_bandwidth_bps: float,
        servers_per_rack: int = 4,
        num_spines: int = 4,
    ):
        super().__init__(num_servers)
        if servers_per_rack < 1 or num_spines < 1:
            raise ValueError("racks and spines must be non-empty")
        self.degree = degree
        self.link_bandwidth_bps = link_bandwidth_bps
        self.servers_per_rack = servers_per_rack
        self.num_spines = num_spines
        self.num_racks = (
            num_servers + servers_per_rack - 1
        ) // servers_per_rack
        self.name = "LeafSpine"

    @property
    def server_bandwidth_bps(self) -> float:
        return self.degree * self.link_bandwidth_bps

    def leaf_of(self, server: int) -> int:
        return self.num_servers + server // self.servers_per_rack

    def spine_node(self, spine: int) -> int:
        return self.num_servers + self.num_racks + spine

    def _uplink_bandwidth(self, rack: int) -> float:
        """Full bisection: rack bandwidth split evenly over the spines."""
        start = rack * self.servers_per_rack
        population = min(
            self.servers_per_rack, self.num_servers - start
        )
        return population * self.server_bandwidth_bps / self.num_spines

    def capacities(self) -> Dict[Link, float]:
        caps: Dict[Link, float] = {}
        for server in range(self.num_servers):
            leaf = self.leaf_of(server)
            caps[(server, leaf)] = self.server_bandwidth_bps
            caps[(leaf, server)] = self.server_bandwidth_bps
        for rack in range(self.num_racks):
            leaf = self.num_servers + rack
            uplink = self._uplink_bandwidth(rack)
            for spine in range(self.num_spines):
                caps[(leaf, self.spine_node(spine))] = uplink
                caps[(self.spine_node(spine), leaf)] = uplink
        return caps

    def _ecmp_spine(self, src: int, dst: int) -> int:
        # Deterministic per-flow hash, as ECMP pins five-tuples.
        return (src * 2654435761 + dst * 40503) % self.num_spines

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return [[src]]
        leaf_src = self.leaf_of(src)
        leaf_dst = self.leaf_of(dst)
        if leaf_src == leaf_dst:
            return [[src, leaf_src, dst]]
        spine = self.spine_node(self._ecmp_spine(src, dst))
        return [[src, leaf_src, spine, leaf_dst, dst]]


class OversubscribedFatTreeFabric(SwitchFabricBase):
    """2:1 oversubscribed Fat-tree: half the ToR uplinks are omitted.

    Node ids: servers 0..n-1, ToR switches n..n+racks-1, core node last.
    Server access links run at ``d x B``; each ToR's uplink to the core
    carries only half of its servers' aggregate bandwidth.
    """

    def __init__(
        self,
        num_servers: int,
        degree: int,
        link_bandwidth_bps: float,
        servers_per_rack: int = 16,
    ):
        super().__init__(num_servers)
        if servers_per_rack < 1:
            raise ValueError("servers_per_rack must be positive")
        self.degree = degree
        self.link_bandwidth_bps = link_bandwidth_bps
        self.servers_per_rack = servers_per_rack
        self.num_racks = (num_servers + servers_per_rack - 1) // servers_per_rack
        self.name = "OversubFatTree"

    @property
    def server_bandwidth_bps(self) -> float:
        return self.degree * self.link_bandwidth_bps

    def tor_of(self, server: int) -> int:
        return self.num_servers + server // self.servers_per_rack

    @property
    def core(self) -> int:
        return self.num_servers + self.num_racks

    def _rack_population(self, rack: int) -> int:
        start = rack * self.servers_per_rack
        return min(self.servers_per_rack, self.num_servers - start)

    def capacities(self) -> Dict[Link, float]:
        caps: Dict[Link, float] = {}
        for server in range(self.num_servers):
            tor = self.tor_of(server)
            caps[(server, tor)] = self.server_bandwidth_bps
            caps[(tor, server)] = self.server_bandwidth_bps
        for rack in range(self.num_racks):
            tor = self.num_servers + rack
            uplink = self._rack_population(rack) * self.server_bandwidth_bps / 2.0
            caps[(tor, self.core)] = uplink
            caps[(self.core, tor)] = uplink
        return caps

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return [[src]]
        tor_src = self.tor_of(src)
        tor_dst = self.tor_of(dst)
        if tor_src == tor_dst:
            return [[src, tor_src, dst]]
        return [[src, tor_src, self.core, tor_dst, dst]]
