"""Cluster sharding and dynamic job arrivals (Appendix C).

A TopoOpt cluster serves multiple jobs by configuring the optical layer
so each job's servers form a physically disjoint partition (Figure 26).
Starting a job on a patch-panel fabric would normally wait minutes for
the robot; the look-ahead design (1x2 switches + two patch-panel
planes) hides that: while jobs train on the active plane, the next
job's topology is pre-provisioned on the look-ahead plane, and admission
only pays a millisecond 1x2 flip.

:class:`ShardManager` implements that lifecycle: server allocation,
per-job topology provisioning, look-ahead pre-provisioning for a known
arrival sequence, and release on job completion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.topology_finder import TopologyFinderResult, topology_finder
from repro.network.optical import LookAheadSwitch
from repro.network.topoopt import TopoOptFabric
from repro.parallel.traffic import TrafficSummary


class ShardingError(RuntimeError):
    """Raised when a job cannot be admitted (no capacity)."""


@dataclass
class Shard:
    """A job's dedicated partition."""

    job_id: int
    servers: Tuple[int, ...]
    topology_result: TopologyFinderResult
    fabric: object  # RemappedFabric in global server ids
    admitted_at_s: float


@dataclass
class ShardManager:
    """Allocates disjoint server shards and provisions their topologies.

    Parameters
    ----------
    num_servers, degree, link_bandwidth_bps:
        Cluster dimensions.
    lookahead:
        Model the Appendix C dual-plane design: admission latency is the
        1x2 flip when the next job was pre-provisioned, the full patch
        panel reconfiguration otherwise.
    """

    num_servers: int
    degree: int
    link_bandwidth_bps: float
    lookahead: bool = True
    _free: Set[int] = field(default_factory=set)
    _shards: Dict[int, Shard] = field(default_factory=dict)
    _job_counter: itertools.count = field(default_factory=itertools.count)
    _switch: Optional[LookAheadSwitch] = None
    _preprovisioned: Optional[Tuple[Tuple[int, ...], object]] = None
    clock_s: float = 0.0

    def __post_init__(self):
        self._free = set(range(self.num_servers))
        self._switch = LookAheadSwitch(
            num_interfaces=max(self.num_servers * self.degree, 2)
        )

    # ------------------------------------------------------------------
    @property
    def free_servers(self) -> int:
        return len(self._free)

    def active_jobs(self) -> List[int]:
        return sorted(self._shards)

    def shard_of(self, job_id: int) -> Shard:
        try:
            return self._shards[job_id]
        except KeyError:
            raise KeyError(f"no active job {job_id}")

    # ------------------------------------------------------------------
    def preprovision(self, traffic: TrafficSummary) -> float:
        """Wire the look-ahead plane for the *next* arrival (slow path).

        Returns the robot latency, paid off the critical path while the
        current jobs keep training.
        """
        if not self.lookahead:
            return 0.0
        servers = self._pick_servers(traffic.n)
        result = self._solve(traffic)
        latency = self._switch.provision_next(
            self._circuits_for(result, servers)
        )
        self._preprovisioned = (servers, result)
        return latency

    def admit(self, traffic: TrafficSummary) -> Tuple[Shard, float]:
        """Admit a job: returns its shard and the admission latency.

        If the job was pre-provisioned, admission is the 1x2 flip;
        otherwise the full patch-panel reconfiguration latency is paid.
        """
        job_id = next(self._job_counter)
        if (
            self.lookahead
            and self._preprovisioned is not None
            and len(self._preprovisioned[0]) == traffic.n
        ):
            servers, result = self._preprovisioned
            self._preprovisioned = None
            latency = self._switch.flip()
        else:
            servers = self._pick_servers(traffic.n)
            result = self._solve(traffic)
            plane = self._switch.planes[self._switch.active_plane]
            latency = plane.reconfiguration_latency_s
        self._free -= set(servers)
        fabric = TopoOptFabric(result, self.link_bandwidth_bps).relabel(
            list(servers)
        )
        shard = Shard(
            job_id=job_id,
            servers=servers,
            topology_result=result,
            fabric=fabric,
            admitted_at_s=self.clock_s + latency,
        )
        self._shards[job_id] = shard
        self.clock_s += latency
        return shard, latency

    def release(self, job_id: int) -> None:
        """Return a finished job's servers to the free pool."""
        shard = self.shard_of(job_id)
        self._free |= set(shard.servers)
        del self._shards[job_id]

    # ------------------------------------------------------------------
    def _pick_servers(self, count: int) -> Tuple[int, ...]:
        if count > len(self._free):
            raise ShardingError(
                f"job needs {count} servers but only {len(self._free)} "
                "are free"
            )
        if count < 1:
            raise ValueError("a job needs at least one server")
        return tuple(sorted(self._free)[:count])

    def _solve(self, traffic: TrafficSummary) -> TopologyFinderResult:
        return topology_finder(
            traffic.n,
            self.degree,
            traffic.allreduce_groups,
            traffic.mp_matrix,
        )

    def _circuits_for(
        self, result: TopologyFinderResult, servers: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """Translate topology links into patch-panel port circuits.

        Port numbering: server ``s``'s interface ``i`` occupies panel
        port ``s * degree + i``; each link consumes the next free tx
        interface at its source and rx interface at its destination.
        """
        tx_used = {s: 0 for s in servers}
        rx_used = {s: 0 for s in servers}
        circuits = []
        for src, dst, count in result.topology.edges():
            for _ in range(count):
                src_global = servers[src]
                dst_global = servers[dst]
                circuits.append(
                    (
                        src_global * self.degree + tx_used[src_global],
                        dst_global * self.degree + rx_used[dst_global],
                    )
                )
                tx_used[src_global] += 1
                rx_used[dst_global] += 1
        return circuits
