"""TopoOptFabric: the fabric adapter over a TopologyFinder result.

Exposes the direct-connect topology, coin-change AllReduce routes,
k-shortest MP routes, and the selected TotientPerms ring permutations to
the flow simulator and the cost model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # avoid a circular import; only needed for annotations
    from repro.core.topology_finder import TopologyFinderResult

Link = Tuple[int, int]


class TopoOptFabric:
    """Fabric interface over a TopologyFinder result.

    Serves AllReduce-classified traffic over coin-change routes and MP
    traffic over the k-shortest paths computed by TopologyFinder;
    AllReduce collectives are load-balanced over the group's selected
    ring permutations (the modified-NCCL behaviour of section 6).
    """

    def __init__(
        self, result: "TopologyFinderResult", link_bandwidth_bps: float
    ):
        if link_bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        self.result = result
        self.link_bandwidth_bps = link_bandwidth_bps
        self.num_servers = result.topology.n
        self.name = "TopoOpt"
        self._fallback_cache: Dict[Tuple[int, int], List[List[int]]] = {}

    def capacities(self) -> Dict[Link, float]:
        return {
            (src, dst): count * self.link_bandwidth_bps
            for src, dst, count in self.result.topology.edges()
        }

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        if src == dst:
            return [[src]]
        paths = self.result.routing.paths_for(src, dst, kind)
        if paths:
            return paths
        key = (src, dst)
        if key not in self._fallback_cache:
            path = self.result.topology.shortest_path(src, dst)
            self._fallback_cache[key] = [path] if path else []
        return self._fallback_cache[key]

    def bulk_paths(self, kind: str = "mp"):
        """Yield ``(src, dst, paths)`` over the whole ordered pair space.

        Bulk enumeration for the cost-model kernel's routing-matrix
        assembly; same per-pair results as :meth:`paths` (routing-table
        hit, then cached shortest-path fallback).
        """
        for src in range(self.num_servers):
            for dst in range(self.num_servers):
                if src != dst:
                    yield src, dst, self.paths(src, dst, kind)

    def ring_strides_for(self, members: Tuple[int, ...]) -> List[int]:
        """Selected TotientPerms strides for an AllReduce group."""
        for plan in self.result.group_plans:
            if plan.group.members == members and plan.rings:
                return plan.strides[: len(plan.rings)]
        return [1]

    def ring_edge_paths(
        self, members: Tuple[int, ...]
    ) -> List[Tuple[List[int], int]]:
        """Direct ring edges for a group: (edge path, num_rings) pairs."""
        for plan in self.result.group_plans:
            if plan.group.members == members and plan.rings:
                edges = []
                num_rings = len(plan.rings)
                for ring in plan.rings:
                    k = len(ring)
                    for i in range(k):
                        edges.append(
                            ([ring[i], ring[(i + 1) % k]], num_rings)
                        )
                return edges
        return []

    def relabel(self, server_map: List[int]) -> "RemappedFabric":
        """View this fabric in global server ids (for shared clusters)."""
        return RemappedFabric(self, server_map)


class RemappedFabric:
    """A fabric whose server ids are translated through ``server_map``.

    Used by the shared-cluster simulator: each job's TopoOpt shard is
    built in local ids 0..k-1, then viewed through the shard's global
    server ids.  Internal (non-server) nodes do not exist in TopoOpt
    fabrics, so the translation is a pure relabeling.
    """

    def __init__(self, fabric: TopoOptFabric, server_map: List[int]):
        if len(server_map) != fabric.num_servers:
            raise ValueError(
                f"server_map has {len(server_map)} entries for a fabric "
                f"of {fabric.num_servers} servers"
            )
        if len(set(server_map)) != len(server_map):
            raise ValueError("server_map must be injective")
        self.fabric = fabric
        self.server_map = list(server_map)
        self._inverse = {g: l for l, g in enumerate(server_map)}
        self.num_servers = max(server_map) + 1
        self.name = fabric.name
        self.link_bandwidth_bps = fabric.link_bandwidth_bps

    def capacities(self) -> Dict[Link, float]:
        return {
            (self.server_map[src], self.server_map[dst]): cap
            for (src, dst), cap in self.fabric.capacities().items()
        }

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        local = self.fabric.paths(self._inverse[src], self._inverse[dst], kind)
        return [[self.server_map[node] for node in path] for path in local]

    def ring_edge_paths(self, members: Tuple[int, ...]):
        local_members = tuple(self._inverse[m] for m in members)
        return [
            ([self.server_map[node] for node in path], rings)
            for path, rings in self.fabric.ring_edge_paths(local_members)
        ]

    def ring_strides_for(self, members: Tuple[int, ...]) -> List[int]:
        """Selected strides of the underlying group (ids translated)."""
        local_members = tuple(self._inverse[m] for m in members)
        return self.fabric.ring_strides_for(local_members)
