"""Network substrate: topologies, architectures, optical devices, and costs.

This subpackage provides every interconnect the paper evaluates:

* :mod:`repro.network.topology` -- the direct-connect multigraph abstraction
  used by TopoOpt itself.
* :mod:`repro.network.fattree` -- full-bisection Fat-tree, 2:1 oversubscribed
  Fat-tree, and the Ideal Switch abstraction.
* :mod:`repro.network.expander` -- Jellyfish-style random regular expander.
* :mod:`repro.network.sipml` -- the SiP-ML ring fabric (modified per
  Appendix F of the paper).
* :mod:`repro.network.optical` -- optical switching devices (patch panels,
  3D-MEMS OCS, 1x2 mechanical switches) and the look-ahead provisioning
  design from Appendix C.
* :mod:`repro.network.cost` -- the component cost model of Table 2 /
  Appendix G and per-architecture interconnect cost (Figure 10).
"""

from repro.network.topology import DirectConnectTopology, LinkCapacityMap
from repro.network.topoopt import RemappedFabric, TopoOptFabric
from repro.network.fattree import (
    FatTreeFabric,
    IdealSwitchFabric,
    LeafSpineFabric,
    OversubscribedFatTreeFabric,
)
from repro.network.expander import ExpanderFabric, random_regular_topology
from repro.network.optical import (
    OpticalCircuitSwitch,
    OpticalPatchPanel,
    OpticalTechnology,
    OPTICAL_TECHNOLOGIES,
    LookAheadSwitch,
)
from repro.network.cost import (
    ComponentCosts,
    COMPONENT_COSTS,
    architecture_cost,
    cost_equivalent_fattree_bandwidth,
)


def __getattr__(name):
    """Lazily import the fabrics that live on top of :mod:`repro.sim`
    or :mod:`repro.core`, which themselves build on this package
    (PEP 562 keeps the imports acyclic)."""
    if name == "SipMLFabric":
        from repro.network.sipml import SipMLFabric

        return SipMLFabric
    if name == "HierarchicalTopoOptFabric":
        from repro.network.hierarchical import HierarchicalTopoOptFabric

        return HierarchicalTopoOptFabric
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DirectConnectTopology",
    "LinkCapacityMap",
    "TopoOptFabric",
    "RemappedFabric",
    "FatTreeFabric",
    "IdealSwitchFabric",
    "LeafSpineFabric",
    "OversubscribedFatTreeFabric",
    "ExpanderFabric",
    "random_regular_topology",
    "SipMLFabric",
    "HierarchicalTopoOptFabric",
    "OpticalCircuitSwitch",
    "OpticalPatchPanel",
    "OpticalTechnology",
    "OPTICAL_TECHNOLOGIES",
    "LookAheadSwitch",
    "ComponentCosts",
    "COMPONENT_COSTS",
    "architecture_cost",
    "cost_equivalent_fattree_bandwidth",
]
