"""Expander fabric: Jellyfish/Xpander-style random regular direct-connect.

Each server has ``d`` NICs at bandwidth ``B`` wired into a random regular
graph (the paper's Expander baseline, after Jellyfish [127] and
Xpander [135]).  Traffic routes over k-shortest paths with host-based
forwarding.  The topology is oblivious to the DNN's traffic pattern,
which is why Figure 11 shows it performing worst: its links rarely line
up with the AllReduce rings.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.network.topology import DirectConnectTopology

Link = Tuple[int, int]


def random_regular_topology(
    n: int, degree: int, seed: int = 0, max_attempts: int = 200
) -> DirectConnectTopology:
    """Random d-regular direct-connect topology via pairing with retries.

    Builds an undirected random regular multigraph (each undirected edge
    realized as one link per direction), retrying until it is connected
    and simple enough (no self-loops; parallel edges allowed but
    discouraged by the pairing shuffle).
    """
    if n < 2:
        raise ValueError("need at least two servers")
    if degree < 1:
        raise ValueError("degree must be positive")
    if n * degree % 2 != 0:
        raise ValueError(
            f"n*degree must be even to build a regular graph, "
            f"got n={n}, d={degree}"
        )
    rng = random.Random(seed)
    for _ in range(max_attempts):
        stubs = [node for node in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
        if any(a == b for a, b in pairs):
            continue
        topo = DirectConnectTopology(n, degree)
        for a, b in pairs:
            # One undirected fiber gives one link each way, consuming one
            # tx+rx on each side -- within budget because each node
            # appears in exactly `degree` stubs.
            topo.add_bidirectional(a, b)
        if topo.is_strongly_connected():
            return topo
    raise RuntimeError(
        f"failed to build a connected random regular graph "
        f"(n={n}, d={degree}) in {max_attempts} attempts"
    )


class ExpanderFabric:
    """The Expander baseline: random regular graph + shortest-path routing."""

    def __init__(
        self,
        num_servers: int,
        degree: int,
        link_bandwidth_bps: float,
        seed: int = 0,
        path_count: int = 2,
    ):
        self.num_servers = num_servers
        self.degree = degree
        self.link_bandwidth_bps = link_bandwidth_bps
        self.topology = random_regular_topology(num_servers, degree, seed)
        self.path_count = path_count
        self.name = "Expander"
        self._path_cache: Dict[Tuple[int, int], List[List[int]]] = {}

    def capacities(self) -> Dict[Link, float]:
        return {
            (src, dst): count * self.link_bandwidth_bps
            for src, dst, count in self.topology.edges()
        }

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        if src == dst:
            return [[src]]
        key = (src, dst)
        if key not in self._path_cache:
            self._path_cache[key] = self.topology.k_shortest_paths(
                src, dst, self.path_count
            )
        return self._path_cache[key]
