"""Direct-connect topology abstraction for TopoOpt fabrics.

A TopoOpt cluster (paper section 3) is a set of ``n`` servers, each with
``d`` network interfaces, wired point-to-point through a layer of optical
devices.  The resulting interconnect is a *directed multigraph*: each
physical fiber provides one unidirectional link of bandwidth ``B`` from a
transmit interface to a receive interface, and a pair of servers may be
connected by several parallel links.

:class:`DirectConnectTopology` stores that multigraph with per-direction
link counts, enforces the degree budget, and provides the graph queries
the optimization core needs (shortest paths, diameter, connectivity).
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Edge = Tuple[int, int]


class DegreeExceededError(ValueError):
    """Raised when adding a link would exceed a server's interface budget."""


@dataclass
class LinkCapacityMap:
    """Per-link capacity table, in bits per second.

    Parallel links between the same (src, dst) pair are aggregated: the
    capacity of the pair is ``multiplicity * link_bandwidth_bps``.
    """

    link_bandwidth_bps: float
    multiplicity: Dict[Edge, int] = field(default_factory=dict)

    def capacity(self, src: int, dst: int) -> float:
        """Aggregate capacity from ``src`` to ``dst`` in bits per second."""
        return self.multiplicity.get((src, dst), 0) * self.link_bandwidth_bps

    def edges(self) -> Iterator[Edge]:
        return iter(self.multiplicity)


class DirectConnectTopology:
    """Directed multigraph over ``n`` servers with a per-server degree budget.

    Parameters
    ----------
    n:
        Number of servers.
    degree:
        Number of interfaces per server (``d`` in the paper).  Each interface
        supplies one transmit port and one receive port, so a server can
        source at most ``d`` links and sink at most ``d`` links.
    enforce_degree:
        When true (the default), :meth:`add_link` raises
        :class:`DegreeExceededError` if the degree budget would be violated.
        Infrastructure fabrics (Fat-tree cores, Ideal Switch hubs) disable
        the check for their internal nodes.
    """

    def __init__(self, n: int, degree: int, enforce_degree: bool = True):
        if n <= 0:
            raise ValueError(f"need at least one server, got n={n}")
        if degree <= 0:
            raise ValueError(f"degree must be positive, got d={degree}")
        self.n = n
        self.degree = degree
        self.enforce_degree = enforce_degree
        self._out: Dict[int, Counter] = {i: Counter() for i in range(n)}
        self._in: Dict[int, Counter] = {i: Counter() for i in range(n)}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_link(self, src: int, dst: int, count: int = 1) -> None:
        """Add ``count`` parallel unidirectional links from src to dst."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            raise ValueError(f"self-link at server {src} is not allowed")
        if count <= 0:
            raise ValueError(f"link count must be positive, got {count}")
        if self.enforce_degree:
            if self.out_degree(src) + count > self.degree:
                raise DegreeExceededError(
                    f"server {src} tx degree {self.out_degree(src)}+{count} "
                    f"exceeds budget {self.degree}"
                )
            if self.in_degree(dst) + count > self.degree:
                raise DegreeExceededError(
                    f"server {dst} rx degree {self.in_degree(dst)}+{count} "
                    f"exceeds budget {self.degree}"
                )
        self._out[src][dst] += count
        self._in[dst][src] += count

    def add_bidirectional(self, a: int, b: int, count: int = 1) -> None:
        """Add ``count`` links in each direction between a and b."""
        self.add_link(a, b, count)
        self.add_link(b, a, count)

    def add_ring(self, order: Sequence[int]) -> None:
        """Add a directed ring following ``order`` (a server permutation).

        Atomic: the ring either fits entirely within the degree budget or
        nothing is added (each member needs one free tx and one free rx).
        """
        k = len(order)
        if k < 2:
            raise ValueError("a ring needs at least two servers")
        if len(set(order)) != k:
            raise ValueError("ring order must visit distinct servers")
        if self.enforce_degree:
            for node in order:
                if self.free_tx(node) < 1 or self.free_rx(node) < 1:
                    raise DegreeExceededError(
                        f"server {node} has no free interface for the ring"
                    )
        for i in range(k):
            self.add_link(order[i], order[(i + 1) % k])

    def remove_link(self, src: int, dst: int, count: int = 1) -> None:
        have = self._out[src][dst]
        if have < count:
            raise ValueError(
                f"cannot remove {count} links {src}->{dst}: only {have} exist"
            )
        self._out[src][dst] -= count
        self._in[dst][src] -= count
        if self._out[src][dst] == 0:
            del self._out[src][dst]
            del self._in[dst][src]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def out_degree(self, node: int) -> int:
        return sum(self._out[node].values())

    def in_degree(self, node: int) -> int:
        return sum(self._in[node].values())

    def free_tx(self, node: int) -> int:
        return self.degree - self.out_degree(node)

    def free_rx(self, node: int) -> int:
        return self.degree - self.in_degree(node)

    def multiplicity(self, src: int, dst: int) -> int:
        """Number of parallel links from src to dst (0 if none)."""
        return self._out[src].get(dst, 0)

    def has_link(self, src: int, dst: int) -> bool:
        return dst in self._out[src]

    def neighbors_out(self, node: int) -> List[int]:
        return list(self._out[node])

    def neighbors_in(self, node: int) -> List[int]:
        return list(self._in[node])

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (src, dst, multiplicity) for every connected pair."""
        for src, nbrs in self._out.items():
            for dst, count in nbrs.items():
                yield src, dst, count

    def num_links(self) -> int:
        """Total number of unidirectional physical links."""
        return sum(count for _, _, count in self.edges())

    def copy(self) -> "DirectConnectTopology":
        clone = DirectConnectTopology(self.n, self.degree, self.enforce_degree)
        for src, dst, count in self.edges():
            clone._out[src][dst] = count
            clone._in[dst][src] = count
        return clone

    def capacity_map(self, link_bandwidth_bps: float) -> LinkCapacityMap:
        """Materialize per-link capacities for the flow simulator."""
        return LinkCapacityMap(
            link_bandwidth_bps=link_bandwidth_bps,
            multiplicity={(s, d): c for s, d, c in self.edges()},
        )

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------
    def shortest_path(self, src: int, dst: int) -> Optional[List[int]]:
        """Unweighted (hop-count) shortest path, or None if unreachable."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return [src]
        prev: Dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nbr in self._out[node]:
                if nbr in prev:
                    continue
                prev[nbr] = node
                if nbr == dst:
                    return self._backtrack(prev, src, dst)
                queue.append(nbr)
        return None

    def shortest_path_lengths_from(self, src: int) -> Dict[int, int]:
        """Hop counts from ``src`` to every reachable server."""
        dist = {src: 0}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nbr in self._out[node]:
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    queue.append(nbr)
        return dist

    def all_shortest_paths(
        self, src: int, dst: int, cap: int = 6
    ) -> List[List[int]]:
        """Up to ``cap`` distinct minimum-hop paths (ECMP path set).

        BFS layering from ``src`` followed by a bounded backtrack from
        ``dst`` through strictly-decreasing-distance predecessors.
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return [[src]]
        dist = self.shortest_path_lengths_from(src)
        if dst not in dist:
            return []
        paths: List[List[int]] = []
        stack: List[List[int]] = [[dst]]
        while stack and len(paths) < cap:
            partial = stack.pop()
            head = partial[-1]
            if head == src:
                paths.append(list(reversed(partial)))
                continue
            for pred in self._in[head]:
                if dist.get(pred, -1) == dist[head] - 1:
                    stack.append(partial + [pred])
        return paths

    def k_shortest_paths(self, src: int, dst: int, k: int) -> List[List[int]]:
        """Yen's algorithm for up to ``k`` loopless shortest paths."""
        first = self.shortest_path(src, dst)
        if first is None:
            return []
        paths = [first]
        candidates: List[Tuple[int, List[int]]] = []
        seen = {tuple(first)}
        while len(paths) < k:
            prev_path = paths[-1]
            for i in range(len(prev_path) - 1):
                spur_node = prev_path[i]
                root = prev_path[: i + 1]
                removed: List[Edge] = []
                for path in paths:
                    if len(path) > i and path[: i + 1] == root:
                        edge = (path[i], path[i + 1])
                        if self.multiplicity(*edge) > 0:
                            removed.append((edge, self.multiplicity(*edge)))
                            self._out[edge[0]].pop(edge[1])
                            self._in[edge[1]].pop(edge[0])
                banned = set(root[:-1])
                spur = self._shortest_path_avoiding(spur_node, dst, banned)
                for (edge, count) in removed:
                    self._out[edge[0]][edge[1]] = count
                    self._in[edge[1]][edge[0]] = count
                if spur is None:
                    continue
                candidate = root[:-1] + spur
                key = tuple(candidate)
                if key not in seen:
                    seen.add(key)
                    heapq.heappush(candidates, (len(candidate), candidate))
            if not candidates:
                break
            _, best = heapq.heappop(candidates)
            paths.append(best)
        return paths

    def _shortest_path_avoiding(
        self, src: int, dst: int, banned: Iterable[int]
    ) -> Optional[List[int]]:
        banned = set(banned)
        if src in banned:
            return None
        if src == dst:
            return [src]
        prev = {src: src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nbr in self._out[node]:
                if nbr in prev or nbr in banned:
                    continue
                prev[nbr] = node
                if nbr == dst:
                    return self._backtrack(prev, src, dst)
                queue.append(nbr)
        return None

    def is_strongly_connected(self) -> bool:
        if self.n == 1:
            return True
        if len(self.shortest_path_lengths_from(0)) < self.n:
            return False
        # Reverse reachability: BFS over incoming edges.
        dist = {0}
        queue = deque([0])
        while queue:
            node = queue.popleft()
            for nbr in self._in[node]:
                if nbr not in dist:
                    dist.add(nbr)
                    queue.append(nbr)
        return len(dist) == self.n

    def diameter(self) -> int:
        """Longest shortest-path hop count; raises if disconnected."""
        worst = 0
        for src in range(self.n):
            dist = self.shortest_path_lengths_from(src)
            if len(dist) < self.n:
                raise ValueError("topology is not strongly connected")
            worst = max(worst, max(dist.values()))
        return worst

    def average_path_length(self) -> float:
        """Mean hop count over all ordered server pairs."""
        total = 0
        pairs = 0
        for src in range(self.n):
            dist = self.shortest_path_lengths_from(src)
            if len(dist) < self.n:
                raise ValueError("topology is not strongly connected")
            total += sum(dist.values())
            pairs += self.n - 1
        return total / pairs if pairs else 0.0

    def path_length_distribution(self) -> List[int]:
        """Hop counts for every ordered pair of distinct servers."""
        lengths: List[int] = []
        for src in range(self.n):
            dist = self.shortest_path_lengths_from(src)
            lengths.extend(h for node, h in dist.items() if node != src)
        return lengths

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"server id {node} out of range [0, {self.n})")

    @staticmethod
    def _backtrack(prev: Dict[int, int], src: int, dst: int) -> List[int]:
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DirectConnectTopology(n={self.n}, d={self.degree}, "
            f"links={self.num_links()})"
        )
