"""Direct-connect topology abstraction for TopoOpt fabrics.

A TopoOpt cluster (paper section 3) is a set of ``n`` servers, each with
``d`` network interfaces, wired point-to-point through a layer of optical
devices.  The resulting interconnect is a *directed multigraph*: each
physical fiber provides one unidirectional link of bandwidth ``B`` from a
transmit interface to a receive interface, and a pair of servers may be
connected by several parallel links.

:class:`DirectConnectTopology` stores that multigraph with per-direction
link counts, enforces the degree budget, and provides the graph queries
the optimization core needs (shortest paths, diameter, connectivity).

Graph queries are backed by the vectorized kernel layer
(:mod:`repro.perf.graph`): a lazily-built CSR adjacency matrix and an
all-pairs hop-count matrix are cached on the instance and invalidated
by a version counter that every mutation bumps, so cluster-scale sweeps
(``diameter``, ``average_path_length``, routing construction) cost one
C-level BFS sweep instead of ``n`` (or ``n^2``) Python BFS runs.
In/out-degree counters are maintained incrementally -- ``add_link`` is
O(1) instead of re-summing a Counter.  The pure-Python per-source BFS
(:meth:`shortest_path_lengths_from`) is retained as the reference
implementation for equivalence tests.  Yen's ``k_shortest_paths`` runs
its spur searches on out-neighbor lists sliced from the cached CSR
adjacency, excluding root edges via a set instead of mutating the
graph; the seed mutate-and-restore version is retained as
:meth:`DirectConnectTopology._k_shortest_paths_reference`.
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.perf import graph as graph_kernels

Edge = Tuple[int, int]


class DegreeExceededError(ValueError):
    """Raised when adding a link would exceed a server's interface budget."""


@dataclass
class LinkCapacityMap:
    """Per-link capacity table, in bits per second.

    Parallel links between the same (src, dst) pair are aggregated: the
    capacity of the pair is ``multiplicity * link_bandwidth_bps``.
    """

    link_bandwidth_bps: float
    multiplicity: Dict[Edge, int] = field(default_factory=dict)

    def capacity(self, src: int, dst: int) -> float:
        """Aggregate capacity from ``src`` to ``dst`` in bits per second."""
        return self.multiplicity.get((src, dst), 0) * self.link_bandwidth_bps

    def edges(self) -> Iterator[Edge]:
        return iter(self.multiplicity)


class DirectConnectTopology:
    """Directed multigraph over ``n`` servers with a per-server degree budget.

    Parameters
    ----------
    n:
        Number of servers.
    degree:
        Number of interfaces per server (``d`` in the paper).  Each interface
        supplies one transmit port and one receive port, so a server can
        source at most ``d`` links and sink at most ``d`` links.
    enforce_degree:
        When true (the default), :meth:`add_link` raises
        :class:`DegreeExceededError` if the degree budget would be violated.
        Infrastructure fabrics (Fat-tree cores, Ideal Switch hubs) disable
        the check for their internal nodes.

    Mutations are O(1) (incremental degree counters plus a version
    bump); the version counter lazily invalidates the cached CSR
    adjacency and all-pairs hop-count matrices, so graph queries cost
    one C-level BFS sweep per mutation *epoch*, however many queries
    run in between.

    Example -- a 4-server bidirectional ring:

    >>> from repro.network.topology import DirectConnectTopology
    >>> topo = DirectConnectTopology(n=4, degree=2)
    >>> topo.add_ring([0, 1, 2, 3])
    >>> topo.add_ring([3, 2, 1, 0])
    >>> topo.diameter()
    2
    >>> topo.shortest_path(0, 2)
    [0, 1, 2]
    >>> topo.remove_link(1, 2)
    >>> topo.shortest_path(0, 2)  # cache invalidated by the mutation
    [0, 3, 2]
    """

    def __init__(self, n: int, degree: int, enforce_degree: bool = True):
        if n <= 0:
            raise ValueError(f"need at least one server, got n={n}")
        if degree <= 0:
            raise ValueError(f"degree must be positive, got d={degree}")
        self.n = n
        self.degree = degree
        self.enforce_degree = enforce_degree
        self._out: Dict[int, Counter] = {i: Counter() for i in range(n)}
        self._in: Dict[int, Counter] = {i: Counter() for i in range(n)}
        # Incrementally-maintained degree counters (O(1) queries).
        self._out_degree: List[int] = [0] * n
        self._in_degree: List[int] = [0] * n
        # Mutation stamp; lazily-built caches below are valid only when
        # their recorded version matches.
        self._version = 0
        self._adjacency_cache: Optional[Tuple[int, sparse.csr_matrix]] = None
        self._hops_cache: Optional[Tuple[int, np.ndarray]] = None
        self._hops_int_cache: Optional[Tuple[int, List[List[int]]]] = None
        self._pred_cache: Optional[Tuple[int, List[List[int]]]] = None
        self._succ_cache: Optional[Tuple[int, List[List[int]]]] = None

    def _bump_version(self) -> None:
        self._version += 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_link(self, src: int, dst: int, count: int = 1) -> None:
        """Add ``count`` parallel unidirectional links from src to dst.

        O(1): degree counters are maintained incrementally and cache
        invalidation is a version bump, not a rebuild.

        Raises
        ------
        DegreeExceededError
            If ``enforce_degree`` is set and either endpoint would
            exceed its interface budget.
        ValueError
            For self-links, out-of-range server ids, or ``count <= 0``.
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            raise ValueError(f"self-link at server {src} is not allowed")
        if count <= 0:
            raise ValueError(f"link count must be positive, got {count}")
        if self.enforce_degree:
            if self.out_degree(src) + count > self.degree:
                raise DegreeExceededError(
                    f"server {src} tx degree {self.out_degree(src)}+{count} "
                    f"exceeds budget {self.degree}"
                )
            if self.in_degree(dst) + count > self.degree:
                raise DegreeExceededError(
                    f"server {dst} rx degree {self.in_degree(dst)}+{count} "
                    f"exceeds budget {self.degree}"
                )
        self._out[src][dst] += count
        self._in[dst][src] += count
        self._out_degree[src] += count
        self._in_degree[dst] += count
        self._bump_version()

    def add_bidirectional(self, a: int, b: int, count: int = 1) -> None:
        """Add ``count`` links in each direction between a and b."""
        self.add_link(a, b, count)
        self.add_link(b, a, count)

    def add_ring(self, order: Sequence[int]) -> None:
        """Add a directed ring following ``order`` (a server permutation).

        Atomic: the ring either fits entirely within the degree budget or
        nothing is added (each member needs one free tx and one free rx).
        """
        k = len(order)
        if k < 2:
            raise ValueError("a ring needs at least two servers")
        if len(set(order)) != k:
            raise ValueError("ring order must visit distinct servers")
        if self.enforce_degree:
            for node in order:
                if self.free_tx(node) < 1 or self.free_rx(node) < 1:
                    raise DegreeExceededError(
                        f"server {node} has no free interface for the ring"
                    )
        for i in range(k):
            self.add_link(order[i], order[(i + 1) % k])

    def remove_link(self, src: int, dst: int, count: int = 1) -> None:
        """Remove ``count`` parallel links from src to dst (O(1))."""
        have = self._out[src][dst]
        if have < count:
            raise ValueError(
                f"cannot remove {count} links {src}->{dst}: only {have} exist"
            )
        self._out[src][dst] -= count
        self._in[dst][src] -= count
        self._out_degree[src] -= count
        self._in_degree[dst] -= count
        if self._out[src][dst] == 0:
            del self._out[src][dst]
            del self._in[dst][src]
        self._bump_version()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def out_degree(self, node: int) -> int:
        return self._out_degree[node]

    def in_degree(self, node: int) -> int:
        return self._in_degree[node]

    def free_tx(self, node: int) -> int:
        return self.degree - self.out_degree(node)

    def free_rx(self, node: int) -> int:
        return self.degree - self.in_degree(node)

    def multiplicity(self, src: int, dst: int) -> int:
        """Number of parallel links from src to dst (0 if none)."""
        return self._out[src].get(dst, 0)

    def has_link(self, src: int, dst: int) -> bool:
        return dst in self._out[src]

    def neighbors_out(self, node: int) -> List[int]:
        return list(self._out[node])

    def neighbors_in(self, node: int) -> List[int]:
        return list(self._in[node])

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (src, dst, multiplicity) for every connected pair."""
        for src, nbrs in self._out.items():
            for dst, count in nbrs.items():
                yield src, dst, count

    def num_links(self) -> int:
        """Total number of unidirectional physical links."""
        return sum(count for _, _, count in self.edges())

    def copy(self) -> "DirectConnectTopology":
        clone = DirectConnectTopology(self.n, self.degree, self.enforce_degree)
        for src, dst, count in self.edges():
            clone._out[src][dst] = count
            clone._in[dst][src] = count
            clone._out_degree[src] += count
            clone._in_degree[dst] += count
        return clone

    def capacity_map(self, link_bandwidth_bps: float) -> LinkCapacityMap:
        """Materialize per-link capacities for the flow simulator."""
        return LinkCapacityMap(
            link_bandwidth_bps=link_bandwidth_bps,
            multiplicity={(s, d): c for s, d, c in self.edges()},
        )

    # ------------------------------------------------------------------
    # Cached array views (kernel layer)
    # ------------------------------------------------------------------
    def adjacency(self) -> sparse.csr_matrix:
        """CSR adjacency matrix (entries are link multiplicities).

        Lazily built and cached; any mutation invalidates the cache via
        the version counter.
        """
        if (
            self._adjacency_cache is not None
            and self._adjacency_cache[0] == self._version
        ):
            return self._adjacency_cache[1]
        rows: List[int] = []
        cols: List[int] = []
        data: List[int] = []
        for src, dst, count in self.edges():
            rows.append(src)
            cols.append(dst)
            data.append(count)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(self.n, self.n), dtype=np.int64
        )
        self._adjacency_cache = (self._version, matrix)
        return matrix

    def all_pairs_hop_counts(self) -> np.ndarray:
        """``(n, n)`` hop-count matrix (``np.inf`` for unreachable pairs).

        One vectorized BFS sweep (scipy.sparse.csgraph) shared by
        :meth:`diameter`, :meth:`average_path_length`,
        :meth:`path_length_distribution`, :meth:`all_shortest_paths`,
        and the batched routing builder.  Cached until the next
        mutation: O(n * (n + E)) on a cache miss, O(1) after.
        """
        if (
            self._hops_cache is not None
            and self._hops_cache[0] == self._version
        ):
            return self._hops_cache[1]
        hops = graph_kernels.all_pairs_hop_counts(self.adjacency())
        self._hops_cache = (self._version, hops)
        return hops

    def _hops_int_rows(self) -> List[List[int]]:
        """Hop-count rows as plain int lists (fast path enumeration)."""
        if (
            self._hops_int_cache is not None
            and self._hops_int_cache[0] == self._version
        ):
            return self._hops_int_cache[1]
        hops = self.all_pairs_hop_counts()
        rows = np.where(
            np.isfinite(hops), hops, graph_kernels.UNREACHABLE
        ).astype(np.int64).tolist()
        self._hops_int_cache = (self._version, rows)
        return rows

    def _pred_lists(self) -> List[List[int]]:
        """Per-node in-neighbor lists (cached view of ``_in``)."""
        if (
            self._pred_cache is not None
            and self._pred_cache[0] == self._version
        ):
            return self._pred_cache[1]
        preds = [list(self._in[node]) for node in range(self.n)]
        self._pred_cache = (self._version, preds)
        return preds

    def _succ_lists(self) -> List[List[int]]:
        """Per-node out-neighbor lists, sliced from the cached CSR arrays.

        Plain int lists (CSR ``indices`` rows) are what the Yen spur
        searches iterate; several times faster than walking the
        dict-of-Counter rows.
        """
        if (
            self._succ_cache is not None
            and self._succ_cache[0] == self._version
        ):
            return self._succ_cache[1]
        adjacency = self.adjacency()
        indptr = adjacency.indptr
        indices = adjacency.indices.tolist()
        succ = [
            indices[indptr[node]: indptr[node + 1]] for node in range(self.n)
        ]
        self._succ_cache = (self._version, succ)
        return succ

    def min_hop_paths_from(
        self, src: int, cap: int = 6
    ) -> Dict[int, List[List[int]]]:
        """Minimum-hop path sets from ``src`` to every reachable server.

        Batched equivalent of calling :meth:`all_shortest_paths` for
        each destination: the BFS layering comes from the cached
        all-pairs matrix, so only the output-bounded path backtracking
        (O(cap * path length) per destination) remains per call.

        Returns
        -------
        Mapping of destination -> list of up to ``cap`` minimum-hop
        paths (each a node list starting at ``src``); unreachable
        destinations are absent.
        """
        self._check_node(src)
        return graph_kernels.min_hop_paths_from_source(
            self._hops_int_rows()[src], self._pred_lists(), src, cap
        )

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------
    def shortest_path(self, src: int, dst: int) -> Optional[List[int]]:
        """Unweighted (hop-count) shortest path, or None if unreachable."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return [src]
        prev: Dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nbr in self._out[node]:
                if nbr in prev:
                    continue
                prev[nbr] = node
                if nbr == dst:
                    return self._backtrack(prev, src, dst)
                queue.append(nbr)
        return None

    def shortest_path_lengths_from(self, src: int) -> Dict[int, int]:
        """Hop counts from ``src`` to every reachable server."""
        dist = {src: 0}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nbr in self._out[node]:
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    queue.append(nbr)
        return dist

    def all_shortest_paths(
        self, src: int, dst: int, cap: int = 6
    ) -> List[List[int]]:
        """Up to ``cap`` distinct minimum-hop paths (ECMP path set).

        The BFS layering comes from the cached all-pairs hop-count
        matrix; only the bounded backtrack from ``dst`` through
        strictly-decreasing-distance predecessors runs per call.
        """
        self._check_node(src)
        self._check_node(dst)
        return graph_kernels.enumerate_min_hop_paths(
            self._hops_int_rows()[src], self._pred_lists(), src, dst, cap
        )

    def _all_shortest_paths_bfs(
        self, src: int, dst: int, cap: int = 6
    ) -> List[List[int]]:
        """Seed per-pair BFS implementation (reference/benchmark only)."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return [[src]]
        dist = self.shortest_path_lengths_from(src)
        if dst not in dist:
            return []
        paths: List[List[int]] = []
        stack: List[List[int]] = [[dst]]
        while stack and len(paths) < cap:
            partial = stack.pop()
            head = partial[-1]
            if head == src:
                paths.append(list(reversed(partial)))
                continue
            for pred in self._in[head]:
                if dist.get(pred, -1) == dist[head] - 1:
                    stack.append(partial + [pred])
        return paths

    def k_shortest_paths(self, src: int, dst: int, k: int) -> List[List[int]]:
        """Yen's algorithm for up to ``k`` loopless shortest paths.

        The spur searches run on the out-neighbor lists sliced from the
        cached CSR adjacency (:meth:`_succ_lists`): root-path edges are
        excluded through a ``removed`` edge set instead of mutating and
        restoring the graph, so the loop never invalidates the caches.
        The seed implementation survives as
        :meth:`_k_shortest_paths_reference` for the equivalence tests.
        """
        self._check_node(src)
        self._check_node(dst)
        succ = self._succ_lists()
        first = graph_kernels.shortest_path_avoiding(succ, src, dst)
        if first is None:
            return []
        paths = [first]
        candidates: List[Tuple[int, List[int]]] = []
        seen = {tuple(first)}
        while len(paths) < k:
            prev_path = paths[-1]
            for i in range(len(prev_path) - 1):
                spur_node = prev_path[i]
                root = prev_path[: i + 1]
                removed = {
                    (path[i], path[i + 1])
                    for path in paths
                    if len(path) > i and path[: i + 1] == root
                }
                spur = graph_kernels.shortest_path_avoiding(
                    succ, spur_node, dst, root[:-1], removed
                )
                if spur is None:
                    continue
                candidate = root[:-1] + spur
                key = tuple(candidate)
                if key not in seen:
                    seen.add(key)
                    heapq.heappush(candidates, (len(candidate), candidate))
            if not candidates:
                break
            _, best = heapq.heappop(candidates)
            paths.append(best)
        return paths

    def _k_shortest_paths_reference(
        self, src: int, dst: int, k: int
    ) -> List[List[int]]:
        """Seed Yen's implementation (mutate-and-restore spur searches).

        Reference for the equivalence tests only: path *lengths* are
        uniquely determined by Yen's algorithm, so the CSR-backed
        :meth:`k_shortest_paths` must match it hop-for-hop even when
        equal-length ties resolve to different concrete paths.
        """
        first = self.shortest_path(src, dst)
        if first is None:
            return []
        paths = [first]
        candidates: List[Tuple[int, List[int]]] = []
        seen = {tuple(first)}
        while len(paths) < k:
            prev_path = paths[-1]
            for i in range(len(prev_path) - 1):
                spur_node = prev_path[i]
                root = prev_path[: i + 1]
                removed: List[Edge] = []
                for path in paths:
                    if len(path) > i and path[: i + 1] == root:
                        edge = (path[i], path[i + 1])
                        if self.multiplicity(*edge) > 0:
                            removed.append((edge, self.multiplicity(*edge)))
                            self._out[edge[0]].pop(edge[1])
                            self._in[edge[1]].pop(edge[0])
                banned = set(root[:-1])
                spur = self._shortest_path_avoiding(spur_node, dst, banned)
                for (edge, count) in removed:
                    self._out[edge[0]][edge[1]] = count
                    self._in[edge[1]][edge[0]] = count
                if spur is None:
                    continue
                candidate = root[:-1] + spur
                key = tuple(candidate)
                if key not in seen:
                    seen.add(key)
                    heapq.heappush(candidates, (len(candidate), candidate))
            if not candidates:
                break
            _, best = heapq.heappop(candidates)
            paths.append(best)
        return paths

    def _shortest_path_avoiding(
        self, src: int, dst: int, banned: Iterable[int]
    ) -> Optional[List[int]]:
        banned = set(banned)
        if src in banned:
            return None
        if src == dst:
            return [src]
        prev = {src: src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nbr in self._out[node]:
                if nbr in prev or nbr in banned:
                    continue
                prev[nbr] = node
                if nbr == dst:
                    return self._backtrack(prev, src, dst)
                queue.append(nbr)
        return None

    def is_strongly_connected(self) -> bool:
        return graph_kernels.is_strongly_connected(self.adjacency())

    def _finite_hops(self) -> np.ndarray:
        """All-pairs hop counts; raises if any pair is unreachable."""
        hops = self.all_pairs_hop_counts()
        if not np.all(np.isfinite(hops)):
            raise ValueError("topology is not strongly connected")
        return hops

    def diameter(self) -> int:
        """Longest shortest-path hop count; raises if disconnected."""
        return int(self._finite_hops().max())

    def average_path_length(self) -> float:
        """Mean hop count over all ordered server pairs."""
        if self.n < 2:
            return 0.0
        return float(self._finite_hops().sum() / (self.n * (self.n - 1)))

    def path_length_distribution(self) -> List[int]:
        """Hop counts for every ordered pair of distinct servers."""
        hops = self.all_pairs_hop_counts()
        off_diagonal = ~np.eye(self.n, dtype=bool)
        finite = np.isfinite(hops) & off_diagonal
        return [int(h) for h in hops[finite]]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"server id {node} out of range [0, {self.n})")

    @staticmethod
    def _backtrack(prev: Dict[int, int], src: int, dst: int) -> List[int]:
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DirectConnectTopology(n={self.n}, d={self.degree}, "
            f"links={self.num_links()})"
        )
