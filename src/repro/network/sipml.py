"""SiP-ML fabric (Khani et al., SIGCOMM'21), modified per Appendix F.

SiP-ML gives each GPU Tbps-class silicon-photonics wavelengths; to
compare *algorithms* rather than raw bandwidth, the paper allocates it
the same ``d`` wavelengths of bandwidth ``B`` as TopoOpt and runs its
SiP-Ring-style reconfiguration with a 25 us latency.  Because SiP-Ring's
ILP is intractable at simulation scale, Appendix F substitutes
Algorithm 5 with ``Discount = 1`` -- circuits go to the highest-demand
pairs with no parallel-link diminishing return, and there is no
host-based forwarding (pairs without a circuit wait for the next
reconfiguration).

The consequence reproduced in Figure 11d/e: models with many-to-many MP
transfers (DLRM, NCF) need several reconfigurations per iteration and
SiP-ML's iteration time stays flat as bandwidth grows.
"""

from __future__ import annotations

import numpy as np

from repro.sim.reconfig import ReconfigurableFabricSimulator


class SipMLFabric(ReconfigurableFabricSimulator):
    """SiP-ML: unit-discount circuit scheduling, 25 us, no forwarding."""

    def __init__(
        self,
        num_servers: int,
        degree: int,
        link_bandwidth_bps: float,
        reconfiguration_latency_s: float = 25e-6,
        demand_epoch_s: float = 1e-3,
    ):
        super().__init__(
            num_servers=num_servers,
            degree=degree,
            link_bandwidth_bps=link_bandwidth_bps,
            reconfiguration_latency_s=reconfiguration_latency_s,
            demand_epoch_s=demand_epoch_s,
            host_forwarding=False,
            sipml_mode=True,
        )
        self.name = "SiP-ML"

    def supports_multiple_jobs(self) -> bool:
        """SiP-ML has no sharding story; section 5.6 omits it."""
        return False
