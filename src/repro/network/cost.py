"""Interconnect cost model (Table 2 and Appendix G, Figure 10).

Component prices come straight from Table 2 of the paper; architecture
cost formulas follow Appendix G:

* **TopoOpt**: ``n*d`` NICs and transceivers, ``n*2d`` patch-panel ports
  (the factor 2 pays for the Appendix C look-ahead planes) plus one 1x2
  mechanical switch per interface, and fibers.
* **OCS-reconfig**: ``d`` OCSs connected to all servers -- ``n*d`` OCS
  ports, NICs, transceivers, fibers.
* **Fat-tree / Ideal Switch**: full-bisection Fat-tree accounting -- a
  k-ary Fat-tree has ``5 k^3 / 4`` switch ports for ``k^3 / 4`` hosts,
  i.e. five switch ports and five transceivers (one NIC-side, four
  switch-side... one per port) per host; we charge one NIC per server
  plus five switch ports and six transceivers per server, the standard
  amortization.
* **Expander**: NICs, transceivers, and fibers only (no switching).
* **SiP-ML**: per the paper's evaluation it is the most expensive fabric;
  we model it as OCS-grade ports per wavelength with silicon-photonics
  transceivers at a 2x transceiver premium.

Fiber cost is 30 cents/meter with lengths uniform in [0, 1000] m
(expected 150 $/fiber), following [68] and [148].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

GBPS = 1e9


@dataclass(frozen=True)
class ComponentCosts:
    """Per-component prices (USD) for one link-bandwidth class (Table 2)."""

    link_gbps: int
    transceiver: float
    nic: float
    electrical_switch_port: float
    patch_panel_port: float = 100.0
    ocs_port: float = 520.0
    one_by_two_switch: float = 25.0


#: Table 2 of the paper, verbatim.
COMPONENT_COSTS: Dict[int, ComponentCosts] = {
    10: ComponentCosts(10, 20.0, 185.0, 94.0),
    25: ComponentCosts(25, 39.0, 185.0, 144.0),
    40: ComponentCosts(40, 39.0, 354.0, 144.0),
    100: ComponentCosts(100, 99.0, 678.0, 187.0),
    200: ComponentCosts(200, 198.0, 815.0, 374.0),
}

#: Expected fiber cost: 30 cents/m, uniform [0, 1000] m -> 150 $ mean.
FIBER_COST_USD = 150.0


def costs_for_bandwidth(link_gbps: float) -> ComponentCosts:
    """Component prices for a link speed, snapping up to the next class."""
    classes = sorted(COMPONENT_COSTS)
    for cls in classes:
        if link_gbps <= cls:
            return COMPONENT_COSTS[cls]
    return COMPONENT_COSTS[classes[-1]]


def interpolated_costs(link_gbps: float) -> ComponentCosts:
    """Component prices with linear interpolation between Table 2 classes.

    Beyond 200 Gbps, prices extrapolate linearly per Gbps (the paper
    builds faster pipes from multiple 100 Gbps components).  Used by the
    cost-equivalence search, where a step function would round every
    answer to a class boundary.
    """
    classes = sorted(COMPONENT_COSTS)
    if link_gbps <= classes[0]:
        return COMPONENT_COSTS[classes[0]]
    top = classes[-1]
    if link_gbps >= top:
        scale = link_gbps / top
        base = COMPONENT_COSTS[top]
        return ComponentCosts(
            link_gbps=int(link_gbps),
            transceiver=base.transceiver * scale,
            nic=base.nic * scale,
            electrical_switch_port=base.electrical_switch_port * scale,
        )
    for lo_cls, hi_cls in zip(classes, classes[1:]):
        if lo_cls <= link_gbps <= hi_cls:
            frac = (link_gbps - lo_cls) / (hi_cls - lo_cls)
            lo, hi = COMPONENT_COSTS[lo_cls], COMPONENT_COSTS[hi_cls]
            return ComponentCosts(
                link_gbps=int(link_gbps),
                transceiver=lo.transceiver
                + frac * (hi.transceiver - lo.transceiver),
                nic=lo.nic + frac * (hi.nic - lo.nic),
                electrical_switch_port=lo.electrical_switch_port
                + frac * (hi.electrical_switch_port - lo.electrical_switch_port),
            )
    raise AssertionError("unreachable")  # pragma: no cover


def topoopt_cost(n: int, degree: int, link_gbps: float) -> float:
    """TopoOpt with patch panels and the look-ahead design (Appendix G)."""
    c = costs_for_bandwidth(link_gbps)
    nics = n * degree * c.nic / _ports_per_nic(degree)
    transceivers = n * degree * c.transceiver
    panel_ports = n * 2 * degree * c.patch_panel_port
    flip_switches = n * degree * c.one_by_two_switch
    fibers = n * degree * FIBER_COST_USD
    return nics + transceivers + panel_ports + flip_switches + fibers


def ocs_reconfig_cost(n: int, degree: int, link_gbps: float) -> float:
    """TopoOpt built from d OCSs in a flat layer (no look-ahead needed)."""
    c = costs_for_bandwidth(link_gbps)
    nics = n * degree * c.nic / _ports_per_nic(degree)
    transceivers = n * degree * c.transceiver
    ocs_ports = n * degree * c.ocs_port
    fibers = n * degree * FIBER_COST_USD
    return nics + transceivers + ocs_ports + fibers


def fattree_cost(n: int, per_server_gbps: float) -> float:
    """Full-bisection Fat-tree: 5 switch ports + 6 transceivers/server.

    A k-ary Fat-tree serves k^3/4 hosts with 5k^3/4 switch ports; each
    switch port carries a transceiver and each host NIC carries one.
    """
    c = interpolated_costs(per_server_gbps)
    nics = n * c.nic
    switch_ports = n * 5 * c.electrical_switch_port
    transceivers = n * 6 * c.transceiver
    fibers = n * 5 * FIBER_COST_USD
    return nics + switch_ports + transceivers + fibers


def oversub_fattree_cost(n: int, per_server_gbps: float) -> float:
    """2:1 oversubscribed Fat-tree: half the uplink ports above the ToR."""
    c = interpolated_costs(per_server_gbps)
    nics = n * c.nic
    # 1 access port + half of the 4 aggregation/core ports per server.
    switch_ports = n * 3 * c.electrical_switch_port
    transceivers = n * 4 * c.transceiver
    fibers = n * 3 * FIBER_COST_USD
    return nics + switch_ports + transceivers + fibers


def expander_cost(n: int, degree: int, link_gbps: float) -> float:
    """Expander: NICs, transceivers, fibers; no switching hardware."""
    c = costs_for_bandwidth(link_gbps)
    nics = n * degree * c.nic / _ports_per_nic(degree)
    transceivers = n * degree * c.transceiver
    fibers = n * degree * FIBER_COST_USD
    return nics + transceivers + fibers


def sipml_cost(
    n: int, degree: int, link_gbps: float, gpus_per_server: int = 4
) -> float:
    """SiP-ML: ``d`` wavelengths *per GPU* (section 5.1) over silicon
    photonics (2x transceiver premium) plus OCS-grade switching per
    wavelength.  With four GPUs per server this is the most expensive
    fabric in Figure 10."""
    c = costs_for_bandwidth(link_gbps)
    wavelengths = n * gpus_per_server * degree
    nics = wavelengths * c.nic / _ports_per_nic(degree)
    transceivers = wavelengths * 2.0 * c.transceiver
    switch_ports = wavelengths * 2.0 * c.ocs_port
    fibers = wavelengths * FIBER_COST_USD
    return nics + transceivers + switch_ports + fibers


def _ports_per_nic(degree: int) -> int:
    """Break-out factor: the testbed's 100G NIC exposes 4x25G ports."""
    return 4 if degree >= 4 else 1


ARCHITECTURES = (
    "TopoOpt",
    "OCS-reconfig",
    "Fat-tree",
    "Oversub Fat-tree",
    "Ideal Switch",
    "Expander",
    "SiP-ML",
)


def architecture_cost(
    architecture: str, n: int, degree: int, link_gbps: float
) -> float:
    """Interconnect cost of one architecture (Figure 10).

    ``link_gbps`` is TopoOpt's per-interface bandwidth ``B``; Fat-tree and
    Ideal Switch are charged at the aggregate per-server bandwidth
    ``d x B`` (they attach each server with a single fat pipe).
    """
    if architecture == "TopoOpt":
        return topoopt_cost(n, degree, link_gbps)
    if architecture == "OCS-reconfig":
        return ocs_reconfig_cost(n, degree, link_gbps)
    if architecture == "Fat-tree":
        return fattree_cost(n, degree * link_gbps)
    if architecture == "Oversub Fat-tree":
        return oversub_fattree_cost(n, degree * link_gbps)
    if architecture == "Ideal Switch":
        # Approximated by a full-bisection Fat-tree of the same bandwidth.
        return fattree_cost(n, degree * link_gbps)
    if architecture == "Expander":
        return expander_cost(n, degree, link_gbps)
    if architecture == "SiP-ML":
        return sipml_cost(n, degree, link_gbps)
    raise ValueError(
        f"unknown architecture {architecture!r}; known: {ARCHITECTURES}"
    )


def cost_equivalent_fattree_bandwidth(
    n: int, degree: int, link_gbps: float
) -> float:
    """Find ``d x B'`` such that the Fat-tree costs the same as TopoOpt.

    The paper's Fat-tree baseline is *cost-equivalent* to TopoOpt: each
    server has one NIC at ``d x B'`` with ``B' < B``.  We search the
    Table 2 bandwidth classes for the largest per-server bandwidth whose
    full-bisection Fat-tree cost does not exceed TopoOpt's, interpolating
    linearly within the class (prices scale roughly linearly there).
    Returns the per-server Gbps.
    """
    budget = topoopt_cost(n, degree, link_gbps)
    lo, hi = 1.0, degree * link_gbps
    if fattree_cost(n, hi) <= budget:
        return hi
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if fattree_cost(n, mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo
