"""Optical switching devices: patch panels, OCSs, and look-ahead switching.

Table 1 of the paper compares the optical technologies usable in a
TopoOpt cluster.  This module models the two commercially deployable
ones in functional detail -- reconfigurable optical patch panels
(Telescent-style, minutes-scale robotic reconfiguration) and 3D-MEMS
optical circuit switches (~10 ms) -- plus the 1x2 mechanical switch +
dual-patch-panel *look-ahead* design of Appendix C that hides the patch
panel's reconfiguration latency between jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

Port = int
Circuit = Tuple[Port, Port]


@dataclass(frozen=True)
class OpticalTechnology:
    """One row of Table 1."""

    name: str
    port_count: int
    reconfiguration_latency_s: float
    insertion_loss_db: Tuple[float, float]
    cost_per_port_usd: Optional[float]  # None = not commercially available
    commercially_available: bool


#: Table 1 of the paper, verbatim.
OPTICAL_TECHNOLOGIES: Dict[str, OpticalTechnology] = {
    "patch_panel": OpticalTechnology(
        "Optical Patch Panels", 1008, 60.0, (0.5, 0.5), 100.0, True
    ),
    "3d_mems": OpticalTechnology(
        "3D MEMS", 384, 10e-3, (1.5, 2.7), 520.0, True
    ),
    "2d_mems": OpticalTechnology(
        "2D MEMS", 300, 11.5e-6, (10.0, 20.0), None, False
    ),
    "silicon_photonics": OpticalTechnology(
        "Silicon Photonics", 256, 900e-9, (3.7, 3.7), None, False
    ),
    "tunable_lasers": OpticalTechnology(
        "Tunable Lasers", 128, 3.8e-9, (7.0, 13.0), None, False
    ),
    "rotornet": OpticalTechnology(
        "RotorNet", 64, 10e-6, (2.0, 2.0), None, False
    ),
}


class CircuitConflictError(ValueError):
    """Raised when a requested circuit would double-book a port."""


class _CircuitDevice:
    """Shared crossbar bookkeeping for patch panels and OCSs."""

    def __init__(self, port_count: int, reconfiguration_latency_s: float):
        if port_count < 2:
            raise ValueError("need at least two ports")
        self.port_count = port_count
        self.reconfiguration_latency_s = reconfiguration_latency_s
        self._forward: Dict[Port, Port] = {}  # ingress -> egress
        self._reverse: Dict[Port, Port] = {}  # egress -> ingress
        self.reconfigurations = 0

    # ------------------------------------------------------------------
    def connect(self, ingress: Port, egress: Port) -> None:
        self._check_port(ingress)
        self._check_port(egress)
        if ingress in self._forward:
            raise CircuitConflictError(
                f"ingress port {ingress} already wired to "
                f"{self._forward[ingress]}"
            )
        if egress in self._reverse:
            raise CircuitConflictError(
                f"egress port {egress} already wired from "
                f"{self._reverse[egress]}"
            )
        self._forward[ingress] = egress
        self._reverse[egress] = ingress

    def disconnect(self, ingress: Port) -> None:
        egress = self._forward.pop(ingress, None)
        if egress is None:
            raise KeyError(f"ingress port {ingress} is not wired")
        del self._reverse[egress]

    def peer(self, ingress: Port) -> Optional[Port]:
        return self._forward.get(ingress)

    def circuits(self) -> List[Circuit]:
        return sorted(self._forward.items())

    def reconfigure(self, circuits: List[Circuit]) -> float:
        """Atomically rewire to a new circuit set; returns the latency.

        Validates the new configuration before touching state, so a
        conflicting request leaves the device unchanged.
        """
        ingresses = [c[0] for c in circuits]
        egresses = [c[1] for c in circuits]
        if len(set(ingresses)) != len(ingresses):
            raise CircuitConflictError("duplicate ingress port in request")
        if len(set(egresses)) != len(egresses):
            raise CircuitConflictError("duplicate egress port in request")
        for ingress, egress in circuits:
            self._check_port(ingress)
            self._check_port(egress)
        self._forward = dict(circuits)
        self._reverse = {e: i for i, e in circuits}
        self.reconfigurations += 1
        return self.reconfiguration_latency_s

    def _check_port(self, port: Port) -> None:
        if not 0 <= port < self.port_count:
            raise ValueError(
                f"port {port} out of range [0, {self.port_count})"
            )


class OpticalPatchPanel(_CircuitDevice):
    """Telescent-style robotic patch panel: huge radix, minutes to rewire."""

    def __init__(self, port_count: int = 1008):
        tech = OPTICAL_TECHNOLOGIES["patch_panel"]
        super().__init__(port_count, tech.reconfiguration_latency_s)
        self.technology = tech


class OpticalCircuitSwitch(_CircuitDevice):
    """3D-MEMS OCS: smaller radix, ~10 ms reconfiguration."""

    def __init__(self, port_count: int = 384):
        tech = OPTICAL_TECHNOLOGIES["3d_mems"]
        super().__init__(port_count, tech.reconfiguration_latency_s)
        self.technology = tech


@dataclass
class LookAheadSwitch:
    """The 1x2 mechanical switch + dual patch panel design (Appendix C).

    Each server interface feeds a 1x2 switch whose outputs go to an
    *active* and a *look-ahead* patch panel.  While a job trains on the
    active plane, the look-ahead plane is pre-provisioned for the next
    job; flipping the 1x2 switches (milliseconds) then swaps planes,
    hiding the patch panel's minutes-long robotic reconfiguration.
    """

    num_interfaces: int
    flip_latency_s: float = 10e-3
    insertion_loss_db: float = 0.73  # measured in the paper's prototype
    active_plane: int = 0
    planes: Tuple[OpticalPatchPanel, OpticalPatchPanel] = None  # type: ignore
    pending_ready: bool = field(default=False)

    def __post_init__(self):
        if self.planes is None:
            ports = max(2, self.num_interfaces)
            self.planes = (
                OpticalPatchPanel(ports),
                OpticalPatchPanel(ports),
            )

    @property
    def lookahead_plane(self) -> int:
        return 1 - self.active_plane

    def provision_next(self, circuits: List[Circuit]) -> float:
        """Wire the look-ahead plane for the next job (slow, off-path)."""
        latency = self.planes[self.lookahead_plane].reconfigure(circuits)
        self.pending_ready = True
        return latency

    def flip(self) -> float:
        """Swap planes; only legal once the look-ahead plane is wired."""
        if not self.pending_ready:
            raise RuntimeError(
                "look-ahead plane has not been provisioned; call "
                "provision_next first"
            )
        self.active_plane = self.lookahead_plane
        self.pending_ready = False
        return self.flip_latency_s

    def active_circuits(self) -> List[Circuit]:
        return self.planes[self.active_plane].circuits()

    def effective_job_switch_latency(self) -> float:
        """Latency a new job observes: just the 1x2 flip, not the robot."""
        return self.flip_latency_s
