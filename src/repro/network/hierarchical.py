"""Hierarchical TopoOpt: direct-connect at the ToR layer (section 3).

To scale beyond the optical layer's port count, the paper places servers
under Top-of-Rack (ToR) switches and connects the *ToRs* through the
reconfigurable optical layer, "creating a direct-connect topology at the
ToR or spine layers" (after [53, 71, 72, 100, 114]).

:class:`HierarchicalTopoOptFabric` models that design:

* servers attach to their ToR with ``server_gbps`` links (electrical,
  full rate);
* ToRs have ``tor_degree`` optical uplinks of ``tor_link_gbps`` each,
  wired into a TopologyFinder-optimized direct-connect graph over the
  *rack-level* traffic matrix (demands aggregated per rack);
* inter-rack traffic routes server -> ToR -> (ToR-level TopoOpt path)
  -> ToR -> server, with ToR-level host... switch-based forwarding.

Node ids: servers ``0..n-1``, ToR of rack r is ``n + r``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.topology_finder import (
    AllReduceGroup,
    TopologyFinderResult,
    topology_finder,
)
from repro.parallel.traffic import TrafficSummary

Link = Tuple[int, int]
GBPS = 1e9


def aggregate_rack_traffic(
    traffic: TrafficSummary, servers_per_rack: int
) -> Tuple[List[AllReduceGroup], np.ndarray, int]:
    """Fold a server-level traffic summary into rack-level demands.

    AllReduce groups become groups over the racks they touch (a group
    confined to one rack disappears -- it never crosses the optical
    layer); the MP matrix is summed per rack pair.
    """
    if servers_per_rack < 1:
        raise ValueError("servers_per_rack must be positive")
    n = traffic.n
    num_racks = (n + servers_per_rack - 1) // servers_per_rack

    def rack_of(server: int) -> int:
        return server // servers_per_rack

    groups: List[AllReduceGroup] = []
    for group in traffic.allreduce_groups:
        racks = sorted({rack_of(m) for m in group.members})
        if len(racks) >= 2:
            groups.append(
                AllReduceGroup(
                    members=tuple(racks), total_bytes=group.total_bytes
                )
            )
    mp = np.zeros((num_racks, num_racks))
    for src in range(n):
        for dst in range(n):
            volume = traffic.mp_matrix[src, dst]
            if volume > 0 and rack_of(src) != rack_of(dst):
                mp[rack_of(src), rack_of(dst)] += volume
    return groups, mp, num_racks


class HierarchicalTopoOptFabric:
    """Two-tier fabric: electrical racks + optical ToR direct-connect."""

    def __init__(
        self,
        traffic: TrafficSummary,
        servers_per_rack: int,
        tor_degree: int,
        server_gbps: float = 100.0,
        tor_link_gbps: float = 400.0,
    ):
        self.num_servers = traffic.n
        self.servers_per_rack = servers_per_rack
        self.server_bandwidth_bps = server_gbps * GBPS
        self.tor_link_bandwidth_bps = tor_link_gbps * GBPS
        self.name = "HierarchicalTopoOpt"

        groups, rack_mp, num_racks = aggregate_rack_traffic(
            traffic, servers_per_rack
        )
        self.num_racks = num_racks
        if num_racks >= 2:
            if not groups and rack_mp.sum() == 0:
                # No inter-rack demand: still build a connected ring so
                # control traffic and future demands are routable.
                groups = [
                    AllReduceGroup(
                        members=tuple(range(num_racks)), total_bytes=1.0
                    )
                ]
            self.tor_result: Optional[TopologyFinderResult] = (
                topology_finder(num_racks, tor_degree, groups, rack_mp)
            )
        else:
            self.tor_result = None

    # ------------------------------------------------------------------
    def rack_of(self, server: int) -> int:
        return server // self.servers_per_rack

    def tor_node(self, rack: int) -> int:
        return self.num_servers + rack

    # ------------------------------------------------------------------
    def capacities(self) -> Dict[Link, float]:
        caps: Dict[Link, float] = {}
        for server in range(self.num_servers):
            tor = self.tor_node(self.rack_of(server))
            caps[(server, tor)] = self.server_bandwidth_bps
            caps[(tor, server)] = self.server_bandwidth_bps
        if self.tor_result is not None:
            for src, dst, count in self.tor_result.topology.edges():
                caps[(self.tor_node(src), self.tor_node(dst))] = (
                    count * self.tor_link_bandwidth_bps
                )
        return caps

    def paths(self, src: int, dst: int, kind: str = "mp") -> List[List[int]]:
        if src == dst:
            return [[src]]
        rack_src = self.rack_of(src)
        rack_dst = self.rack_of(dst)
        if rack_src == rack_dst:
            return [[src, self.tor_node(rack_src), dst]]
        assert self.tor_result is not None
        rack_paths = self.tor_result.routing.paths_for(
            rack_src, rack_dst, kind
        )
        if not rack_paths:
            sp = self.tor_result.topology.shortest_path(rack_src, rack_dst)
            rack_paths = [sp] if sp else []
        if not rack_paths:
            return []
        return [
            [src] + [self.tor_node(r) for r in rack_path] + [dst]
            for rack_path in rack_paths
        ]

    # ------------------------------------------------------------------
    def tor_diameter(self) -> int:
        """Diameter of the optical ToR layer (0 for a single rack)."""
        if self.tor_result is None:
            return 0
        return self.tor_result.topology.diameter()
