"""Command-line interface: co-optimize a job and report the result.

Usage (after ``pip install -e .``)::

    python -m repro.cli --model DLRM --scale shared --servers 16 \
        --degree 4 --bandwidth-gbps 100 --rounds 3 --mcmc-iterations 150

Prints the co-optimized parallelization strategy, the topology (rings,
matchings, diameter), the routing summary, and the simulated iteration
time against the Ideal Switch and cost-equivalent Fat-tree baselines --
the workflow a cluster operator would run before submitting a job to a
TopoOpt fabric.

``python -m repro.cli bench-smoke`` instead runs the kernel
micro-benchmarks at reduced sizes (<60 s) as a pre-merge perf sanity
check; see ``benchmarks/bench_perf_kernels.py`` for the full sweep.
``python -m repro.cli check-docs`` verifies the documentation layer:
doctests in the public API modules and in ``README.md``/``docs/*.md``,
and every ``repro.cli`` command the docs reference.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.alternating import AlternatingOptimizer
from repro.models.configs import SIMULATION_CONFIGS, build_model
from repro.network.cost import (
    architecture_cost,
    cost_equivalent_fattree_bandwidth,
)
from repro.network.fattree import FatTreeFabric, IdealSwitchFabric
from repro.parallel.mcmc import MCMCSearch
from repro.parallel.strategy import PlacementKind
from repro.sim.network_sim import simulate_iteration

GBPS = 1e9


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "TopoOpt co-optimization: find a topology + parallelization "
            "strategy for one training job and compare fabrics"
        ),
        epilog=(
            "Tooling: 'repro bench-smoke [--json PATH]' runs the "
            "vectorized-kernel micro-benchmarks at smoke scale (<60 s) "
            "as a pre-merge perf sanity check; 'repro check-docs' "
            "verifies doctests and repro.cli references in the docs."
        ),
    )
    parser.add_argument(
        "--model",
        default="DLRM",
        help=f"workload name (one of {sorted(SIMULATION_CONFIGS)})",
    )
    parser.add_argument(
        "--scale",
        default="shared",
        choices=("simulation", "shared", "testbed"),
        help="List 1 preset family (default: shared)",
    )
    parser.add_argument("--servers", type=int, default=16)
    parser.add_argument("--degree", type=int, default=4)
    parser.add_argument("--bandwidth-gbps", type=float, default=100.0)
    parser.add_argument("--gpus-per-server", type=int, default=4)
    parser.add_argument("--batch-per-gpu", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=3,
                        help="alternating-optimization rounds")
    parser.add_argument("--mcmc-iterations", type=int, default=150)
    parser.add_argument(
        "--mcmc-restarts", type=int, default=1,
        help="independent MCMC chains per round (best-of)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--primes-only",
        action="store_true",
        help="restrict TotientPerms strides to primes (large clusters)",
    )
    return parser


def bench_smoke(argv: Sequence[str] = ()) -> int:
    """Run the kernel micro-benchmarks at smoke scale (<60 s).

    A pre-merge perf sanity check: prints reference-vs-vectorized
    timings for phase simulation, routing construction, LP assembly,
    the staggered-phase event engine, and the search plane (MCMC
    steps/sec and end-to-end alternating optimization), and fails
    (exit 1) if a vectorized kernel has regressed to slower than the
    retained seed implementation at n=64 or the incremental MCMC costs
    drift from the full-rebuild oracle.
    """
    from repro.perf.bench import SMOKE_SIZES, format_results, run_benchmarks

    parser = argparse.ArgumentParser(prog="repro bench-smoke")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the results tree to PATH as JSON",
    )
    args = parser.parse_args(list(argv))
    results = run_benchmarks(SMOKE_SIZES)
    for line in format_results(results):
        print(line)
    if args.json:
        from repro.perf.bench import write_results

        write_results(results, args.json)
        print(f"results written to {args.json}")
    gate_key = f"n={max(SMOKE_SIZES)}"
    regressed = [
        scenario
        for scenario in (
            "phase_sim", "routing", "staggered_phase",
            "mcmc_steps", "alternating",
        )
        if results[scenario][gate_key]["speedup"] < 1.0
    ]
    if regressed:
        print(f"PERF REGRESSION: {', '.join(regressed)} slower than the "
              f"seed implementation at {gate_key}", file=sys.stderr)
        return 1
    if results["mcmc_steps"][gate_key]["cost_rel_err"] >= 1e-12:
        print("EQUIVALENCE REGRESSION: incremental MCMC costs drifted "
              "from the full-rebuild oracle", file=sys.stderr)
        return 1
    print("bench-smoke ok")
    return 0


#: Subcommands of ``python -m repro.cli``; the docs checker validates
#: every command reference in README.md / docs/*.md against this set.
SUBCOMMANDS = ("bench-smoke", "check-docs")

#: Modules whose doctests document the public API (ISSUE 2 docstring
#: pass); ``check-docs`` runs them all.
DOCTEST_MODULES = (
    "repro.network.topology",
    "repro.perf.fairshare",
    "repro.sim.fluid",
)


def check_docs(argv: Sequence[str] = ()) -> int:
    """Verify the documentation layer; exit non-zero on any breakage.

    Three checks, in order:

    1. doctests of the public-API modules (:data:`DOCTEST_MODULES`);
    2. doctests embedded in ``README.md`` and ``docs/*.md``;
    3. every ``python -m repro.cli <subcommand>`` reference in those
       files must name a real subcommand, and every script referenced
       as ``scripts/<name>.sh`` must exist.
    """
    import doctest
    import importlib
    import re
    from pathlib import Path

    parser = argparse.ArgumentParser(prog="repro check-docs")
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root holding README.md and docs/ "
             "(default: two levels above this package)",
    )
    args = parser.parse_args(list(argv))
    root = (
        Path(args.root) if args.root
        else Path(__file__).resolve().parents[2]
    )
    failures = 0

    for name in DOCTEST_MODULES:
        result = doctest.testmod(importlib.import_module(name))
        print(f"doctest {name:28s}: {result.attempted} examples, "
              f"{result.failed} failed")
        failures += result.failed

    doc_paths = [root / "README.md"]
    doc_paths += sorted((root / "docs").glob("*.md"))
    command_ref = re.compile(r"python -m repro\.cli\s+([a-z][a-z0-9-]*)")
    script_ref = re.compile(r"scripts/([a-z0-9_-]+\.sh)")
    for path in doc_paths:
        if not path.exists():
            print(f"MISSING {path.relative_to(root)}", file=sys.stderr)
            failures += 1
            continue
        result = doctest.testfile(
            str(path), module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        rel = path.relative_to(root)
        print(f"doctest {str(rel):28s}: {result.attempted} examples, "
              f"{result.failed} failed")
        failures += result.failed
        text = path.read_text()
        for command in command_ref.findall(text):
            if command not in SUBCOMMANDS:
                print(f"{rel}: unknown repro.cli subcommand "
                      f"{command!r} (have: {', '.join(SUBCOMMANDS)})",
                      file=sys.stderr)
                failures += 1
        for script in script_ref.findall(text):
            if not (root / "scripts" / script).exists():
                print(f"{rel}: references missing scripts/{script}",
                      file=sys.stderr)
                failures += 1

    if failures:
        print(f"check-docs: {failures} failure(s)", file=sys.stderr)
        return 1
    print("check-docs ok")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench-smoke":
        return bench_smoke(argv[1:])
    if argv and argv[0] == "check-docs":
        return check_docs(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        model = build_model(args.model, scale=args.scale)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"workload      : {model.name} ({args.scale} preset)")
    print(f"  parameters  : {model.total_params_bytes / 1e9:.2f} GB "
          f"({len(model.embedding_layers)} embedding tables)")
    print(f"cluster       : {args.servers} servers x {args.degree} "
          f"interfaces @ {args.bandwidth_gbps:g} Gbps")

    search = MCMCSearch(
        model,
        num_servers=args.servers,
        batch_per_gpu=args.batch_per_gpu,
        gpus_per_server=args.gpus_per_server,
        seed=args.seed,
    )
    optimizer = AlternatingOptimizer(
        num_servers=args.servers,
        degree=args.degree,
        link_bandwidth_bps=args.bandwidth_gbps * GBPS,
        search=search,
        max_rounds=args.rounds,
        mcmc_iterations=args.mcmc_iterations,
        mcmc_restarts=args.mcmc_restarts,
        primes_only=args.primes_only,
    )
    result = optimizer.run()

    placements = result.strategy.placements
    mp_count = sum(
        1 for p in placements.values()
        if p.kind == PlacementKind.MODEL_PARALLEL
    )
    sharded = sum(
        1 for p in placements.values() if p.kind == PlacementKind.SHARDED
    )
    print(f"\nstrategy      : {len(placements)} layers "
          f"({mp_count} model-parallel, {sharded} sharded, rest DP)")
    print(f"traffic       : AllReduce "
          f"{result.traffic.total_allreduce_bytes / 1e9:.2f} GB, "
          f"MP {result.traffic.total_mp_bytes / 1e9:.2f} GB / iteration")

    topo = result.topology_result.topology
    print(f"topology      : {topo.num_links()} links, "
          f"diameter {topo.diameter()}, "
          f"d_AR={result.topology_result.allreduce_degree}, "
          f"d_MP={result.topology_result.mp_degree}")
    for plan in result.topology_result.group_plans:
        print(f"  group of {plan.group.size:>3}: strides {plan.strides}")

    compute_s = search.compute_s
    topo_iter = simulate_iteration(
        result.fabric, result.traffic, compute_s
    ).total_s
    ideal = IdealSwitchFabric(
        args.servers, args.degree, args.bandwidth_gbps * GBPS
    )
    ideal_iter = simulate_iteration(
        ideal, result.traffic, compute_s
    ).total_s
    equiv = cost_equivalent_fattree_bandwidth(
        args.servers, args.degree, args.bandwidth_gbps
    )
    fattree = FatTreeFabric(args.servers, 1, equiv * GBPS)
    fat_iter = simulate_iteration(
        fattree, result.traffic, compute_s
    ).total_s

    print(f"\niteration time (simulated):")
    print(f"  TopoOpt              : {topo_iter * 1e3:9.2f} ms")
    print(f"  Ideal Switch         : {ideal_iter * 1e3:9.2f} ms "
          f"({topo_iter / ideal_iter:.2f}x TopoOpt)")
    print(f"  cost-equiv. Fat-tree : {fat_iter * 1e3:9.2f} ms "
          f"({fat_iter / topo_iter:.2f}x slower than TopoOpt)")

    topo_cost = architecture_cost(
        "TopoOpt", args.servers, args.degree, args.bandwidth_gbps
    )
    ideal_cost = architecture_cost(
        "Ideal Switch", args.servers, args.degree, args.bandwidth_gbps
    )
    print(f"\ninterconnect cost: TopoOpt ${topo_cost / 1e3:.0f}k vs "
          f"Ideal Switch ${ideal_cost / 1e3:.0f}k "
          f"({ideal_cost / topo_cost:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
