"""Command-line interface over the declarative experiment API.

The primary entry points run :class:`repro.api.ExperimentSpec` files::

    python -m repro.cli run --spec exp.json --set servers=32
    python -m repro.cli sweep --spec exp.json --grid grid.json
    python -m repro.cli compare --spec exp.json --fabrics topoopt,fattree

``run`` executes one experiment and prints the co-optimized strategy,
topology, simulated iteration time against the spec's baseline fabrics,
and interconnect cost; ``--json PATH`` additionally writes the typed
:class:`repro.api.ExperimentResult` (deterministic for a given spec and
seed).  ``sweep`` expands a parameter grid into a row-per-run table;
``compare`` times one workload on a list of fabrics; ``scenario`` runs
a multi-job shared-cluster scenario spec
(``python -m repro.cli scenario --preset shared --fabrics
topoopt,fattree``; see ``docs/scenarios.md``).

Service subcommands (``docs/service.md``): ``serve-batch`` drains a
JSONL file of spec requests through the memoized, deduplicating
:class:`repro.service.BatchExecutor`; ``cache`` inspects or clears a
content-addressed result store directory.

Observability (``docs/observability.md``): ``trace`` replays one
scenario under a live :class:`repro.obs.TraceRecorder` and exports it
as Chrome trace-event JSON plus an :class:`repro.obs.ObsReport`;
``scenario``, ``sweep``, and ``serve-batch`` accept ``--trace-out`` to
record their own runs the same way.

Tooling subcommands: ``bench-smoke`` (kernel micro-benchmarks, <60 s),
``bench`` (one benchmark entry at a chosen size, ``--profile N`` for a
cProfile breakdown plus warm-cache counters), ``check-docs`` (doctests
+ doc reference validation), and ``check-examples`` (runs every
``examples/*.py`` at smoke scale under a wall-time cap).

The original flag interface (``python -m repro.cli --model DLRM ...``)
survives as a thin legacy shim that constructs an ``ExperimentSpec``
and calls the same runner; prefer ``run --spec`` (see ``docs/api.md``
for the migration table).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.api import (
    ClusterSpec,
    ExperimentResult,
    ExperimentSpec,
    FabricSpec,
    OptimizerSpec,
    RegistryError,
    SpecError,
    WorkloadSpec,
    compare_fabrics,
    parse_overrides,
    run_experiment,
    run_sweep,
)
from repro.api.spec import EXPERIMENT_PRESETS
from repro.models.configs import CONFIG_FAMILIES, FAMILY_DESCRIPTIONS

GBPS = 1e9


# ----------------------------------------------------------------------
# Legacy flag interface (deprecated shim)
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The legacy flag parser, kept as a shim over ``run --spec``."""
    scale_help = "; ".join(
        f"{name}: {FAMILY_DESCRIPTIONS[name]}" for name in CONFIG_FAMILIES
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "TopoOpt co-optimization: find a topology + parallelization "
            "strategy for one training job and compare fabrics. "
            "This flag interface is a legacy shim; prefer "
            "'repro run --spec exp.json' (docs/api.md)."
        ),
        epilog=(
            "Subcommands: 'repro run|sweep|compare' execute declarative "
            "experiment specs; 'repro scenario' runs multi-job "
            "shared-cluster scenarios; 'repro bench-smoke [--json PATH]' runs "
            "the kernel micro-benchmarks at smoke scale (<60 s); "
            "'repro check-docs' verifies doctests and repro.cli "
            "references in the docs; 'repro check-examples' runs every "
            "example at smoke scale."
        ),
    )
    parser.add_argument(
        "--model",
        default="DLRM",
        help="workload name (run 'repro run --help' for the preset list)",
    )
    parser.add_argument(
        "--scale",
        default="shared",
        choices=tuple(CONFIG_FAMILIES),
        help=f"model preset family ({scale_help}; default: shared)",
    )
    parser.add_argument("--servers", type=int, default=16)
    parser.add_argument("--degree", type=int, default=4)
    parser.add_argument("--bandwidth-gbps", type=float, default=100.0)
    parser.add_argument("--gpus-per-server", type=int, default=4)
    parser.add_argument("--batch-per-gpu", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=3,
                        help="alternating-optimization rounds")
    parser.add_argument("--mcmc-iterations", type=int, default=150)
    parser.add_argument(
        "--mcmc-restarts", type=int, default=1,
        help="independent MCMC chains per round (best-of)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--primes-only",
        action="store_true",
        help="restrict TotientPerms strides to primes (large clusters)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the ExperimentResult JSON to PATH",
    )
    return parser


def spec_from_legacy_args(args: argparse.Namespace) -> ExperimentSpec:
    """Translate legacy flags into the spec they always meant."""
    return ExperimentSpec(
        name=f"{args.model}-{args.scale}",
        seed=args.seed,
        workload=WorkloadSpec(
            model=args.model,
            scale=args.scale,
            batch_per_gpu=args.batch_per_gpu,
        ),
        cluster=ClusterSpec(
            servers=args.servers,
            degree=args.degree,
            bandwidth_gbps=args.bandwidth_gbps,
            gpus_per_server=args.gpus_per_server,
        ),
        fabric=FabricSpec(kind="topoopt"),
        optimizer=OptimizerSpec(
            strategy="mcmc",
            rounds=args.rounds,
            mcmc_iterations=args.mcmc_iterations,
            mcmc_restarts=args.mcmc_restarts,
            primes_only=args.primes_only,
        ),
        baselines=(
            FabricSpec(kind="ideal-switch"),
            FabricSpec(kind="fattree"),
        ),
    )


def print_report(result: ExperimentResult) -> None:
    """Human-readable experiment report (shared by run and the shim)."""
    spec = result.spec
    workload = result.workload
    print(f"workload      : {workload.model} ({workload.scale} preset)")
    print(f"  parameters  : {workload.params_bytes / 1e9:.2f} GB "
          f"({workload.embedding_tables} embedding tables)")
    print(f"cluster       : {spec.cluster.servers} servers x "
          f"{spec.cluster.degree} interfaces @ "
          f"{spec.cluster.bandwidth_gbps:g} Gbps")

    strategy = result.strategy
    print(f"\nstrategy      : {strategy.num_layers} layers "
          f"({strategy.model_parallel} model-parallel, "
          f"{strategy.sharded} sharded, rest DP)")
    print(f"traffic       : AllReduce "
          f"{result.traffic.allreduce_bytes / 1e9:.2f} GB, "
          f"MP {result.traffic.mp_bytes / 1e9:.2f} GB / iteration")

    if result.topology is not None:
        topo = result.topology
        print(f"topology      : {topo.num_links} links, "
              f"diameter {topo.diameter}, "
              f"d_AR={topo.allreduce_degree}, d_MP={topo.mp_degree}")
        for group in topo.groups:
            print(f"  group of {group['size']:>3}: "
                  f"strides {tuple(group['strides'])}")

    print("\niteration time (simulated):")
    primary = result.fabric
    print(f"  {primary.name:<20} : {primary.total_s * 1e3:9.2f} ms")
    for timing in result.baselines:
        if timing.total_s > 0 and primary.total_s > 0:
            if timing.total_s <= primary.total_s:
                ratio = (f"({primary.total_s / timing.total_s:.2f}x "
                         f"{primary.name})")
            else:
                ratio = (f"({timing.total_s / primary.total_s:.2f}x "
                         f"slower than {primary.name})")
        else:
            ratio = ""
        print(f"  {timing.name:<20} : {timing.total_s * 1e3:9.2f} ms "
              f"{ratio}".rstrip())

    priced = [t for t in result.timings if t.cost_usd is not None]
    if priced:
        parts = ", ".join(
            f"{t.name} ${t.cost_usd / 1e3:.0f}k" for t in priced
        )
        print(f"\ninterconnect cost: {parts}")
        if primary.cost_usd:
            for timing in result.baselines:
                if timing.cost_usd:
                    print(f"  {timing.name} / {primary.name}: "
                          f"{timing.cost_usd / primary.cost_usd:.1f}x")


def legacy_main(argv: Sequence[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv))
    print("note: the flag interface is a legacy shim; prefer "
          "'python -m repro.cli run --spec exp.json' (docs/api.md)",
          file=sys.stderr)
    try:
        spec = spec_from_legacy_args(args)
        result = run_experiment(spec)
    except (SpecError, RegistryError, KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print_report(result)
    if args.json and not _write_json(args.json, result.to_dict()):
        return 2
    return 0


# ----------------------------------------------------------------------
# Spec loading helpers
# ----------------------------------------------------------------------

def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="ExperimentSpec JSON file (see docs/api.md for the schema)",
    )
    parser.add_argument(
        "--preset", default=None,
        choices=tuple(EXPERIMENT_PRESETS),
        help="start from a named preset instead of a spec file",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        dest="overrides",
        help="override a spec field (dotted path or shorthand, e.g. "
             "servers=32, fabric.kind=expander); repeatable",
    )


def _load_spec(args: argparse.Namespace, spec_cls=ExperimentSpec):
    """Resolve --spec/--preset/--set into a spec of ``spec_cls``.

    Shared by the experiment subcommands and ``repro scenario``
    (``spec_cls`` needs ``from_dict``, ``preset``, ``with_overrides``).
    """
    if args.spec and args.preset:
        raise SpecError("pass either --spec or --preset, not both")
    if args.spec:
        with open(args.spec) as handle:
            spec = spec_cls.from_dict(json.load(handle))
    elif args.preset:
        spec = spec_cls.preset(args.preset)
    else:
        raise SpecError("pass --spec PATH or --preset FAMILY")
    if args.overrides:
        spec = spec.with_overrides(parse_overrides(args.overrides))
    return spec


def _write_json(path: str, payload: Dict[str, Any]) -> bool:
    """Write ``payload`` to ``path`` ('-' = stdout); False on failure."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
        return True
    try:
        Path(path).write_text(text + "\n")
    except OSError as error:
        print(f"error: cannot write {path}: {error}", file=sys.stderr)
        return False
    print(f"result written to {path}")
    return True


def _trace_context(path: Optional[str]):
    """Recording context for ``--trace-out``: a recorder, or a no-op.

    Yields the installed :class:`repro.obs.TraceRecorder` when ``path``
    is set (the caller writes the Chrome trace there afterwards) and
    ``None`` otherwise, so commands can wrap their run section
    unconditionally.
    """
    import contextlib

    if not path:
        return contextlib.nullcontext(None)
    from repro.obs import TRACER, TraceRecorder

    return TRACER.recording(TraceRecorder())


def _add_trace_out_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record the run under the observability plane and write "
             "it as Chrome trace-event JSON (chrome://tracing; see "
             "docs/observability.md)",
    )


def _format_rows(headers: Sequence[str], rows) -> List[str]:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(
            str(c).rjust(w) for c, w in zip(row, widths)
        ))
    return lines


# ----------------------------------------------------------------------
# run / sweep / compare
# ----------------------------------------------------------------------

def cmd_run(argv: Sequence[str] = ()) -> int:
    """Execute one experiment spec and report the result."""
    parser = argparse.ArgumentParser(prog="repro run")
    _add_spec_arguments(parser)
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the ExperimentResult JSON to PATH ('-' for stdout)",
    )
    args = parser.parse_args(list(argv))
    try:
        spec = _load_spec(args)
        result = run_experiment(spec)
    except (SpecError, RegistryError, KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print_report(result)
    if result.wall_time_s is not None:
        print(f"\nwall time     : {result.wall_time_s:.2f} s "
              f"(seed {spec.seed})")
    if args.json and not _write_json(args.json, result.to_dict()):
        return 2
    return 0


def cmd_sweep(argv: Sequence[str] = ()) -> int:
    """Expand a parameter grid over a base spec; one row per run."""
    parser = argparse.ArgumentParser(prog="repro sweep")
    _add_spec_arguments(parser)
    parser.add_argument(
        "--grid", default=None, metavar="PATH",
        help="JSON file mapping override keys to value lists, e.g. "
             '{"cluster.servers": [16, 32], "fabric.kind": ["topoopt"]}',
    )
    parser.add_argument(
        "--vary", action="append", default=[], metavar="KEY=V1,V2,...",
        help="inline grid axis (repeatable): --vary servers=16,32",
    )
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument(
        "--executor", default="thread",
        choices=("thread", "process", "serial"),
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="kill a sweep point that runs longer than this "
             "(pool executors only; the serial path runs inline)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="resubmit a crashed or timed-out point this many extra "
             "times (same seed) before recording it as an error row",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="content-addressed result store directory: points already "
             "stored are served as cache hits, fresh results are "
             "written back (docs/service.md)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the SweepResult JSON to PATH ('-' for stdout)",
    )
    _add_trace_out_argument(parser)
    args = parser.parse_args(list(argv))
    try:
        spec = _load_spec(args)
        grid: Dict[str, List[Any]] = {}
        if args.grid:
            with open(args.grid) as handle:
                loaded = json.load(handle)
            if not isinstance(loaded, dict):
                raise SpecError(
                    f"--grid {args.grid}: expected a JSON object "
                    f"mapping keys to value lists"
                )
            grid.update(loaded)
        for axis in args.vary:
            key, sep, values = axis.partition("=")
            if not sep:
                raise SpecError(
                    f"--vary expects KEY=V1,V2,..., got {axis!r}"
                )
            from repro.api import parse_scalar

            grid[key] = [parse_scalar(v) for v in values.split(",")]
        if not grid:
            raise SpecError("pass --grid PATH and/or --vary KEY=V1,V2")
        store = None
        if args.store:
            from repro.service import ResultStore

            store = ResultStore(args.store)
        # Points traced in-process (serial and thread executors) land
        # in the recorder; process-pool points run outside it.
        with _trace_context(args.trace_out) as recorder:
            sweep = run_sweep(
                spec, grid,
                max_workers=args.max_workers, executor=args.executor,
                point_timeout_s=args.point_timeout, retries=args.retries,
                store=store,
            )
        if args.trace_out:
            from repro.obs import write_chrome_trace

            write_chrome_trace(args.trace_out, recorder)
            print(f"trace written to {args.trace_out}")
    except (SpecError, RegistryError, KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = sweep.rows()
    grid_keys = list(grid)
    extras = [
        key for key in ("seed", "total_ms", "network_frac", "error")
        if key not in grid_keys
    ]
    table = [
        [row[k] for k in grid_keys]
        + [
            {
                "seed": row["seed"],
                "total_ms": (
                    f"{row['total_s'] * 1e3:.2f}" if row["total_s"]
                    else "-"
                ),
                "network_frac": (
                    f"{row['network_fraction']:.2f}"
                    if row["network_fraction"] is not None else "-"
                ),
                "error": row["error"] or "",
            }[key]
            for key in extras
        ]
        for row in rows
    ]
    headers = grid_keys + extras
    for line in _format_rows(headers, table):
        print(line)
    failed = sum(1 for row in rows if row["error"])
    summary = f"\n{len(rows)} points, {failed} failed"
    if store is not None:
        hits = sum(1 for point in sweep.points if point.cache_hit)
        summary += f", {hits} cache hits"
    print(summary)
    if args.json and not _write_json(args.json, sweep.to_dict()):
        return 2
    return 1 if failed else 0


def cmd_compare(argv: Sequence[str] = ()) -> int:
    """Time one experiment's traffic on a list of fabrics."""
    parser = argparse.ArgumentParser(prog="repro compare")
    _add_spec_arguments(parser)
    parser.add_argument(
        "--fabrics", default="topoopt,ideal-switch,fattree",
        help="comma-separated fabric registry names to compare",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the comparison JSON to PATH ('-' for stdout)",
    )
    args = parser.parse_args(list(argv))
    try:
        spec = _load_spec(args)
        kinds = [k.strip() for k in args.fabrics.split(",") if k.strip()]
        if not kinds:
            raise SpecError("--fabrics needs at least one fabric name")
        fabrics = {kind: FabricSpec(kind=kind) for kind in kinds}
        for fabric_spec in fabrics.values():
            fabric_spec.validate_kind()
        timings = compare_fabrics(spec, fabrics)
    except (SpecError, RegistryError, KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    base = timings[kinds[0]].total_s
    table = [
        [
            kind,
            f"{t.total_s * 1e3:.2f}",
            f"{t.total_s / base:.2f}x" if base > 0 else "-",
            f"${t.cost_usd / 1e3:.0f}k" if t.cost_usd else "-",
        ]
        for kind, t in ((k, timings[k]) for k in kinds)
    ]
    print(f"workload {spec.workload.model} on {spec.cluster.servers} "
          f"servers (strategy {spec.optimizer.strategy}):")
    for line in _format_rows(
        ("fabric", "iteration_ms", f"vs {kinds[0]}", "cost"), table
    ):
        print(line)
    if args.json and not _write_json(
        args.json,
        {kind: timing.to_dict() for kind, timing in timings.items()},
    ):
        return 2
    return 0


# ----------------------------------------------------------------------
# scenario
# ----------------------------------------------------------------------

def cmd_scenario(argv: Sequence[str] = ()) -> int:
    """Run a shared-cluster scenario spec (see docs/scenarios.md).

    ``--spec PATH`` loads a :class:`repro.cluster.ScenarioSpec` JSON
    file; ``--preset shared|lifetime`` starts from a canonical setup;
    ``--set`` overrides fields as in ``repro run``.  ``--fabrics a,b``
    replays the *same* arrival trace on several fabrics and prints the
    Figure 16-style comparison (per-fabric average / p99 iteration
    time, JCT, queueing).  ``--scheduler fcfs,easy,conservative``
    replays the same trace under several queue policies and prints the
    per-policy JCT / queueing-delay comparison; a single policy simply
    overrides the spec's ``queue`` field.
    """
    from repro.cluster import SCENARIO_PRESETS, ScenarioSpec, run_scenario

    parser = argparse.ArgumentParser(prog="repro scenario")
    parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="ScenarioSpec JSON file (see docs/scenarios.md)",
    )
    parser.add_argument(
        "--preset", default=None, choices=tuple(SCENARIO_PRESETS),
        help="start from a named scenario preset",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        dest="overrides",
        help="override a spec field (dotted path or shorthand, e.g. "
             "policy=best-fit, jobs.0.iterations=2); repeatable",
    )
    parser.add_argument(
        "--fabrics", default=None, metavar="KIND,KIND,...",
        help="run the same scenario on several fabrics and compare",
    )
    parser.add_argument(
        "--scheduler", default=None, metavar="QUEUE,QUEUE,...",
        help="queue policy (fcfs, easy, conservative); several "
             "comma-separated policies replay the same trace under "
             "each and print the comparison",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the ScenarioResult JSON to PATH ('-' for stdout); "
             "with --fabrics a {kind: result} object, with a "
             "multi-policy --scheduler a {queue: result} object",
    )
    _add_trace_out_argument(parser)
    args = parser.parse_args(list(argv))
    try:
        spec = _load_spec(args, spec_cls=ScenarioSpec)
        schedulers = []
        if args.scheduler:
            schedulers = [
                q.strip() for q in args.scheduler.split(",") if q.strip()
            ]
            if not schedulers:
                raise SpecError(
                    "--scheduler needs at least one queue policy"
                )
            if args.fabrics and len(schedulers) > 1:
                raise SpecError(
                    "--scheduler accepts several policies or --fabrics "
                    "several fabrics, not both at once"
                )
            if len(schedulers) == 1:
                # Plain override: the whole run uses this discipline.
                spec = spec.with_overrides({"queue": schedulers[0]})
                schedulers = []
        if args.fabrics:
            kinds = [k.strip() for k in args.fabrics.split(",") if k.strip()]
            if not kinds:
                raise SpecError("--fabrics needs at least one fabric name")
        with _trace_context(args.trace_out) as recorder:
            if args.fabrics:
                results = {
                    kind: run_scenario(
                        spec.with_overrides({"fabric.kind": kind})
                    )
                    for kind in kinds
                }
            elif schedulers:
                results = {
                    queue: run_scenario(
                        spec.with_overrides({"queue": queue})
                    )
                    for queue in schedulers
                }
            else:
                results = {spec.fabric.kind: run_scenario(spec)}
        if args.trace_out:
            from repro.obs import write_chrome_trace

            write_chrome_trace(args.trace_out, recorder)
            print(f"trace written to {args.trace_out}")
    except (SpecError, RegistryError, KeyError, ValueError, OSError,
            RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    primary = results[next(iter(results))]
    print(f"scenario      : {spec.name or '(unnamed)'} "
          f"(seed {spec.seed})")
    print(f"cluster       : {spec.cluster.servers} servers x "
          f"{spec.cluster.degree} interfaces @ "
          f"{spec.cluster.bandwidth_gbps:g} Gbps, "
          f"{spec.scheduler.policy} scheduling")
    print(f"arrivals      : {spec.arrivals.process}, "
          f"{len(primary.jobs)} jobs")
    if not args.fabrics and not schedulers:
        result = primary
        print(f"\n{'job':<14} {'srv':>4} {'arrive':>9} {'queued':>9} "
              f"{'jct':>9} {'iter avg':>10}")
        for job in result.jobs:
            print(f"{job.name:<14} {job.num_servers:>4} "
                  f"{job.arrival_s:>8.1f}s {job.queueing_delay_s:>8.1f}s "
                  f"{job.jct_s:>8.1f}s {job.iteration_avg_s * 1e3:>7.1f} ms")
        metrics = result.metrics()
        print(f"\ncluster       : iteration avg "
              f"{metrics['iteration_avg_s'] * 1e3:.1f} ms / p99 "
              f"{metrics['iteration_p99_s'] * 1e3:.1f} ms")
        print(f"                JCT avg {metrics['jct_avg_s']:.1f} s, "
              f"queueing avg {metrics['queueing_avg_s']:.1f} s")
        print(f"                utilization "
              f"{metrics['mean_utilization'] * 100:.0f}%, peak "
              f"fragmentation {metrics['peak_fragmentation']:.2f}")
    elif schedulers:
        table = []
        for queue, result in results.items():
            metrics = result.metrics()
            table.append([
                queue,
                f"{metrics['jct_avg_s']:.2f}",
                f"{metrics['jct_p99_s']:.2f}",
                f"{metrics['queueing_avg_s']:.2f}",
                str(metrics["preemptions"]),
                str(metrics["resizes"]),
            ])
        print()
        for line in _format_rows(
            ("scheduler", "jct_avg_s", "jct_p99_s", "queue_avg_s",
             "preempts", "resizes"),
            table,
        ):
            print(line)
    else:
        table = []
        for kind, result in results.items():
            metrics = result.metrics()
            table.append([
                kind,
                f"{metrics['iteration_avg_s'] * 1e3:.2f}",
                f"{metrics['iteration_p99_s'] * 1e3:.2f}",
                f"{metrics['jct_avg_s']:.2f}",
                f"{metrics['queueing_avg_s']:.2f}",
            ])
        print()
        for line in _format_rows(
            ("fabric", "iter_avg_ms", "iter_p99_ms", "jct_avg_s",
             "queue_avg_s"),
            table,
        ):
            print(line)
    if args.json:
        # Shape follows the flags, not the count: --fabrics (and a
        # multi-policy --scheduler) always gets the keyed object, even
        # with a single-name list.
        if args.fabrics or schedulers:
            payload: Dict[str, Any] = {
                k: r.to_dict() for k, r in results.items()
            }
        else:
            payload = primary.to_dict()
        if not _write_json(args.json, payload):
            return 2
    return 0


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------

def cmd_trace(argv: Sequence[str] = ()) -> int:
    """Run one scenario under the observability plane and export traces.

    ``repro trace --preset shared --out trace.json`` replays the
    scenario with a live :class:`repro.obs.TraceRecorder` installed --
    engine event-loop steps, pipeline builds (MCMC chains,
    TopologyFinder solves, LP assembly), flow solves, scheduler
    decisions, and per-link utilization timelines all record -- and
    writes the run as Chrome trace-event JSON (load it in
    ``chrome://tracing`` or https://ui.perfetto.dev).  ``--metrics-out``
    additionally writes every span/counter/gauge/timeline as flat
    JSONL; ``--json`` writes the merged :class:`repro.obs.ObsReport`.
    The simulated result itself is byte-identical to an untraced run
    (``bench-smoke`` enforces this), so tracing is always safe to add.
    """
    from repro.cluster import SCENARIO_PRESETS, ScenarioSpec, run_scenario
    from repro.obs import (
        ObsReport,
        TraceRecorder,
        write_chrome_trace,
        write_metrics_jsonl,
    )

    parser = argparse.ArgumentParser(prog="repro trace")
    parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="ScenarioSpec JSON file (see docs/scenarios.md)",
    )
    parser.add_argument(
        "--preset", default=None, choices=tuple(SCENARIO_PRESETS),
        help="start from a named scenario preset",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        dest="overrides",
        help="override a spec field (dotted path or shorthand); "
             "repeatable",
    )
    parser.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="also write every metric as one JSON object per line",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the ObsReport JSON to PATH ('-' for stdout)",
    )
    args = parser.parse_args(list(argv))
    try:
        spec = _load_spec(args, spec_cls=ScenarioSpec)
        recorder = TraceRecorder()
        result = run_scenario(spec, recorder=recorder)
        write_chrome_trace(args.out, recorder)
        if args.metrics_out:
            write_metrics_jsonl(args.metrics_out, recorder)
    except (SpecError, RegistryError, KeyError, ValueError, OSError,
            RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = ObsReport.build(recorder)
    print(f"scenario      : {spec.name or '(unnamed)'} "
          f"(seed {spec.seed}, {len(result.jobs)} jobs)")
    print(f"trace         : {args.out} "
          f"({len(recorder.spans)} spans, "
          f"{len(recorder.timelines)} timelines)")
    if args.metrics_out:
        print(f"metrics       : {args.metrics_out}")
    print()
    for line in report.format_lines():
        print(line)
    if args.json and not _write_json(args.json, report.to_dict()):
        return 2
    return 0


# ----------------------------------------------------------------------
# bench-smoke
# ----------------------------------------------------------------------

def bench_smoke(argv: Sequence[str] = ()) -> int:
    """Run the kernel micro-benchmarks at smoke scale (<60 s).

    A pre-merge perf sanity check: prints reference-vs-vectorized
    timings for phase simulation, routing construction, LP assembly,
    the staggered-flow event engine, the search plane (MCMC steps/sec
    and end-to-end alternating optimization), and the multi-job
    scenario engine, and fails (exit 1) if a vectorized kernel has
    regressed to slower than the retained seed implementation at n=64,
    the incremental MCMC costs drift from the full-rebuild oracle, the
    scenario engine loses (spec, seed) determinism / allocator
    equivalence, the scenario kernel falls under its 1.5x speedup
    floor at n=64, the capped fleet-scale scenario fails to drain its
    trace, the scheduler policy sweep fails its gate (every queue
    policy drains a 100-job trace deterministically under a 60 s
    wall-time cap, with backfill strictly beating FCFS queueing delay
    on the head-of-line-blocking trace), the failure-storm
    scenario fails its gate (every recovery policy drains the trace
    through a correlated fault storm, deterministically, with zero
    scheduler-invariant violations and >= 20 applied fault events), or
    the service-throughput gate trips (the warm store-backed drain of
    the Zipf request mix must be >= 5x cold specs/sec, the cold drain
    must compute each unique spec exactly once, and store-served
    results must be byte-identical to fresh computes), or the
    observability gate trips (a traced scenario run must produce
    byte-identical result JSON to an untraced one, with tracing
    overhead under 10%).
    """
    from repro.perf.bench import SMOKE_SIZES, format_results, run_benchmarks

    parser = argparse.ArgumentParser(prog="repro bench-smoke")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the results tree to PATH as JSON",
    )
    args = parser.parse_args(list(argv))
    results = run_benchmarks(SMOKE_SIZES)
    for line in format_results(results):
        print(line)
    if args.json:
        from repro.perf.bench import write_results

        write_results(results, args.json)
        print(f"results written to {args.json}")
    gate_key = f"n={max(SMOKE_SIZES)}"
    regressed = [
        scenario
        for scenario in (
            "phase_sim", "routing", "staggered_phase",
            "mcmc_steps", "alternating",
        )
        if results[scenario][gate_key]["speedup"] < 1.0
    ]
    if regressed:
        print(f"PERF REGRESSION: {', '.join(regressed)} slower than the "
              f"seed implementation at {gate_key}", file=sys.stderr)
        return 1
    if results["mcmc_steps"][gate_key]["cost_rel_err"] >= 1e-12:
        print("EQUIVALENCE REGRESSION: incremental MCMC costs drifted "
              "from the full-rebuild oracle", file=sys.stderr)
        return 1
    scenario = results["scenario"][gate_key]
    if not scenario["deterministic"]:
        print("DETERMINISM REGRESSION: same (scenario spec, seed) "
              "produced different result JSON", file=sys.stderr)
        return 1
    if scenario["iteration_rel_err"] >= 1e-9:
        print("EQUIVALENCE REGRESSION: scenario kernel allocator "
              "drifted from the pure-Python reference", file=sys.stderr)
        return 1
    if scenario["speedup"] < 1.5:
        print(f"PERF REGRESSION: scenario kernel speedup "
              f"{scenario['speedup']}x at {gate_key} under the 1.5x "
              f"floor", file=sys.stderr)
        return 1
    fleet = next(iter(results["scenario_fleet"].values()))
    if fleet["jobs_completed"] < fleet["jobs_submitted"]:
        print(f"FLEET REGRESSION: scenario_fleet completed "
              f"{fleet['jobs_completed']}/{fleet['jobs_submitted']} "
              f"jobs (trace did not drain)", file=sys.stderr)
        return 1
    sweep = next(iter(results["scheduler_sweep"].values()))
    if not sweep["drained"]:
        print("SCHEDULER REGRESSION: a queue policy failed to drain "
              "the 100-job trace", file=sys.stderr)
        return 1
    if not sweep["deterministic"]:
        print("DETERMINISM REGRESSION: same (spec, seed) under EASY "
              "backfill produced different result JSON",
              file=sys.stderr)
        return 1
    if not sweep["backfill_beats_fcfs"]:
        print("SCHEDULER REGRESSION: backfill no longer beats FCFS "
              "mean queueing delay on the head-of-line-blocking "
              "trace", file=sys.stderr)
        return 1
    if sweep["wall_s"] > 60.0:
        print(f"PERF REGRESSION: scheduler_sweep took "
              f"{sweep['wall_s']}s (wall-time cap 60 s)",
              file=sys.stderr)
        return 1
    storm = next(iter(results["scenario_storm"].values()))
    if not storm["drained"]:
        print("RESILIENCE REGRESSION: a recovery policy failed to "
              "drain the 100-job trace through the fault storm",
              file=sys.stderr)
        return 1
    if not storm["deterministic"]:
        print("DETERMINISM REGRESSION: same (spec, seed) under the "
              "fault storm produced different result JSON",
              file=sys.stderr)
        return 1
    if storm["invariant_violations"]:
        print(f"RESILIENCE REGRESSION: {storm['invariant_violations']} "
              f"scheduler-invariant violations under the fault storm",
              file=sys.stderr)
        return 1
    if not storm["storm_bites"]:
        print(f"RESILIENCE REGRESSION: the storm schedule only landed "
              f"{storm['fault_events']} fault events (floor 20) -- "
              f"the chaos gate is no longer exercising recovery",
              file=sys.stderr)
        return 1
    service = next(iter(results["service_throughput"].values()))
    if not service["dedup_exact"]:
        print(f"SERVICE REGRESSION: cold drain launched "
              f"{service['computed']} computations for "
              f"{service['unique_requested']} unique specs (in-flight "
              f"dedup must coalesce duplicates onto one computation)",
              file=sys.stderr)
        return 1
    if not service["byte_identical"]:
        print("SERVICE REGRESSION: a store-served result's JSON "
              "differs from a freshly computed one (content-addressed "
              "memoization must be byte-identical)", file=sys.stderr)
        return 1
    if service["warm_speedup"] < 5.0:
        print(f"SERVICE REGRESSION: warm drain only "
              f"{service['warm_speedup']}x cold specs/sec (floor 5x) "
              f"-- the result store is no longer paying for itself",
              file=sys.stderr)
        return 1
    obs = next(iter(results["obs_overhead"].values()))
    if not obs["byte_identical"]:
        print("OBSERVABILITY REGRESSION: a traced scenario run's "
              "result JSON differs from the untraced run's "
              "(instrumentation must never perturb simulation "
              "results)", file=sys.stderr)
        return 1
    if obs["overhead_pct"] >= 10.0:
        print(f"PERF REGRESSION: tracing overhead "
              f"{obs['overhead_pct']}% on the scenario engine "
              f"(cap 10%)", file=sys.stderr)
        return 1
    print("bench-smoke ok")
    return 0


def cmd_bench(argv: Sequence[str] = ()) -> int:
    """Run one kernel micro-benchmark entry, optionally under cProfile.

    ``repro bench scenario --n 256`` runs a single entry at one size
    and prints its record as JSON.  ``--profile 25`` reruns the entry
    under :mod:`cProfile` and prints the top 25 functions by cumulative
    time -- the first tool to reach for when a bench-smoke speedup
    floor trips and you need to see where the hot loop went -- followed
    by the process-wide warm-cache counters
    (:func:`repro.perf.warmcache.stats`), so a cold cache shows up next
    to the profile that suffered from it.
    """
    from repro.perf.bench import BENCH_ENTRIES

    parser = argparse.ArgumentParser(prog="repro bench")
    parser.add_argument(
        "entry", choices=sorted(BENCH_ENTRIES),
        help="benchmark entry to run",
    )
    parser.add_argument(
        "--n", type=int, default=None, metavar="SIZE",
        help="problem size (servers); default 64, fleet default 200",
    )
    parser.add_argument(
        "--profile", type=int, default=0, metavar="TOP",
        help="rerun under cProfile and print the TOP functions by "
             "cumulative time",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="write the profile rows and warm-cache counters as JSON "
             "('-' for stdout; implies --profile)",
    )
    args = parser.parse_args(list(argv))
    n = args.n
    if n is None:
        n = {"scenario_fleet": 200, "service_throughput": 16}.get(
            args.entry, 64
        )
    runner = BENCH_ENTRIES[args.entry]
    record = runner(n)
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.profile or args.profile_out:
        import cProfile
        import io
        import pstats

        top = args.profile or 25
        profiler = cProfile.Profile()
        profiler.enable()
        runner(n)
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(top)
        from repro.perf import warmcache

        cache_stats = warmcache.stats()
        if args.profile:
            print(stream.getvalue(), end="")
            print("warm caches:")
            for name, counters in sorted(cache_stats.items()):
                print(f"  {name:<10}: " + ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(counters.items())
                ))
        if args.profile_out:
            rows = [
                {
                    "function": f"{filename}:{lineno}({funcname})",
                    "ncalls": ncalls,
                    "primitive_calls": primitive,
                    "tottime_s": round(tottime, 6),
                    "cumtime_s": round(cumtime, 6),
                }
                for (filename, lineno, funcname),
                    (primitive, ncalls, tottime, cumtime, _callers)
                in stats.stats.items()
            ]
            rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
            payload = {
                "entry": args.entry,
                "n": n,
                "record": record,
                "profile": rows[:top],
                "warm_caches": cache_stats,
            }
            if not _write_json(args.profile_out, payload):
                return 2
    return 0


# ----------------------------------------------------------------------
# serve-batch / cache (optimization-as-a-service; docs/service.md)
# ----------------------------------------------------------------------

def cmd_serve_batch(argv: Sequence[str] = ()) -> int:
    """Drain a JSONL file of spec requests through the batch executor.

    Each line of ``--requests`` is one spec JSON object -- an
    :class:`~repro.api.ExperimentSpec` or a
    :class:`repro.cluster.ScenarioSpec`, recognized structurally --
    and the whole file is submitted to a
    :class:`repro.service.BatchExecutor`: duplicate requests coalesce
    (in-flight dedup), previously computed specs come straight from
    the ``--store`` directory, and everything else fans out over the
    worker pool with per-request ``--point-timeout``/``--retries``
    containment.  Prints one line per request (route + outcome) and
    the :class:`~repro.service.ServiceReport`; ``--json`` writes both.
    """
    from repro.service import BatchExecutor, ResultStore, spec_from_request

    parser = argparse.ArgumentParser(prog="repro serve-batch")
    parser.add_argument(
        "--requests", required=True, metavar="PATH",
        help="JSONL file: one spec JSON object per line",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="content-addressed result store directory "
             "(default: in-memory only, gone after the run)",
    )
    parser.add_argument(
        "--executor", default="process",
        choices=("process", "thread", "serial"),
    )
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument(
        "--queue-depth", type=int, default=64,
        help="max concurrently admitted computations; further submits "
             "block (backpressure) rather than queue unboundedly",
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request compute timeout (pool executors only)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="resubmit a crashed or timed-out request this many extra "
             "times before failing it",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write {requests, report} JSON to PATH ('-' for stdout)",
    )
    _add_trace_out_argument(parser)
    args = parser.parse_args(list(argv))
    try:
        specs = []
        with open(args.requests) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    specs.append(spec_from_request(json.loads(line)))
                except Exception as error:
                    raise SpecError(
                        f"{args.requests}:{lineno}: bad request: {error}"
                    )
        if not specs:
            raise SpecError(f"{args.requests}: no requests found")
        store = ResultStore(args.store) if args.store else ResultStore()
        # Request spans (route, latency) record in the parent process;
        # pool workers' pipeline spans do only for --executor serial.
        with _trace_context(args.trace_out) as recorder:
            with BatchExecutor(
                store=store,
                max_workers=args.max_workers,
                executor=args.executor,
                queue_depth=args.queue_depth,
                point_timeout_s=args.point_timeout,
                retries=args.retries,
            ) as service:
                requests = service.drain(specs)
                report = service.report()
        if args.trace_out:
            from repro.obs import write_chrome_trace

            write_chrome_trace(args.trace_out, recorder)
            print(f"trace written to {args.trace_out}")
    except (SpecError, RegistryError, KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = []
    for index, request in enumerate(requests):
        error = request.future.exception()
        rows.append({
            "index": index,
            "key": request.key,
            "route": request.route,
            "error": str(error) if error is not None else None,
        })
        status = "ok" if error is None else f"ERROR {error}"
        print(f"  {index:>4}  {request.key[:12]}  "
              f"{request.route:<8} {status}")
    print()
    for line in report.format_lines():
        print(line)
    if args.json and not _write_json(
        args.json, {"requests": rows, "report": report.to_dict()}
    ):
        return 2
    return 1 if report.errors else 0


def cmd_cache(argv: Sequence[str] = ()) -> int:
    """Inspect or clear a content-addressed result store directory.

    ``repro cache stats --store DIR`` prints the store's entry count
    and layout; ``clear`` drops every entry; ``lookup SPEC.json``
    reports whether the fully-resolved spec would be served from the
    store, and under which key.  Output is line-oriented and
    deterministic, so the docs can doctest it.
    """
    from repro.service import STORE_VERSION, ResultStore, spec_from_request

    parser = argparse.ArgumentParser(prog="repro cache")
    parser.add_argument(
        "action", choices=("stats", "clear", "lookup"),
        help="what to do with the store",
    )
    parser.add_argument(
        "spec", nargs="?", default=None, metavar="SPEC.json",
        help="spec file to look up (lookup only)",
    )
    parser.add_argument(
        "--store", required=True, metavar="DIR",
        help="result store directory (created on first write)",
    )
    args = parser.parse_args(list(argv))
    try:
        store = ResultStore(args.store)
        if args.action == "lookup":
            if not args.spec:
                raise SpecError("cache lookup needs a SPEC.json argument")
            with open(args.spec) as handle:
                spec = spec_from_request(json.load(handle))
            key = store.key_for(spec)
            verdict = "hit" if store.contains(spec) else "miss"
            print(f"{verdict} {key}")
            return 0
        if args.action == "clear":
            dropped = store.clear()
            print(f"cleared {dropped} entries")
            return 0
        stats = store.stats()
        print(f"store         : {store.root}")
        print(f"entries       : {stats['disk_entries']}")
        print(f"version       : v{STORE_VERSION}")
    except (SpecError, RegistryError, KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# check-docs
# ----------------------------------------------------------------------

#: Modules whose doctests document the public API; ``check-docs`` runs
#: them all.
DOCTEST_MODULES = (
    "repro.api.spec",
    "repro.cluster.faults",
    "repro.cluster.spec",
    "repro.network.topology",
    "repro.obs.tracer",
    "repro.perf.fairshare",
    "repro.perf.warmcache",
    "repro.service.metrics",
    "repro.sim.fluid",
)


def check_docs(argv: Sequence[str] = ()) -> int:
    """Verify the documentation layer; exit non-zero on any breakage.

    Three checks, in order:

    1. doctests of the public-API modules (:data:`DOCTEST_MODULES`);
    2. doctests embedded in ``README.md`` and ``docs/*.md``;
    3. every ``python -m repro.cli <subcommand>`` reference in those
       files must name a real subcommand, and every script referenced
       as ``scripts/<name>.sh`` must exist.
    """
    import doctest
    import importlib
    import re

    parser = argparse.ArgumentParser(prog="repro check-docs")
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root holding README.md and docs/ "
             "(default: two levels above this package)",
    )
    args = parser.parse_args(list(argv))
    root = (
        Path(args.root) if args.root
        else Path(__file__).resolve().parents[2]
    )
    failures = 0

    for name in DOCTEST_MODULES:
        result = doctest.testmod(importlib.import_module(name))
        print(f"doctest {name:28s}: {result.attempted} examples, "
              f"{result.failed} failed")
        failures += result.failed

    doc_paths = [root / "README.md"]
    doc_paths += sorted((root / "docs").glob("*.md"))
    command_ref = re.compile(r"python -m repro\.cli\s+([a-z][a-z0-9-]*)")
    script_ref = re.compile(r"scripts/([a-z0-9_-]+\.sh)")
    for path in doc_paths:
        if not path.exists():
            print(f"MISSING {path.relative_to(root)}", file=sys.stderr)
            failures += 1
            continue
        result = doctest.testfile(
            str(path), module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        rel = path.relative_to(root)
        print(f"doctest {str(rel):28s}: {result.attempted} examples, "
              f"{result.failed} failed")
        failures += result.failed
        text = path.read_text()
        for command in command_ref.findall(text):
            if command not in SUBCOMMANDS:
                print(f"{rel}: unknown repro.cli subcommand "
                      f"{command!r} (have: {', '.join(SUBCOMMANDS)})",
                      file=sys.stderr)
                failures += 1
        for script in script_ref.findall(text):
            if not (root / "scripts" / script).exists():
                print(f"{rel}: references missing scripts/{script}",
                      file=sys.stderr)
                failures += 1

    if failures:
        print(f"check-docs: {failures} failure(s)", file=sys.stderr)
        return 1
    print("check-docs ok")
    return 0


# ----------------------------------------------------------------------
# check-examples
# ----------------------------------------------------------------------

def check_examples(argv: Sequence[str] = ()) -> int:
    """Run every ``examples/*.py`` at smoke scale under a time cap.

    Each example is executed in a subprocess with ``REPRO_SMOKE=1`` in
    the environment (examples shrink their search budgets when they see
    it) and must exit zero within ``--timeout`` seconds, so the
    examples cannot rot against the API.
    """
    import os
    import subprocess
    import time

    parser = argparse.ArgumentParser(prog="repro check-examples")
    parser.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="wall-time cap per example (default: 120)",
    )
    parser.add_argument(
        "--examples-dir", default=None, metavar="DIR",
        help="directory of examples (default: <repo root>/examples)",
    )
    args = parser.parse_args(list(argv))
    root = Path(__file__).resolve().parents[2]
    examples_dir = (
        Path(args.examples_dir) if args.examples_dir
        else root / "examples"
    )
    scripts = sorted(examples_dir.glob("*.py"))
    if not scripts:
        print(f"no examples found under {examples_dir}", file=sys.stderr)
        return 1
    env = dict(os.environ)
    env["REPRO_SMOKE"] = "1"
    src = str(root / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src if not existing else f"{src}{os.pathsep}{existing}"
    )
    failures = 0
    for script in scripts:
        started = time.perf_counter()
        try:
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                timeout=args.timeout,
                env=env,
                cwd=str(root),
            )
            elapsed = time.perf_counter() - started
            status = "ok" if proc.returncode == 0 else "FAIL"
        except subprocess.TimeoutExpired:
            elapsed = time.perf_counter() - started
            proc = None
            status = "TIMEOUT"
        print(f"  {script.name:<32} {status:>8} ({elapsed:5.1f} s)")
        if status != "ok":
            failures += 1
            if proc is not None and proc.stderr:
                tail = proc.stderr.strip().splitlines()[-12:]
                for line in tail:
                    print(f"    {line}", file=sys.stderr)
            elif status == "TIMEOUT":
                print(f"    exceeded --timeout {args.timeout:g} s",
                      file=sys.stderr)
    if failures:
        print(f"check-examples: {failures} failure(s)", file=sys.stderr)
        return 1
    print("check-examples ok")
    return 0


# ----------------------------------------------------------------------
# chaos-smoke
# ----------------------------------------------------------------------

def chaos_smoke(argv: Sequence[str] = ()) -> int:
    """Replay randomized fault storms against the invariant harness.

    Draws ``--runs`` chaos scenarios
    (:func:`repro.cluster.invariants.chaos_scenario_spec`: a random
    scenario plus a random storm schedule and recovery policy), runs
    each twice through :func:`repro.cluster.invariants.verify_scenario`
    -- byte-identical JSON, scheduler-log replay, conservation and
    fault-bound checks -- and fails on the first violation.  The quick
    pre-merge slice of the chaos harness in
    ``tests/test_chaos.py``.
    """
    from repro.cluster.invariants import chaos_scenario_spec, verify_scenario

    parser = argparse.ArgumentParser(prog="repro chaos-smoke")
    parser.add_argument(
        "--runs", type=int, default=5,
        help="number of seeded chaos scenarios to verify (default: 5)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="BASE",
        help="first chaos seed; runs use BASE..BASE+runs-1",
    )
    args = parser.parse_args(list(argv))
    if args.runs < 1:
        print("error: --runs must be >= 1", file=sys.stderr)
        return 2
    for seed in range(args.seed, args.seed + args.runs):
        spec = chaos_scenario_spec(seed)
        try:
            result = verify_scenario(spec)
        except AssertionError as error:
            print(f"chaos seed {seed} ({spec.name!r}): {error}",
                  file=sys.stderr)
            return 1
        fault = result.fault_metrics()
        print(
            f"  seed {seed:>3}  policy {spec.recovery.policy:<18} "
            f"jobs {len(result.jobs):>3}  "
            f"faults {fault['fault_events']:>2}  "
            f"lost {fault['lost_work_s']:8.1f} s  ok"
        )
    print(f"chaos-smoke ok ({args.runs} runs)")
    return 0


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

COMMANDS = {
    "run": cmd_run,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "scenario": cmd_scenario,
    "trace": cmd_trace,
    "serve-batch": cmd_serve_batch,
    "cache": cmd_cache,
    "bench": cmd_bench,
    "bench-smoke": bench_smoke,
    "chaos-smoke": chaos_smoke,
    "check-docs": check_docs,
    "check-examples": check_examples,
}

#: Subcommands of ``python -m repro.cli``; the docs checker validates
#: every command reference in README.md / docs/*.md against this set.
SUBCOMMANDS = tuple(COMMANDS)


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in COMMANDS:
        return COMMANDS[argv[0]](argv[1:])
    return legacy_main(argv)


if __name__ == "__main__":
    sys.exit(main())
