"""Optimization-as-a-service: memoized, concurrent spec serving.

The service layer turns the one-shot experiment API into a serving
loop: a content-addressed :class:`~repro.service.store.ResultStore`
memoizes every (spec, seed) result, and a
:class:`~repro.service.executor.BatchExecutor` multiplexes thousands
of submissions over a worker pool with store-first admission,
in-flight deduplication, bounded-queue backpressure, and per-request
timeout/retry.  See ``docs/service.md`` for the full tour.
"""

from repro.service.executor import (
    EXECUTOR_KINDS,
    BatchExecutor,
    ServiceError,
    ServiceRequest,
    spec_from_request,
)
from repro.service.metrics import (
    COUNTER_NAMES,
    LatencyRecorder,
    ServiceCounters,
    ServiceReport,
    percentile,
)
from repro.service.store import STORE_VERSION, ResultStore

__all__ = [
    "BatchExecutor",
    "COUNTER_NAMES",
    "EXECUTOR_KINDS",
    "LatencyRecorder",
    "ResultStore",
    "STORE_VERSION",
    "ServiceCounters",
    "ServiceError",
    "ServiceReport",
    "ServiceRequest",
    "percentile",
    "spec_from_request",
]
