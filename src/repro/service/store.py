"""Content-addressed result store: the service's memoization tier.

A :class:`ResultStore` maps the SHA-256 content hash of a canonical
(spec, seed) JSON (:meth:`repro.api.spec.ExperimentSpec.content_hash`,
:meth:`repro.cluster.spec.ScenarioSpec.content_hash`) to the typed
result that spec produced.  Because every result in this repo is a
pure, deterministic function of its spec -- the invariant PR 4 and
PR 5 enforce test-by-test -- a stored result is interchangeable with a
fresh computation down to the byte, and the store can sit in front of
:func:`repro.api.runner.run_experiment` /
:func:`repro.cluster.engine.run_scenario` without changing anything
observable except wall-clock time.

Two tiers:

* an **in-memory LRU** of deserialized result objects (bounded by
  ``memory_entries``, eviction counted), and
* an **on-disk JSON tier** under ``root`` (optional): one
  version-stamped file per key, sharded by the first two hex digits --
  ``<root>/<key[:2]>/<key>.json``.

Durability rules:

* Writes are **atomic**: each entry is written to a unique temp file
  in the same directory and ``os.replace``-d into place, so readers
  never observe a torn file and concurrent writers of the same key
  degrade to last-write-wins.
* Reads are **paranoid**: a missing file, unparsable JSON, a version
  or key mismatch, or a result that fails to deserialize are all
  treated as a *miss* (counted in ``stats()["corrupt"]`` where a file
  existed), never an error -- a damaged cache can only cost time.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.api.spec import canonical_json

#: Stamped into every disk entry; bump on any layout change so old
#: stores are cleanly treated as cold rather than misread.
STORE_VERSION = 1

#: Unique suffix source for temp files (pid alone is not enough: two
#: threads of one process may write the same key concurrently).
_TMP_COUNTER = itertools.count()


def _rebuild_result(data: Dict[str, Any]):
    """Deserialize a stored result dict into its typed result object.

    Dispatches exactly like sweep-point deserialization: scenario
    results are marked ``"type": "scenario"``, everything else is an
    :class:`repro.api.results.ExperimentResult`.
    """
    from repro.api.results import _result_from_dict

    return _result_from_dict(data)


class ResultStore:
    """Content-addressed (spec, seed) -> result cache; see module doc.

    ``root=None`` gives a memory-only store (no persistence), which is
    what short-lived tests and pure-throughput benchmarks want;
    passing a directory adds the disk tier, created on first use.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        memory_entries: int = 1024,
    ):
        if memory_entries < 1:
            raise ValueError(
                f"memory_entries must be >= 1, got {memory_entries}"
            )
        self.root = Path(root) if root is not None else None
        self.memory_entries = memory_entries
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._counts = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
            "corrupt": 0,
        }

    # -- keys and paths ------------------------------------------------
    @staticmethod
    def key_for(spec) -> str:
        """The store key of a spec: its content hash."""
        return spec.content_hash()

    def path_for(self, key: str) -> Optional[Path]:
        """Where a key lives on disk (None for memory-only stores)."""
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.json"

    # -- reads ---------------------------------------------------------
    def get(self, spec):
        """The stored result for ``spec``, or None on a miss."""
        return self.get_by_key(self.key_for(spec))

    def get_by_key(self, key: str):
        """The stored result for a raw content hash, or None."""
        with self._lock:
            if key in self._memory:
                self._counts["memory_hits"] += 1
                self._memory.move_to_end(key)
                return self._memory[key]
        result = self._read_disk(key)
        with self._lock:
            if result is None:
                self._counts["misses"] += 1
                return None
            self._counts["disk_hits"] += 1
            self._remember(key, result)
        return result

    def contains(self, spec) -> bool:
        """True when ``spec`` would hit (either tier); counts nothing."""
        key = self.key_for(spec)
        with self._lock:
            if key in self._memory:
                return True
        path = self.path_for(key)
        return path is not None and path.exists()

    def _read_disk(self, key: str):
        path = self.path_for(key)
        if path is None:
            return None
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
            if (
                not isinstance(entry, dict)
                or entry.get("version") != STORE_VERSION
                or entry.get("key") != key
            ):
                raise ValueError("entry stamp mismatch")
            return _rebuild_result(entry["result"])
        except Exception:
            # Torn, truncated, stale-version, or mislabeled entry: a
            # damaged cache is a cold cache, never a crash.
            with self._lock:
                self._counts["corrupt"] += 1
            return None

    # -- writes --------------------------------------------------------
    def put(self, spec, result) -> str:
        """Store ``result`` under ``spec``'s content hash; returns it.

        The disk write is atomic (temp file + ``os.replace``), so a
        concurrent reader sees either the old entry or the new one,
        and concurrent writers of one key settle last-write-wins.
        """
        key = self.key_for(spec)
        path = self.path_for(key)
        if path is not None:
            entry = {
                "version": STORE_VERSION,
                "key": key,
                "result": result.to_dict(),
            }
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / (
                f".tmp-{os.getpid()}-{threading.get_ident()}"
                f"-{next(_TMP_COUNTER)}"
            )
            tmp.write_text(canonical_json(entry))
            os.replace(tmp, path)
        with self._lock:
            self._counts["puts"] += 1
            self._remember(key, result)
        return key

    def _remember(self, key: str, result) -> None:
        """Insert into the memory LRU (caller holds the lock)."""
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self._counts["evictions"] += 1

    # -- maintenance ---------------------------------------------------
    def keys(self) -> List[str]:
        """Every key present in either tier, sorted."""
        with self._lock:
            known = set(self._memory)
        known.update(self._disk_keys())
        return sorted(known)

    def _disk_keys(self) -> Iterator[str]:
        if self.root is None or not self.root.exists():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def clear(self) -> int:
        """Drop every entry from both tiers; returns how many keys."""
        keys = self.keys()
        with self._lock:
            self._memory.clear()
        for key in keys:
            path = self.path_for(key)
            if path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
        return len(keys)

    def stats(self) -> Dict[str, int]:
        """Counters plus current sizes of both tiers."""
        with self._lock:
            stats = dict(self._counts)
            stats["hits"] = (
                stats["memory_hits"] + stats["disk_hits"]
            )
            stats["memory_entries"] = len(self._memory)
        stats["disk_entries"] = sum(1 for _ in self._disk_keys())
        return stats
