"""Concurrent, deduplicating batch executor over the experiment API.

:class:`BatchExecutor` is the serving loop in front of
:func:`repro.api.runner.run_experiment` and
:func:`repro.cluster.engine.run_scenario`: submissions come in as
specs (experiment or scenario, distinguished structurally), and every
request is served exactly one of three ways:

1. **store-first admission** -- if the spec's content hash is in the
   :class:`~repro.service.store.ResultStore`, the stored result is
   returned without touching the pool;
2. **in-flight deduplication** -- if an identical spec is already
   being computed, the new request coalesces onto that computation's
   future (the ``deduplicated`` counter proves concurrent duplicates
   compute exactly once);
3. **computation** -- otherwise the spec is dispatched to a worker
   pool, bounded by ``queue_depth`` in-flight computations
   (``submit`` blocks when the bound is reached: backpressure, not an
   unbounded queue).

Failure handling reuses PR 8's sweep knobs with the same semantics:
an exception *inside* a request is deterministic and fails the request
immediately, while a worker that crashes or overruns
``point_timeout_s`` is resubmitted -- same payload -- up to
``retries`` more times (the pool is rebuilt after a crash) before the
request fails.  Timeouts need a real pool (``executor="process"`` can
also abandon the hung worker; thread pools can only abandon the wait).

Workers share compiled-kernel state the same way the scenario engine
does: each pool worker owns the process-wide warm caches of
:mod:`repro.perf.warmcache`, optionally pre-populated via
``warm_specs`` (the pool initializer runs them once per worker), and
every computation ships its worker's cache counters back so
:meth:`BatchExecutor.report` can export them into the
:class:`~repro.service.metrics.ServiceReport`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import TRACER, SpanEvent
from repro.service.metrics import (
    LatencyRecorder,
    ServiceCounters,
    ServiceReport,
)
from repro.service.store import ResultStore

#: Worker-pool kinds ``BatchExecutor`` accepts (mirrors ``run_sweep``).
EXECUTOR_KINDS = ("process", "thread", "serial")

#: How a request was served; stamped on every :class:`ServiceRequest`.
ROUTES = ("store", "dedup", "compute")


class ServiceError(RuntimeError):
    """A request failed to produce a result (after any retries)."""


# ----------------------------------------------------------------------
# Worker-side entry points (module level: they must pickle)
# ----------------------------------------------------------------------

def spec_from_request(data: Mapping[str, Any]):
    """Build the right spec type from one raw request mapping.

    Scenario specs are recognized structurally (only they have an
    ``arrivals`` process), the same dispatch the sweep machinery uses.
    """
    if "arrivals" in data:
        from repro.cluster.spec import ScenarioSpec

        return ScenarioSpec.from_dict(data)
    from repro.api.spec import ExperimentSpec

    return ExperimentSpec.from_dict(data)


def _cache_snapshot() -> Dict[str, Any]:
    """This worker's warm-cache counters, tagged by pid."""
    from repro.perf import warmcache

    snapshot: Dict[str, Any] = {"pid": os.getpid()}
    for name, stats in warmcache.stats().items():
        for key, value in stats.items():
            snapshot[f"{name}_{key}"] = value
    return snapshot


def _service_compute(payload: Dict[str, Any]) -> Tuple[str, Any, Dict]:
    """Run one request in a worker; never raises.

    Returns ``("ok", result, cache_stats)`` or ``("error", message,
    cache_stats)`` -- in-request exceptions are data, so the executor
    can tell a deterministic failure (no retry) from a pool-level
    casualty (raised by ``future.result``, retried).
    """
    try:
        spec = spec_from_request(payload)
        if hasattr(spec, "arrivals"):
            from repro.cluster.engine import run_scenario

            result = run_scenario(spec)
        else:
            from repro.api.runner import run_experiment

            result = run_experiment(spec)
        return ("ok", result, _cache_snapshot())
    except Exception as error:
        return (
            "error", f"{type(error).__name__}: {error}", _cache_snapshot()
        )


def _worker_warmup(payloads: Sequence[Dict[str, Any]]) -> None:
    """Pool initializer: pre-populate this worker's warm caches."""
    for payload in payloads:
        _service_compute(payload)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------

@dataclass
class ServiceRequest:
    """One accepted submission: its key, route, and pending future."""

    key: str
    route: str
    future: Future

    def result(self, timeout: Optional[float] = None):
        """The typed result (blocks); raises :class:`ServiceError`."""
        return self.future.result(timeout)

    @property
    def ok(self) -> bool:
        return (
            self.future.done() and self.future.exception() is None
        )


@dataclass
class _Computation:
    """One unique in-flight spec and everyone waiting on it."""

    key: str
    spec: object
    payload: Dict[str, Any]
    #: ``(client_future, submit_monotonic)`` pairs; appended under the
    #: executor lock, drained exactly once at resolution.
    waiters: List[Tuple[Future, float]] = field(default_factory=list)


class BatchExecutor:
    """Multiplex spec submissions over a pool with memoization + dedup.

    Parameters mirror :func:`repro.api.runner.run_sweep` where they
    overlap: ``executor`` picks the pool kind, ``max_workers`` its
    width, and ``point_timeout_s``/``retries`` buy PR 8's crash/hang
    containment per request.  ``store`` (optional) is consulted before
    any computation and updated after every successful one;
    ``queue_depth`` bounds concurrently admitted computations --
    ``submit`` blocks past it.  Usable as a context manager.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_workers: Optional[int] = None,
        executor: str = "process",
        queue_depth: int = 64,
        point_timeout_s: Optional[float] = None,
        retries: int = 0,
        warm_specs: Sequence[object] = (),
    ):
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; use one of "
                f"{EXECUTOR_KINDS}"
            )
        if queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._store = store
        self._kind = executor
        self._max_workers = max_workers or min(os.cpu_count() or 4, 8)
        self._queue_depth = queue_depth
        self.point_timeout_s = point_timeout_s
        self.retries = retries
        self._warm_payloads = [
            spec.to_dict() for spec in warm_specs
        ]
        self.counters = ServiceCounters()
        self.latencies = LatencyRecorder()
        self._lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._inflight: Dict[str, _Computation] = {}
        self._sema = threading.BoundedSemaphore(queue_depth)
        self._threads: List[threading.Thread] = []
        self._worker_caches: Dict[int, Dict[str, Any]] = {}
        self._shutdown = False
        self._started = time.monotonic()
        self._pool = None
        if self._kind != "serial":
            self._pool = self._make_pool()
        elif self._warm_payloads:
            _worker_warmup(self._warm_payloads)

    # -- pool plumbing -------------------------------------------------
    def _make_pool(self):
        if self._kind == "process":
            if self._warm_payloads:
                return ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    initializer=_worker_warmup,
                    initargs=(self._warm_payloads,),
                )
            return ProcessPoolExecutor(max_workers=self._max_workers)
        # One shared process: warm synchronously, once.
        if self._warm_payloads:
            _worker_warmup(self._warm_payloads)
            self._warm_payloads = []
        return ThreadPoolExecutor(max_workers=self._max_workers)

    def _rebuild_pool(self) -> None:
        """Replace a broken pool (crashed worker) with a fresh one."""
        with self._pool_lock:
            if self._shutdown or self._pool is None:
                return
            old, self._pool = self._pool, None
            try:
                old.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            processes = getattr(old, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
            self._pool = self._make_pool()

    def _submit_to_pool(self, payload: Dict[str, Any]) -> Future:
        if self._kind == "serial":
            done: Future = Future()
            done.set_result(_service_compute(payload))
            return done
        with self._pool_lock:
            if self._shutdown or self._pool is None:
                raise RuntimeError("executor is shut down")
            return self._pool.submit(_service_compute, payload)

    # -- submission ----------------------------------------------------
    def submit(self, spec) -> ServiceRequest:
        """Admit one spec; returns immediately unless backpressured.

        The returned request's future resolves to the typed result
        (`ExperimentResult` / `ScenarioResult`) or raises
        :class:`ServiceError`.  ``route`` records how it was served.
        """
        if self._shutdown:
            raise RuntimeError("executor is shut down")
        started = time.monotonic()
        key = spec.content_hash()
        self.counters.bump("requests")

        attached = self._attach_if_inflight(key, started)
        if attached is not None:
            return attached
        if self._store is not None:
            cached = self._store.get(spec)
            if cached is not None:
                self.counters.bump("store_hits")
                elapsed = time.monotonic() - started
                self.latencies.record(elapsed)
                self._trace_request(key, "store", elapsed)
                future: Future = Future()
                future.set_result(cached)
                return ServiceRequest(key=key, route="store", future=future)

        # Miss: become (or join) the computation.  The semaphore is the
        # bounded queue -- blocking here is the backpressure.
        self._sema.acquire()
        attached = self._attach_if_inflight(key, started, release=True)
        if attached is not None:
            return attached
        future = Future()
        comp = _Computation(
            key=key,
            spec=spec,
            payload=spec.to_dict(),
            waiters=[(future, started)],
        )
        with self._lock:
            self._inflight[key] = comp
        self.counters.bump("computed")
        if self._kind == "serial":
            self._run_computation(comp)
        else:
            thread = threading.Thread(
                target=self._run_computation, args=(comp,), daemon=True
            )
            self._threads.append(thread)
            thread.start()
        return ServiceRequest(key=key, route="compute", future=future)

    def _attach_if_inflight(
        self, key: str, started: float, release: bool = False
    ) -> Optional[ServiceRequest]:
        """Coalesce onto an in-flight duplicate, if there is one."""
        with self._lock:
            comp = self._inflight.get(key)
            if comp is None:
                return None
            future: Future = Future()
            comp.waiters.append((future, started))
        if release:
            self._sema.release()
        self.counters.bump("deduplicated")
        return ServiceRequest(key=key, route="dedup", future=future)

    def drain(self, specs: Sequence[object]) -> List[ServiceRequest]:
        """Submit every spec, wait for all, return requests in order."""
        requests = [self.submit(spec) for spec in specs]
        for request in requests:
            try:
                request.future.result()
            except ServiceError:
                pass  # recorded on the request; the caller inspects it
        return requests

    # -- computation lifecycle ----------------------------------------
    def _run_computation(self, comp: _Computation) -> None:
        """Compute one unique spec with timeout/retry containment."""
        attempts = 0
        last_error = "ServiceError: no attempt ran"
        while attempts <= self.retries:
            attempts += 1
            if attempts > 1:
                self.counters.bump("retries")
            try:
                pool_future = self._submit_to_pool(comp.payload)
            except RuntimeError as error:
                last_error = str(error)
                break
            try:
                outcome = pool_future.result(
                    timeout=self.point_timeout_s
                )
            except FuturesTimeoutError:
                self.counters.bump("timeouts")
                pool_future.cancel()
                last_error = (
                    f"TimeoutError: request exceeded point_timeout_s="
                    f"{self.point_timeout_s:g}"
                )
                continue
            except Exception as error:
                # The worker died, not the request: rebuild and retry.
                last_error = f"{type(error).__name__}: {error}"
                if self._kind == "process":
                    self._rebuild_pool()
                continue
            status, value, cache_stats = outcome
            self._note_worker_cache(cache_stats)
            if status == "ok":
                self._resolve(comp, value)
                return
            # In-request failure: deterministic, retrying cannot help.
            last_error = value
            break
        self._fail(comp, last_error)

    def _resolve(self, comp: _Computation, result) -> None:
        if self._store is not None:
            self._store.put(comp.spec, result)
        waiters = self._detach(comp)
        now = time.monotonic()
        for index, (future, started) in enumerate(waiters):
            elapsed = now - started
            self.latencies.record(elapsed)
            self._trace_request(
                comp.key, "compute" if index == 0 else "dedup", elapsed
            )
            future.set_result(result)

    def _fail(self, comp: _Computation, message: str) -> None:
        self.counters.bump("errors")
        waiters = self._detach(comp)
        now = time.monotonic()
        for index, (future, started) in enumerate(waiters):
            elapsed = now - started
            self.latencies.record(elapsed)
            self._trace_request(
                comp.key,
                "compute" if index == 0 else "dedup",
                elapsed,
                error=True,
            )
            future.set_exception(ServiceError(message))

    def _trace_request(
        self,
        key: str,
        route: str,
        elapsed_s: float,
        error: bool = False,
    ) -> None:
        """Mirror one finished request into the active trace, if any.

        Requests resolve asynchronously, so the span is recorded whole
        at completion: the duration is exactly what went into the
        :class:`LatencyRecorder`, and the start is back-dated from the
        recorder's clock.  No-op (no allocation) when tracing is off.
        """
        recorder = TRACER.recorder
        if recorder is None:
            return
        end = recorder.now()
        recorder.add_span(
            SpanEvent(
                name="service.request",
                cat="service",
                start_s=max(end - elapsed_s, 0.0),
                dur_s=elapsed_s,
                depth=0,
                tid=threading.get_ident(),
                seq=recorder.next_seq(),
                args={"route": route, "key": key[:12], "error": error},
            )
        )
        recorder.bump(f"service.route.{route}")
        if error:
            recorder.bump("service.errors")

    def _detach(self, comp: _Computation) -> List[Tuple[Future, float]]:
        """Retire a computation; late duplicates go to the store."""
        with self._lock:
            self._inflight.pop(comp.key, None)
            waiters = list(comp.waiters)
        self._sema.release()
        return waiters

    def _note_worker_cache(self, stats: Mapping[str, Any]) -> None:
        pid = int(stats.get("pid", 0))
        with self._lock:
            self._worker_caches[pid] = dict(stats)

    # -- reporting and teardown ---------------------------------------
    def worker_cache_stats(self) -> Dict[str, Any]:
        """Warm-cache counters summed over the latest per-worker view."""
        with self._lock:
            snapshots = list(self._worker_caches.values())
        totals: Dict[str, Any] = {"workers": len(snapshots)}
        for snapshot in snapshots:
            for key, value in snapshot.items():
                if key == "pid":
                    continue
                totals[key] = totals.get(key, 0) + value
        return totals

    def report(self, wall_s: Optional[float] = None) -> ServiceReport:
        """Snapshot everything into a :class:`ServiceReport`.

        ``wall_s`` defaults to the executor's lifetime so far, which is
        the right denominator for drain-style batch runs.
        """
        if wall_s is None:
            wall_s = time.monotonic() - self._started
        return ServiceReport.build(
            self.counters,
            self.latencies,
            wall_s=wall_s,
            store_stats=(
                self._store.stats() if self._store is not None else None
            ),
            warm_cache=self.worker_cache_stats(),
        )

    def shutdown(self, wait: bool = True) -> None:
        self._shutdown = True
        if wait:
            for thread in list(self._threads):
                thread.join()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
