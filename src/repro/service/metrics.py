"""Typed service counters and the serialized ``ServiceReport``.

The serving layer (:mod:`repro.service.store`,
:mod:`repro.service.executor`) is instrumented through two small
mutable accumulators -- :class:`ServiceCounters` for event counts and
:class:`LatencyRecorder` for per-request latency samples -- that
snapshot into a frozen, JSON-serializable :class:`ServiceReport`.

The report is the service-mode analogue of a benchmark record: request
mix (hits / dedups / computes / errors), throughput in specs per
second, and the p50/p95/p99 latency tail, plus the store's and the
warm caches' own counters so one object answers "what did the service
actually do".

Doctest tour::

    >>> from repro.service.metrics import LatencyRecorder, ServiceCounters
    >>> counters = ServiceCounters()
    >>> counters.bump("store_hits"); counters.bump("requests", 2)
    >>> counters.as_dict()["store_hits"], counters.as_dict()["requests"]
    (1, 2)
    >>> recorder = LatencyRecorder()
    >>> for ms in (1, 2, 3, 4, 100): recorder.record(ms / 1e3)
    >>> recorder.percentile(0.5)
    0.003
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Counter names a :class:`ServiceCounters` accumulates.  One place, so
#: the executor, the report, and the tests agree on the vocabulary.
COUNTER_NAMES = (
    "requests",        # submissions accepted by the executor
    "store_hits",      # served straight from the result store
    "deduplicated",    # coalesced onto an already-in-flight computation
    "computed",        # computations actually launched (unique misses)
    "errors",          # computations that ended in an error
    "timeouts",        # per-request timeout expiries (before any retry)
    "retries",         # resubmissions after a crash or timeout
)


class ServiceCounters:
    """Thread-safe event counters for the serving layer."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    def bump(self, name: str, amount: int = 1) -> None:
        if name not in self._counts:
            raise KeyError(
                f"unknown service counter {name!r}; "
                f"known: {sorted(self._counts)}"
            )
        with self._lock:
            self._counts[name] += amount

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` by the nearest-rank method.

    Deterministic and exact on small sample sets (no interpolation), so
    reports are reproducible down to the byte.  ``samples`` need not be
    sorted; an empty sequence maps to 0.0.  NaN samples are rejected --
    they would sort unpredictably and silently poison the rank.

    >>> percentile([4.0, 1.0, 3.0, 2.0], 0.5)
    2.0
    >>> percentile([4.0, 1.0, 3.0, 2.0], 0.99)
    4.0
    >>> percentile([], 0.5)
    0.0
    >>> percentile([7.5], 1.0)
    7.5
    >>> percentile([1.0, float("nan")], 0.5)
    Traceback (most recent call last):
        ...
    ValueError: samples must not contain NaN
    """
    if not samples:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    if any(math.isnan(sample) for sample in samples):
        raise ValueError("samples must not contain NaN")
    ordered = sorted(samples)
    rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
    return ordered[rank]


class LatencyRecorder:
    """Per-request latency samples with percentile snapshots."""

    def __init__(self):
        self._lock = threading.Lock()
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, q: float) -> float:
        with self._lock:
            return percentile(self._samples, q)

    def snapshot(self) -> Dict[str, float]:
        """The p50/p95/p99 tail in milliseconds, rounded for JSON."""
        with self._lock:
            samples = list(self._samples)
        return {
            f"p{int(q * 100)}_ms": round(percentile(samples, q) * 1e3, 4)
            for q in (0.5, 0.95, 0.99)
        }


@dataclass(frozen=True)
class ServiceReport:
    """One serving run, as numbers -- JSON-serializable.

    ``requests`` splits exactly into ``store_hits + deduplicated +
    computed`` (every accepted submission is served one of those three
    ways); ``errors``/``timeouts``/``retries`` describe the computed
    slice's failure handling.  ``store`` and ``warm_cache`` carry the
    result store's and the per-worker kernel caches' own counters at
    snapshot time (empty dicts when the run had neither).
    """

    requests: int = 0
    store_hits: int = 0
    deduplicated: int = 0
    computed: int = 0
    errors: int = 0
    timeouts: int = 0
    retries: int = 0
    wall_s: float = 0.0
    specs_per_s: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    store: Dict[str, Any] = field(default_factory=dict)
    warm_cache: Dict[str, Any] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without a fresh computation."""
        if self.requests <= 0:
            return 0.0
        return (self.store_hits + self.deduplicated) / self.requests

    @classmethod
    def build(
        cls,
        counters: ServiceCounters,
        latencies: LatencyRecorder,
        wall_s: float,
        store_stats: Optional[Mapping[str, Any]] = None,
        warm_cache: Optional[Mapping[str, Any]] = None,
    ) -> "ServiceReport":
        """Snapshot the accumulators into a frozen report."""
        counts = counters.as_dict()
        tail = latencies.snapshot()
        return cls(
            wall_s=round(wall_s, 6),
            specs_per_s=round(counts["requests"] / max(wall_s, 1e-12), 2),
            latency_p50_ms=tail["p50_ms"],
            latency_p95_ms=tail["p95_ms"],
            latency_p99_ms=tail["p99_ms"],
            store=dict(store_stats or {}),
            warm_cache=dict(warm_cache or {}),
            **counts,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            f.name: (
                dict(getattr(self, f.name))
                if f.name in ("store", "warm_cache")
                else getattr(self, f.name)
            )
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceReport":
        return cls(**dict(data))

    def format_lines(self) -> List[str]:
        """A human-readable summary (used by ``repro serve-batch``)."""
        lines = [
            f"requests      : {self.requests} "
            f"({self.store_hits} store hits, "
            f"{self.deduplicated} deduplicated, "
            f"{self.computed} computed, {self.errors} errors)",
            f"throughput    : {self.specs_per_s:g} specs/s "
            f"over {self.wall_s:.3f} s "
            f"(hit rate {self.hit_rate * 100:.0f}%)",
            f"latency       : p50 {self.latency_p50_ms:g} ms, "
            f"p95 {self.latency_p95_ms:g} ms, "
            f"p99 {self.latency_p99_ms:g} ms",
        ]
        if self.timeouts or self.retries:
            lines.append(
                f"recovery      : {self.timeouts} timeouts, "
                f"{self.retries} retries"
            )
        if self.store:
            lines.append(
                "store         : "
                + ", ".join(
                    f"{key}={self.store[key]}"
                    for key in sorted(self.store)
                )
            )
        if self.warm_cache:
            lines.append(
                "warm caches   : "
                + ", ".join(
                    f"{key}={self.warm_cache[key]}"
                    for key in sorted(self.warm_cache)
                )
            )
        return lines
