"""TopoOpt reproduction: co-optimizing network topology and parallelization.

A from-scratch Python implementation of the system described in
*TopoOpt: Co-optimizing Network Topology and Parallelization Strategy
for Distributed Training Jobs* (NSDI 2023), including the optimization
core (TotientPerms, SelectPermutations, TopologyFinder, coin-change
routing, alternating optimization), the workload and network substrates,
an event-driven fluid flow simulator, and the full evaluation harness.

Quick start::

    from repro import (
        build_model, hybrid_strategy, extract_traffic,
        topology_finder, TopoOptFabric, simulate_iteration,
    )

    model = build_model("DLRM", scale="testbed")
    strategy = hybrid_strategy(model, num_servers=12)
    traffic = extract_traffic(model, strategy, batch_per_gpu=64,
                              gpus_per_server=1)
    result = topology_finder(12, 4, traffic.allreduce_groups,
                             traffic.mp_matrix)
    fabric = TopoOptFabric(result, link_bandwidth_bps=25e9)
    breakdown = simulate_iteration(fabric, traffic, compute_s=0.05)
    print(breakdown.total_s)
"""

from repro.core import (
    AllReduceGroup,
    AlternatingOptimizer,
    AlternatingResult,
    CoinChangeRouter,
    coprime_strides,
    euler_phi,
    ocs_reconfig,
    prime_strides,
    ring_permutation,
    select_permutations,
    topology_finder,
    totient_perms,
    TopologyFinderResult,
)
from repro.models import (
    A100,
    DNNModel,
    GPUSpec,
    Layer,
    LayerKind,
    build_model,
    compute_time_seconds,
)
from repro.network import (
    DirectConnectTopology,
    ExpanderFabric,
    FatTreeFabric,
    HierarchicalTopoOptFabric,
    IdealSwitchFabric,
    LeafSpineFabric,
    OversubscribedFatTreeFabric,
    SipMLFabric,
    TopoOptFabric,
    architecture_cost,
    cost_equivalent_fattree_bandwidth,
)
from repro.parallel import (
    LayerPlacement,
    MCMCSearch,
    ParallelizationStrategy,
    PlacementKind,
    data_parallel_strategy,
    extract_traffic,
    hybrid_strategy,
)
from repro.sim import (
    Flow,
    FluidNetwork,
    IterationBreakdown,
    ReconfigurableFabricSimulator,
    SharedClusterSimulator,
    simulate_iteration,
    simulate_phase,
)
from repro.testbed import TestbedEmulator, TimeToAccuracyModel

__version__ = "1.0.0"

__all__ = [
    "AllReduceGroup",
    "AlternatingOptimizer",
    "AlternatingResult",
    "CoinChangeRouter",
    "coprime_strides",
    "euler_phi",
    "ocs_reconfig",
    "prime_strides",
    "ring_permutation",
    "select_permutations",
    "topology_finder",
    "totient_perms",
    "TopologyFinderResult",
    "A100",
    "DNNModel",
    "GPUSpec",
    "Layer",
    "LayerKind",
    "build_model",
    "compute_time_seconds",
    "DirectConnectTopology",
    "ExpanderFabric",
    "FatTreeFabric",
    "HierarchicalTopoOptFabric",
    "IdealSwitchFabric",
    "LeafSpineFabric",
    "OversubscribedFatTreeFabric",
    "SipMLFabric",
    "TopoOptFabric",
    "architecture_cost",
    "cost_equivalent_fattree_bandwidth",
    "LayerPlacement",
    "MCMCSearch",
    "ParallelizationStrategy",
    "PlacementKind",
    "data_parallel_strategy",
    "extract_traffic",
    "hybrid_strategy",
    "Flow",
    "FluidNetwork",
    "IterationBreakdown",
    "ReconfigurableFabricSimulator",
    "SharedClusterSimulator",
    "simulate_iteration",
    "simulate_phase",
    "TestbedEmulator",
    "TimeToAccuracyModel",
    "__version__",
]
