"""Roofline compute-time model standing in for real accelerators.

The paper's testbed uses NVIDIA A100 GPUs; the simulations assume servers
with four A100s.  For the reproduction we only need compute *time*, so a
single effective-throughput roofline suffices: forward FLOPs at the
achievable fraction of peak, backward modelled as 2x forward (the usual
training accounting), plus a fixed per-iteration overhead capturing
kernel-launch and framework costs (Appendix D notes this dominates at
infinite bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.base import DNNModel


@dataclass(frozen=True)
class GPUSpec:
    """An accelerator described by its achievable training throughput."""

    name: str
    peak_flops: float
    efficiency: float  # achievable fraction of peak on real layers
    per_iteration_overhead_s: float = 1e-3

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.efficiency

    def __post_init__(self):
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")


#: A100 with TF32/AMP training: 312 TFLOPS peak, ~35% achieved on real
#: models -- the commonly reported MLPerf-class utilization.
A100 = GPUSpec(name="A100", peak_flops=312e12, efficiency=0.35)

BACKWARD_FLOPS_MULTIPLIER = 2.0


def compute_time_seconds(
    model: DNNModel,
    batch_per_gpu: int,
    gpus_per_server: int = 4,
    gpu: GPUSpec = A100,
) -> float:
    """Per-iteration compute time of one server's shard.

    With data parallelism every server processes ``batch_per_gpu *
    gpus_per_server`` samples through the full model; the GPUs inside a
    server work independently so server time equals single-GPU time on
    ``batch_per_gpu`` samples.
    """
    if batch_per_gpu <= 0:
        raise ValueError(f"batch size must be positive, got {batch_per_gpu}")
    if gpus_per_server <= 0:
        raise ValueError("gpus_per_server must be positive")
    forward = model.total_flops_per_sample * batch_per_gpu
    total = forward * (1.0 + BACKWARD_FLOPS_MULTIPLIER)
    return total / gpu.effective_flops + gpu.per_iteration_overhead_s


def layer_compute_time_seconds(
    flops_per_sample: float,
    batch: int,
    gpu: GPUSpec = A100,
) -> float:
    """Forward+backward time of a single layer shard on one GPU."""
    total = flops_per_sample * batch * (1.0 + BACKWARD_FLOPS_MULTIPLIER)
    return total / gpu.effective_flops
