"""Layer and model abstractions shared by the whole workload zoo.

A DNN is a flat sequence of layers.  For the purposes of topology /
parallelization co-optimization the only facts that matter about a layer
are (i) how many bytes of parameters it owns (AllReduce volume when data
parallel), (ii) how many FLOPs it costs per training sample (compute
time), and (iii) how many activation bytes per sample cross a partition
boundary if the layer is placed remotely (MP volume) -- exactly the
quantities the paper's Appendix D reasons with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

BYTES_PER_PARAM = 4  # fp32 master weights; the paper's DLRM example uses 8
BYTES_PER_ACTIVATION = 4


class LayerKind(enum.Enum):
    """Coarse operator classes; they determine legal placements."""

    DENSE = "dense"
    CONV = "conv"
    EMBEDDING = "embedding"
    ATTENTION = "attention"
    NORM = "norm"
    POOL = "pool"
    INTERACTION = "interaction"


@dataclass(frozen=True)
class Layer:
    """One operator of a DNN.

    Attributes
    ----------
    name:
        Unique layer name within the model.
    kind:
        Operator class (embeddings are the MP-placeable layers).
    params_bytes:
        Bytes of trainable parameters the layer owns.
    flops_per_sample:
        Forward-pass FLOPs for one sample; backward is modelled as 2x.
    activation_bytes_per_sample:
        Bytes of output activations for one sample -- the unit of MP
        traffic if the layer's owner differs from the sample's worker.
    """

    name: str
    kind: LayerKind
    params_bytes: float
    flops_per_sample: float
    activation_bytes_per_sample: float

    def __post_init__(self):
        if self.params_bytes < 0 or self.flops_per_sample < 0:
            raise ValueError(f"layer {self.name}: negative size/flops")
        if self.activation_bytes_per_sample < 0:
            raise ValueError(f"layer {self.name}: negative activation size")


@dataclass(frozen=True)
class DNNModel:
    """A DNN workload: named layer sequence plus its default batch size."""

    name: str
    layers: Tuple[Layer, ...]
    default_batch_per_gpu: int

    def __post_init__(self):
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate layer names")
        if self.default_batch_per_gpu <= 0:
            raise ValueError(f"{self.name}: batch size must be positive")

    # ------------------------------------------------------------------
    @property
    def total_params_bytes(self) -> float:
        return sum(layer.params_bytes for layer in self.layers)

    @property
    def total_flops_per_sample(self) -> float:
        return sum(layer.flops_per_sample for layer in self.layers)

    def layers_of_kind(self, kind: LayerKind) -> List[Layer]:
        return [layer for layer in self.layers if layer.kind == kind]

    @property
    def embedding_layers(self) -> List[Layer]:
        return self.layers_of_kind(LayerKind.EMBEDDING)

    @property
    def dense_params_bytes(self) -> float:
        """Parameter bytes outside embedding tables (the replicable part)."""
        return sum(
            layer.params_bytes
            for layer in self.layers
            if layer.kind != LayerKind.EMBEDDING
        )

    @property
    def embedding_params_bytes(self) -> float:
        return sum(layer.params_bytes for layer in self.embedding_layers)

    def layer(self, name: str) -> Layer:
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"{self.name} has no layer named {name!r}")


def dense_layer(
    name: str, in_features: int, out_features: int, bias: bool = True
) -> Layer:
    """Fully connected layer: params, 2*in*out FLOPs, out activations."""
    params = in_features * out_features + (out_features if bias else 0)
    return Layer(
        name=name,
        kind=LayerKind.DENSE,
        params_bytes=params * BYTES_PER_PARAM,
        flops_per_sample=2.0 * in_features * out_features,
        activation_bytes_per_sample=out_features * BYTES_PER_ACTIVATION,
    )


def conv_layer(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    out_hw: int,
) -> Layer:
    """2D convolution: K*K*Cin*Cout params, 2*K^2*Cin*Cout*H*W FLOPs."""
    params = kernel * kernel * in_channels * out_channels + out_channels
    flops = 2.0 * kernel * kernel * in_channels * out_channels * out_hw * out_hw
    activation = out_channels * out_hw * out_hw * BYTES_PER_ACTIVATION
    return Layer(
        name=name,
        kind=LayerKind.CONV,
        params_bytes=params * BYTES_PER_PARAM,
        flops_per_sample=flops,
        activation_bytes_per_sample=activation,
    )


def embedding_layer(
    name: str, rows: int, dim: int, lookups_per_sample: int = 1
) -> Layer:
    """Embedding table: rows*dim params, gather FLOPs, dim activations.

    A lookup is a sparse gather, so FLOPs are tiny (one row copy per
    lookup); the dominant effect is the parameter footprint and the
    per-sample activation vector it produces.
    """
    params = rows * dim
    return Layer(
        name=name,
        kind=LayerKind.EMBEDDING,
        params_bytes=params * BYTES_PER_PARAM,
        flops_per_sample=2.0 * dim * lookups_per_sample,
        activation_bytes_per_sample=dim
        * lookups_per_sample
        * BYTES_PER_ACTIVATION,
    )


def attention_block(
    name: str, hidden: int, seq_len: int, heads: int, ffn_multiplier: int = 4
) -> List[Layer]:
    """One transformer block: self-attention + feed-forward sublayers.

    Parameter count: 4*h^2 (QKV + output projections) plus
    2*ffn_multiplier*h^2 (the two FFN projections), the standard
    transformer accounting.  FLOPs include the seq^2 attention matmuls.
    """
    attn_params = 4 * hidden * hidden
    attn_flops = (
        2.0 * 4 * hidden * hidden * seq_len  # projections over the sequence
        + 2.0 * 2 * seq_len * seq_len * hidden  # QK^T and attn*V
    )
    ffn_params = 2 * ffn_multiplier * hidden * hidden
    ffn_flops = 2.0 * 2 * ffn_multiplier * hidden * hidden * seq_len
    activation = seq_len * hidden * BYTES_PER_ACTIVATION
    return [
        Layer(
            name=f"{name}.attn",
            kind=LayerKind.ATTENTION,
            params_bytes=attn_params * BYTES_PER_PARAM,
            flops_per_sample=attn_flops,
            activation_bytes_per_sample=activation,
        ),
        Layer(
            name=f"{name}.ffn",
            kind=LayerKind.DENSE,
            params_bytes=ffn_params * BYTES_PER_PARAM,
            flops_per_sample=ffn_flops,
            activation_bytes_per_sample=activation,
        ),
    ]


def stack(name: str, layer_groups: Iterable[Sequence[Layer]]) -> List[Layer]:
    """Flatten layer groups, asserting the names stay unique."""
    flat: List[Layer] = []
    for group in layer_groups:
        flat.extend(group)
    names = [layer.name for layer in flat]
    if len(set(names)) != len(names):
        raise ValueError(f"{name}: duplicate layer names when stacking")
    return flat
