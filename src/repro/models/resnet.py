"""ResNet-50 (He et al.): the compute-bound baseline of the evaluation.

Standard bottleneck residual architecture for 224x224 ImageNet inputs.
ResNet-50 has a modest 25.6M parameters against ~4 GFLOPs/sample, so its
AllReduce is small relative to compute -- Figure 11f shows all fabrics
roughly tied, which the reproduction inherits from this layer inventory.
"""

from __future__ import annotations

from typing import List

from repro.models.base import (
    BYTES_PER_ACTIVATION,
    DNNModel,
    Layer,
    LayerKind,
    conv_layer,
    dense_layer,
)

# (blocks, in_channels, mid_channels, out_channels, feature map size)
_STAGES = [
    (3, 64, 64, 256, 56),
    (4, 256, 128, 512, 28),
    (6, 512, 256, 1024, 14),
    (3, 1024, 512, 2048, 7),
]


def _bottleneck(
    name: str, in_ch: int, mid_ch: int, out_ch: int, hw: int, downsample: bool
) -> List[Layer]:
    layers = [
        conv_layer(f"{name}.conv1", in_ch, mid_ch, 1, hw),
        conv_layer(f"{name}.conv2", mid_ch, mid_ch, 3, hw),
        conv_layer(f"{name}.conv3", mid_ch, out_ch, 1, hw),
    ]
    if downsample:
        layers.append(conv_layer(f"{name}.downsample", in_ch, out_ch, 1, hw))
    return layers


def build_resnet50(batch_per_gpu: int = 128) -> DNNModel:
    """Construct ResNet-50 for 224x224 inputs (List 1: batch 128/GPU)."""
    layers: List[Layer] = [conv_layer("stem.conv", 3, 64, 7, 112)]
    layers.append(
        Layer(
            name="stem.pool",
            kind=LayerKind.POOL,
            params_bytes=0.0,
            flops_per_sample=64 * 56 * 56 * 9.0,
            activation_bytes_per_sample=64 * 56 * 56 * BYTES_PER_ACTIVATION,
        )
    )
    for stage_idx, (blocks, in_ch, mid_ch, out_ch, hw) in enumerate(_STAGES):
        for block in range(blocks):
            block_in = in_ch if block == 0 else out_ch
            layers.extend(
                _bottleneck(
                    f"stage{stage_idx}.block{block}",
                    block_in,
                    mid_ch,
                    out_ch,
                    hw,
                    downsample=(block == 0),
                )
            )
    layers.append(
        Layer(
            name="avgpool",
            kind=LayerKind.POOL,
            params_bytes=0.0,
            flops_per_sample=2048 * 7 * 7.0,
            activation_bytes_per_sample=2048 * BYTES_PER_ACTIVATION,
        )
    )
    layers.append(dense_layer("fc", 2048, 1000))
    return DNNModel(
        name="ResNet50",
        layers=tuple(layers),
        default_batch_per_gpu=batch_per_gpu,
    )
