"""VGG-16 / VGG-19 (Simonyan & Zisserman): the classic AllReduce-heavy CNN.

VGG's three enormous fully connected layers (the first alone holds 102M
parameters) make it strongly communication-bound under data parallelism
-- the paper uses VGG16 in the large-scale simulations (Figure 11b,
2.8x over Fat-tree) and VGG19 for the time-to-accuracy testbed run
(Figure 20).
"""

from __future__ import annotations

from typing import List

from repro.models.base import DNNModel, Layer, conv_layer, dense_layer

# Channel plan per block: (convs, out_channels, output feature-map size).
_VGG16_BLOCKS = [
    (2, 64, 224),
    (2, 128, 112),
    (3, 256, 56),
    (3, 512, 28),
    (3, 512, 14),
]
_VGG19_BLOCKS = [
    (2, 64, 224),
    (2, 128, 112),
    (4, 256, 56),
    (4, 512, 28),
    (4, 512, 14),
]


def _build(name: str, blocks, batch_per_gpu: int) -> DNNModel:
    layers: List[Layer] = []
    in_ch = 3
    for block_idx, (convs, out_ch, hw) in enumerate(blocks):
        for conv_idx in range(convs):
            layers.append(
                conv_layer(
                    f"block{block_idx}.conv{conv_idx}", in_ch, out_ch, 3, hw
                )
            )
            in_ch = out_ch
    layers.append(dense_layer("fc1", 512 * 7 * 7, 4096))
    layers.append(dense_layer("fc2", 4096, 4096))
    layers.append(dense_layer("fc3", 4096, 1000))
    return DNNModel(
        name=name, layers=tuple(layers), default_batch_per_gpu=batch_per_gpu
    )


def build_vgg(variant: int = 16, batch_per_gpu: int = 64) -> DNNModel:
    """Construct VGG-16 or VGG-19 (List 1: batch 64/GPU in simulation)."""
    if variant == 16:
        return _build("VGG16", _VGG16_BLOCKS, batch_per_gpu)
    if variant == 19:
        return _build("VGG19", _VGG19_BLOCKS, batch_per_gpu)
    raise ValueError(f"unsupported VGG variant {variant}; use 16 or 19")
