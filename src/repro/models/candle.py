"""CANDLE Uno: cancer drug-response prediction MLP (ECP-CANDLE Pilot1).

CANDLE Uno is a wide multi-tower MLP: several feature encoders followed
by a deep fused tower.  At the paper's section 5.3 scale (dense layers of
16384 units) the model is heavily communication-bound under data
parallelism, which is why Figure 11a shows TopoOpt/Ideal/SiP-ML tied and
Fat-tree ~2.8x slower -- the traffic is almost pure AllReduce.
"""

from __future__ import annotations

from typing import List

from repro.models.base import DNNModel, Layer, dense_layer


def build_candle(
    num_dense_layers: int = 8,
    dense_layer_size: int = 16384,
    num_feature_layers: int = 16,
    feature_layer_size: int = 16384,
    input_features: int = 942,
    batch_per_gpu: int = 256,
) -> DNNModel:
    """Construct CANDLE Uno with the paper's List 1 parameterization."""
    layers: List[Layer] = []
    previous = input_features
    for i in range(num_feature_layers):
        layers.append(
            dense_layer(f"feature.{i}", previous, feature_layer_size)
        )
        previous = feature_layer_size
    for i in range(num_dense_layers):
        layers.append(dense_layer(f"tower.{i}", previous, dense_layer_size))
        previous = dense_layer_size
    layers.append(dense_layer("tower.out", previous, 1))
    return DNNModel(
        name="CANDLE",
        layers=tuple(layers),
        default_batch_per_gpu=batch_per_gpu,
    )
