"""DNN workload models: the six networks evaluated in the paper.

Each model is described as a sequence of :class:`~repro.models.base.Layer`
objects carrying parameter bytes, FLOPs per sample, and activation bytes
per sample -- everything the parallelization-strategy search and the
traffic extractor need.  Configurations follow List 1 of the paper
(Appendix D): separate presets for the large-scale simulations (section
5.3), the shared-cluster study (section 5.6), and the 12-node testbed
(section 6).
"""

from repro.models.base import DNNModel, Layer, LayerKind
from repro.models.compute import GPUSpec, A100, compute_time_seconds
from repro.models.dlrm import build_dlrm
from repro.models.candle import build_candle
from repro.models.bert import build_bert
from repro.models.ncf import build_ncf
from repro.models.resnet import build_resnet50
from repro.models.vgg import build_vgg
from repro.models.configs import (
    MODEL_BUILDERS,
    ModelConfig,
    SIMULATION_CONFIGS,
    SHARED_CLUSTER_CONFIGS,
    TESTBED_CONFIGS,
    build_model,
)

__all__ = [
    "DNNModel",
    "Layer",
    "LayerKind",
    "GPUSpec",
    "A100",
    "compute_time_seconds",
    "build_dlrm",
    "build_candle",
    "build_bert",
    "build_ncf",
    "build_resnet50",
    "build_vgg",
    "MODEL_BUILDERS",
    "ModelConfig",
    "SIMULATION_CONFIGS",
    "SHARED_CLUSTER_CONFIGS",
    "TESTBED_CONFIGS",
    "build_model",
]
