"""List 1 model configurations: simulation, shared-cluster, and testbed.

The paper evaluates each model at three scales (Appendix D, List 1).
:data:`SIMULATION_CONFIGS` reproduces the section 5.3 dedicated-cluster
presets, :data:`SHARED_CLUSTER_CONFIGS` the section 5.6 presets, and
:data:`TESTBED_CONFIGS` the 12-node prototype presets of section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.models.base import DNNModel
from repro.models.bert import build_bert
from repro.models.candle import build_candle
from repro.models.dlrm import build_dlrm
from repro.models.ncf import build_ncf
from repro.models.resnet import build_resnet50
from repro.models.vgg import build_vgg

MODEL_BUILDERS: Dict[str, Callable[..., DNNModel]] = {
    "DLRM": build_dlrm,
    "CANDLE": build_candle,
    "BERT": build_bert,
    "NCF": build_ncf,
    "ResNet50": lambda **kw: build_resnet50(**kw),
    "VGG16": lambda **kw: build_vgg(16, **kw),
    "VGG19": lambda **kw: build_vgg(19, **kw),
}


@dataclass(frozen=True)
class ModelConfig:
    """A named, reusable model parameterization."""

    model: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> DNNModel:
        builder = MODEL_BUILDERS.get(self.model)
        if builder is None:
            raise KeyError(
                f"unknown model {self.model!r}; "
                f"known: {sorted(MODEL_BUILDERS)}"
            )
        return builder(**self.kwargs)


#: Section 5.3 (dedicated 128-server cluster) presets.
SIMULATION_CONFIGS: Dict[str, ModelConfig] = {
    "VGG16": ModelConfig("VGG16", {"batch_per_gpu": 64}),
    "ResNet50": ModelConfig("ResNet50", {"batch_per_gpu": 128}),
    "BERT": ModelConfig(
        "BERT",
        {
            "num_blocks": 12,
            "hidden": 1024,
            "seq_len": 64,
            "heads": 16,
            "embedding_size": 512,
            "batch_per_gpu": 16,
        },
    ),
    "DLRM": ModelConfig(
        "DLRM",
        {
            "num_dense_layers": 8,
            "dense_layer_size": 2048,
            "num_feature_layers": 16,
            "feature_layer_size": 4096,
            "embedding_dim": 128,
            "embedding_rows": 10_000_000,
            "num_embedding_tables": 64,
            "batch_per_gpu": 128,
        },
    ),
    "CANDLE": ModelConfig(
        "CANDLE",
        {
            "num_dense_layers": 8,
            "dense_layer_size": 16384,
            "num_feature_layers": 16,
            "feature_layer_size": 16384,
            "batch_per_gpu": 256,
        },
    ),
    "NCF": ModelConfig(
        "NCF",
        {
            "num_dense_layers": 8,
            "dense_layer_size": 4096,
            "num_user_tables": 32,
            "num_item_tables": 32,
            "users_per_table": 1_000_000,
            "items_per_table": 1_000_000,
            "mf_dim": 64,
            "mlp_dim": 128,
            "batch_per_gpu": 128,
        },
    ),
}

#: Section 5.6 (shared 432-server cluster) presets.
SHARED_CLUSTER_CONFIGS: Dict[str, ModelConfig] = {
    "VGG16": ModelConfig("VGG16", {"batch_per_gpu": 64}),
    "BERT": ModelConfig(
        "BERT",
        {
            "num_blocks": 6,
            "hidden": 768,
            "seq_len": 256,
            "heads": 6,
            "embedding_size": 512,
            "batch_per_gpu": 16,
        },
    ),
    "DLRM": ModelConfig(
        "DLRM",
        {
            "num_dense_layers": 8,
            "dense_layer_size": 1024,
            "num_feature_layers": 16,
            "feature_layer_size": 2048,
            "embedding_dim": 256,
            "embedding_rows": 10_000_000,
            "num_embedding_tables": 16,
            "batch_per_gpu": 256,
        },
    ),
    "CANDLE": ModelConfig(
        "CANDLE",
        {
            "num_dense_layers": 8,
            "dense_layer_size": 4096,
            "num_feature_layers": 16,
            "feature_layer_size": 4096,
            "batch_per_gpu": 256,
        },
    ),
}

#: Section 6 (12-node testbed) presets.
TESTBED_CONFIGS: Dict[str, ModelConfig] = {
    "VGG16": ModelConfig("VGG16", {"batch_per_gpu": 32}),
    "VGG19": ModelConfig("VGG19", {"batch_per_gpu": 32}),
    "ResNet50": ModelConfig("ResNet50", {"batch_per_gpu": 20}),
    "BERT": ModelConfig(
        "BERT",
        {
            "num_blocks": 6,
            "hidden": 1024,
            "seq_len": 1024,
            "heads": 16,
            "embedding_size": 512,
            "batch_per_gpu": 2,
        },
    ),
    # Standard DLRM for the throughput comparison (Figure 19).
    "DLRM": ModelConfig(
        "DLRM",
        {
            "num_dense_layers": 4,
            "dense_layer_size": 1024,
            "num_feature_layers": 8,
            "feature_layer_size": 2048,
            "embedding_dim": 256,
            "embedding_rows": 100_000,
            "num_embedding_tables": 12,
            "batch_per_gpu": 64,
        },
    ),
    # Section 6's worst-case all-to-all DLRM (Figure 21): embedding
    # dimensions inflated 128x relative to the production baseline's
    # dim-32 tables (32 x 128 = 4096), which lands the all-to-all to
    # AllReduce traffic ratio on the paper's 5%-78% axis.
    "DLRM-alltoall": ModelConfig(
        "DLRM",
        {
            "num_dense_layers": 4,
            "dense_layer_size": 1024,
            "num_feature_layers": 8,
            "feature_layer_size": 2048,
            "embedding_dim": 4096,
            "embedding_rows": 100_000,
            "num_embedding_tables": 12,
            "batch_per_gpu": 64,
        },
    ),
    "CANDLE": ModelConfig(
        "CANDLE",
        {
            "num_dense_layers": 4,
            "dense_layer_size": 4096,
            "num_feature_layers": 8,
            "feature_layer_size": 4096,
            "batch_per_gpu": 10,
        },
    ),
}


#: The paper's three preset families, keyed by scale name -- the single
#: source of truth consumed by :func:`build_model`, the CLI's
#: ``--scale`` choices, and the experiment-spec validation in
#: :mod:`repro.api.spec`.
CONFIG_FAMILIES: Dict[str, Dict[str, ModelConfig]] = {
    "simulation": SIMULATION_CONFIGS,
    "shared": SHARED_CLUSTER_CONFIGS,
    "testbed": TESTBED_CONFIGS,
}

#: One-line description per preset family (``--help`` text and docs).
FAMILY_DESCRIPTIONS: Dict[str, str] = {
    "simulation": "section 5.3 dedicated 128-server cluster presets",
    "shared": "section 5.6 shared 432-server cluster presets",
    "testbed": "section 6 12-node prototype presets",
}


def build_model(name: str, scale: str = "simulation") -> DNNModel:
    """Build a model from a named preset.

    ``scale`` is one of ``"simulation"`` (section 5.3),
    ``"shared"`` (section 5.6), or ``"testbed"`` (section 6).
    """
    if scale not in CONFIG_FAMILIES:
        raise ValueError(
            f"unknown scale {scale!r}; use one of {sorted(CONFIG_FAMILIES)}"
        )
    table = CONFIG_FAMILIES[scale]
    if name not in table:
        raise KeyError(
            f"no {scale} preset for {name!r}; known: {sorted(table)}"
        )
    return table[name].build()
