"""NCF: Neural Collaborative Filtering (He et al.).

NCF combines a matrix-factorization (MF) path and an MLP path, each with
its own user and item embedding tables.  List 1 (section 5.3): 32 user
and 32 item tables per path, 1e6 rows each, MF dim 64 / MLP dim 128,
8 dense layers of 4096.  The many mid-sized embedding tables give NCF a
higher MP communication degree than DLRM, which is why Figure 11e shows
the largest TopoOpt-to-Ideal gap (1.7x) -- host-based forwarding pays
the most for NCF's many-to-many transfers.
"""

from __future__ import annotations

from typing import List

from repro.models.base import DNNModel, Layer, dense_layer, embedding_layer


def build_ncf(
    num_user_tables: int = 32,
    num_item_tables: int = 32,
    users_per_table: int = 1_000_000,
    items_per_table: int = 1_000_000,
    mf_dim: int = 64,
    mlp_dim: int = 128,
    num_dense_layers: int = 8,
    dense_layer_size: int = 4096,
    batch_per_gpu: int = 128,
) -> DNNModel:
    """Construct NCF with the paper's List 1 parameterization."""
    layers: List[Layer] = []
    for t in range(num_user_tables):
        layers.append(
            embedding_layer(f"user_mf.{t}", users_per_table, mf_dim)
        )
        layers.append(
            embedding_layer(f"user_mlp.{t}", users_per_table, mlp_dim)
        )
    for t in range(num_item_tables):
        layers.append(
            embedding_layer(f"item_mf.{t}", items_per_table, mf_dim)
        )
        layers.append(
            embedding_layer(f"item_mlp.{t}", items_per_table, mlp_dim)
        )
    previous = (num_user_tables + num_item_tables) * mlp_dim
    for i in range(num_dense_layers):
        layers.append(dense_layer(f"mlp.{i}", previous, dense_layer_size))
        previous = dense_layer_size
    # NeuMF fusion: concatenate the MF dot-product path and the MLP path.
    layers.append(dense_layer("neumf.out", previous + mf_dim, 1))
    return DNNModel(
        name="NCF",
        layers=tuple(layers),
        default_batch_per_gpu=batch_per_gpu,
    )
