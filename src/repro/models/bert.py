"""BERT: bidirectional transformer encoder (Devlin et al.).

Built from standard transformer blocks (self-attention + feed-forward)
over a token/position embedding front-end.  List 1 presets:

  section 5.3: 12 blocks, hidden 1024, sequence 64, 16 heads, embed 512.
  section 5.6: 6 blocks, hidden 768, sequence 256, 6 heads.
  section 6:   6 blocks, hidden 1024, sequence 1024, 16 heads.
"""

from __future__ import annotations

from typing import List

from repro.models.base import (
    DNNModel,
    Layer,
    attention_block,
    dense_layer,
    embedding_layer,
)


def build_bert(
    num_blocks: int = 12,
    hidden: int = 1024,
    seq_len: int = 64,
    heads: int = 16,
    embedding_size: int = 512,
    vocab_size: int = 30522,
    batch_per_gpu: int = 16,
) -> DNNModel:
    """Construct BERT with the paper's List 1 parameterization.

    The word-embedding table is a :class:`LayerKind.EMBEDDING` layer, so
    the strategy search may place it model-parallel, but for BERT the
    dense transformer stack dominates and the best strategy found is
    (as in the paper) mostly data parallel.
    """
    if heads <= 0 or hidden % heads != 0:
        raise ValueError(
            f"hidden ({hidden}) must be divisible by heads ({heads})"
        )
    layers: List[Layer] = [
        embedding_layer(
            "word_embeddings", vocab_size, embedding_size,
            lookups_per_sample=seq_len,
        ),
        dense_layer("embed_projection", embedding_size, hidden),
    ]
    for b in range(num_blocks):
        layers.extend(
            attention_block(f"block{b}", hidden, seq_len, heads)
        )
    layers.append(dense_layer("pooler", hidden, hidden))
    layers.append(dense_layer("classifier", hidden, 2))
    return DNNModel(
        name="BERT",
        layers=tuple(layers),
        default_batch_per_gpu=batch_per_gpu,
    )
