"""DLRM: Deep Learning Recommendation Model (Naumov et al.).

A DLRM consists of a bottom MLP over dense features, a set of very large
embedding tables over categorical features, a feature-interaction stage,
and a top MLP.  The embedding tables dominate the parameter count (100s
of GB at production scale) and are the layers hybrid parallelism places
on individual servers, producing the one-to-many / many-to-one MP
patterns of Figure 1b.

List 1 presets (section references are to the paper):
  section 5.3: 8 dense layers of 2048, 16 feature layers of 4096,
               64 embedding tables of 128 x 1e7, batch 128/GPU.
  section 5.4: 128 embedding tables (worst-case all-to-all).
  section 5.6: 16 tables of 256 x 1e7, batch 256/GPU.
  section 6:   12 tables of 32768 x 1e5, batch 64..512/GPU.
"""

from __future__ import annotations

from typing import List

from repro.models.base import (
    BYTES_PER_ACTIVATION,
    DNNModel,
    Layer,
    LayerKind,
    dense_layer,
    embedding_layer,
)


def build_dlrm(
    num_dense_layers: int = 8,
    dense_layer_size: int = 2048,
    num_feature_layers: int = 16,
    feature_layer_size: int = 4096,
    num_embedding_tables: int = 64,
    embedding_dim: int = 128,
    embedding_rows: int = 10_000_000,
    batch_per_gpu: int = 128,
) -> DNNModel:
    """Construct a DLRM with the paper's List 1 parameterization."""
    layers: List[Layer] = []

    # Bottom MLP over dense features.
    previous = feature_layer_size
    for i in range(num_feature_layers):
        layers.append(
            dense_layer(f"bottom_mlp.{i}", previous, feature_layer_size)
        )
        previous = feature_layer_size

    # Embedding tables -- the MP-placeable layers.
    for t in range(num_embedding_tables):
        layers.append(
            embedding_layer(f"embedding.{t}", embedding_rows, embedding_dim)
        )

    # Feature interaction: pairwise dot products of embedding outputs and
    # the bottom-MLP output.  No parameters; concatenation-sized output.
    interaction_inputs = num_embedding_tables + 1
    interaction_out = interaction_inputs * (interaction_inputs - 1) // 2
    layers.append(
        Layer(
            name="interaction",
            kind=LayerKind.INTERACTION,
            params_bytes=0.0,
            flops_per_sample=2.0 * interaction_out * embedding_dim,
            activation_bytes_per_sample=interaction_out
            * BYTES_PER_ACTIVATION,
        )
    )

    # Top MLP producing the click-through-rate logit.
    previous = interaction_out
    for i in range(num_dense_layers):
        layers.append(dense_layer(f"top_mlp.{i}", previous, dense_layer_size))
        previous = dense_layer_size
    layers.append(dense_layer("top_mlp.out", previous, 1))

    return DNNModel(
        name="DLRM",
        layers=tuple(layers),
        default_batch_per_gpu=batch_per_gpu,
    )
