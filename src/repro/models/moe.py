"""Mixture-of-Experts workload: the paper's stated limitation (section 7).

TopoOpt assumes the traffic pattern is identical across iterations.
MoE models break that assumption: each iteration's token-to-expert
routing changes, so the all-to-all expert dispatch pattern *drifts*
between iterations.  This module builds an MoE transformer whose
expert-dispatch traffic matrix is resampled per iteration, letting the
benchmark suite demonstrate (rather than merely assert) the limitation:
a one-shot TopoOpt topology optimized for iteration 0's pattern
degrades on later iterations, while an Ideal Switch does not care.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np

from repro.models.base import (
    BYTES_PER_ACTIVATION,
    DNNModel,
    Layer,
    LayerKind,
    attention_block,
    dense_layer,
)


def build_moe_transformer(
    num_blocks: int = 6,
    hidden: int = 1024,
    seq_len: int = 64,
    heads: int = 16,
    num_experts: int = 16,
    ffn_multiplier: int = 4,
    batch_per_gpu: int = 16,
) -> DNNModel:
    """Transformer with every FFN replaced by an expert bank.

    Expert parameters live in :class:`LayerKind.EMBEDDING`-like MP
    layers?  No -- experts are dense layers placed one per server by the
    MoE dispatcher below; here we only describe their sizes.
    """
    layers: List[Layer] = [dense_layer("embed", hidden, hidden)]
    for block in range(num_blocks):
        layers.extend(
            attention_block(
                f"block{block}", hidden, seq_len, heads, ffn_multiplier=0
            )[:1]  # attention sublayer only; experts replace the FFN
        )
        for expert in range(num_experts):
            expert_params = 2 * ffn_multiplier * hidden * hidden
            layers.append(
                Layer(
                    name=f"block{block}.expert{expert}",
                    kind=LayerKind.DENSE,
                    params_bytes=expert_params * 4.0,
                    flops_per_sample=(
                        2.0 * 2 * ffn_multiplier * hidden * hidden * seq_len
                        / num_experts
                    ),
                    activation_bytes_per_sample=(
                        seq_len * hidden * BYTES_PER_ACTIVATION / num_experts
                    ),
                )
            )
    layers.append(dense_layer("lm_head", hidden, 32000))
    return DNNModel(
        name="MoE",
        layers=tuple(layers),
        default_batch_per_gpu=batch_per_gpu,
    )


class MoeTrafficSampler:
    """Per-iteration expert-dispatch all-to-all traffic.

    Each server hosts ``experts_per_server`` experts.  Every iteration,
    token routing concentrates on a different random subset of experts
    (a Dirichlet draw with low concentration -- the hot-expert skew MoE
    systems actually see), so the server-to-server dispatch matrix
    changes iteration to iteration while its total volume stays fixed.
    """

    def __init__(
        self,
        num_servers: int,
        tokens_per_server: int,
        bytes_per_token: float,
        concentration: float = 0.3,
        seed: int = 0,
    ):
        if num_servers < 2:
            raise ValueError("need at least two servers")
        if not 0 < concentration:
            raise ValueError("concentration must be positive")
        self.num_servers = num_servers
        self.tokens_per_server = tokens_per_server
        self.bytes_per_token = bytes_per_token
        self.concentration = concentration
        self.rng = np.random.RandomState(seed)

    def iteration_matrix(self) -> np.ndarray:
        """Dispatch matrix for one iteration (bytes)."""
        n = self.num_servers
        # Expert popularity this iteration: skewed Dirichlet weights.
        weights = self.rng.dirichlet([self.concentration] * n)
        matrix = np.zeros((n, n))
        volume = self.tokens_per_server * self.bytes_per_token
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    # Tokens from src dispatched to dst's experts, plus
                    # the combine on the way back.
                    matrix[src, dst] += 2.0 * volume * weights[dst]
        return matrix

    def iteration_matrices(self, count: int) -> List[np.ndarray]:
        return [self.iteration_matrix() for _ in range(count)]

    def total_bytes_per_iteration(self) -> float:
        """Volume is pattern-independent: only the *shape* drifts."""
        n = self.num_servers
        return (
            2.0
            * self.tokens_per_server
            * self.bytes_per_token
            * (n - 1)
            / n
            * n
        )


def pattern_drift(matrices: List[np.ndarray]) -> float:
    """Mean normalized L1 distance between consecutive patterns.

    0 means the paper's identical-across-iterations assumption holds;
    values near 1 mean the pattern is reshuffled every iteration.
    """
    if len(matrices) < 2:
        return 0.0
    drifts = []
    for a, b in zip(matrices, matrices[1:]):
        total = a.sum() + b.sum()
        if total > 0:
            drifts.append(np.abs(a - b).sum() / total)
    return float(np.mean(drifts)) if drifts else 0.0
