"""Collective communication algorithms and their traffic.

Provides the per-edge byte accounting of the AllReduce algorithms the
paper discusses: ring (the Meta default), multi-ring (TopoOpt's
TotientPerms load balancing), double binary tree (Appendix A),
hierarchical ring, and the distributed parameter server used *within*
servers in section 5.1.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.mutability import dbt_traffic_matrix, ring_traffic_matrix
from repro.core.totient import ring_permutation


class CollectiveAlgorithm(enum.Enum):
    RING = "ring"
    MULTI_RING = "multi_ring"
    DOUBLE_BINARY_TREE = "double_binary_tree"
    HIERARCHICAL_RING = "hierarchical_ring"
    PARAMETER_SERVER = "parameter_server"


def allreduce_edge_bytes(
    total_bytes: float, group_size: int, num_rings: int = 1
) -> float:
    """Bytes each ring edge carries for a (multi-)ring AllReduce.

    Ring-AllReduce moves ``2 (k-1)/k S`` bytes per edge; ``num_rings``
    parallel permutations each carry an equal share.
    """
    if group_size < 2:
        return 0.0
    if num_rings < 1:
        raise ValueError(f"num_rings must be >= 1, got {num_rings}")
    return 2.0 * (group_size - 1) / group_size * total_bytes / num_rings


def allreduce_time_lower_bound(
    total_bytes: float, group_size: int, bandwidth_bps: float
) -> float:
    """Bandwidth-optimal AllReduce time: 2 (k-1)/k S / B (any algorithm)."""
    if group_size < 2:
        return 0.0
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    bits = 8.0 * allreduce_edge_bytes(total_bytes, group_size)
    return bits / bandwidth_bps


def collective_traffic(
    algorithm: CollectiveAlgorithm,
    group: Sequence[int],
    total_bytes: float,
    n: int,
    strides: Sequence[int] = (1,),
) -> np.ndarray:
    """Traffic matrix of one AllReduce collective over ``group``.

    ``strides`` selects the ring permutations for RING / MULTI_RING; the
    other algorithms ignore it.
    """
    k = len(group)
    if k < 2:
        return np.zeros((n, n))
    if algorithm == CollectiveAlgorithm.RING:
        return ring_traffic_matrix(group, total_bytes, n, stride=strides[0])
    if algorithm == CollectiveAlgorithm.MULTI_RING:
        matrix = np.zeros((n, n))
        for stride in strides:
            matrix += ring_traffic_matrix(
                group, total_bytes, n, stride=stride, num_rings=len(strides)
            )
        return matrix
    if algorithm == CollectiveAlgorithm.DOUBLE_BINARY_TREE:
        return dbt_traffic_matrix(group, total_bytes, n)
    if algorithm == CollectiveAlgorithm.HIERARCHICAL_RING:
        return _hierarchical_ring_traffic(group, total_bytes, n)
    if algorithm == CollectiveAlgorithm.PARAMETER_SERVER:
        return _parameter_server_traffic(group, total_bytes, n)
    raise ValueError(f"unknown collective {algorithm!r}")


def _hierarchical_ring_traffic(
    group: Sequence[int], total_bytes: float, n: int, branch: int = 4
) -> np.ndarray:
    """Two-level ring: intra-pod rings plus a ring of pod leaders."""
    matrix = np.zeros((n, n))
    pods: List[List[int]] = [
        list(group[i: i + branch]) for i in range(0, len(group), branch)
    ]
    for pod in pods:
        if len(pod) >= 2:
            matrix += ring_traffic_matrix(pod, total_bytes, n)
    leaders = [pod[0] for pod in pods]
    if len(leaders) >= 2:
        matrix += ring_traffic_matrix(leaders, total_bytes, n)
    return matrix


def _parameter_server_traffic(
    group: Sequence[int], total_bytes: float, n: int
) -> np.ndarray:
    """Distributed parameter server: each member serves a 1/k shard.

    Every worker pushes gradients for each shard to that shard's server
    and pulls updated weights back: ``2 (k-1)/k S`` bytes in and out per
    member, the same aggregate as a ring but in a many-to-many pattern.
    """
    k = len(group)
    matrix = np.zeros((n, n))
    shard = total_bytes / k
    for server in group:
        for worker in group:
            if server == worker:
                continue
            matrix[worker, server] += shard  # gradient push
            matrix[server, worker] += shard  # weight pull
    return matrix


def multi_ring_edges(
    group: Sequence[int], strides: Sequence[int]
) -> Dict[Tuple[int, int], float]:
    """Edge -> share map for multi-ring load balancing (NCCL integration).

    Each selected permutation carries ``1/len(strides)`` of the AllReduce
    payload; the returned map lists every directed ring edge with its
    share, the structure the modified NCCL uses to split transfers.
    """
    if not strides:
        raise ValueError("need at least one stride")
    share = 1.0 / len(strides)
    edges: Dict[Tuple[int, int], float] = {}
    k = len(group)
    for stride in strides:
        order = ring_permutation(group, stride)
        for i in range(k):
            edge = (order[i], order[(i + 1) % k])
            edges[edge] = edges.get(edge, 0.0) + share
    return edges
