"""Parallelization strategies, traffic extraction, and the MCMC search.

This subpackage is the reproduction's FlexFlow analog (the Comp. x Comm.
plane of the alternating optimization):

* :mod:`repro.parallel.strategy` -- layer placements (data parallel,
  model parallel on a server, sharded all-to-all) and whole-job
  strategies.
* :mod:`repro.parallel.traffic` -- extraction of AllReduce groups and the
  MP traffic matrix from (model, strategy, batch), i.e. the traffic
  heatmaps of Figures 1/4/8/9, decomposed into additive per-layer
  contributions (:func:`~repro.parallel.traffic.layer_traffic`).
* :mod:`repro.parallel.collectives` -- collective algorithms (ring,
  multi-ring, double binary tree, parameter server, hierarchical).
* :mod:`repro.parallel.mcmc` -- the MCMC strategy search with a
  topology-aware iteration-time cost model, delta-scored through the
  sparse kernel in :mod:`repro.perf.costmodel` (seed full-rebuild path
  retained as the oracle).
* :mod:`repro.parallel.taskgraph` -- phase-structured task graphs for the
  flow simulator.
"""

from repro.parallel.strategy import (
    LayerPlacement,
    ParallelizationStrategy,
    PlacementKind,
    data_parallel_strategy,
    hybrid_strategy,
)
from repro.parallel.traffic import (
    LayerTraffic,
    TrafficSummary,
    extract_traffic,
    layer_traffic,
)
from repro.parallel.collectives import (
    CollectiveAlgorithm,
    allreduce_edge_bytes,
    collective_traffic,
)
from repro.parallel.mcmc import (
    IterationCostModel,
    MCMCResult,
    MCMCSearch,
    ReferenceIterationCostModel,
)
from repro.parallel.taskgraph import CommPhase, IterationPlan, build_iteration_plan

__all__ = [
    "LayerPlacement",
    "ParallelizationStrategy",
    "PlacementKind",
    "data_parallel_strategy",
    "hybrid_strategy",
    "LayerTraffic",
    "TrafficSummary",
    "extract_traffic",
    "layer_traffic",
    "CollectiveAlgorithm",
    "allreduce_edge_bytes",
    "collective_traffic",
    "MCMCSearch",
    "MCMCResult",
    "IterationCostModel",
    "ReferenceIterationCostModel",
    "CommPhase",
    "IterationPlan",
    "build_iteration_plan",
]
