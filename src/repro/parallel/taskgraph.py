"""Task graphs: the phase structure of one training iteration.

FlexFlow's simulator emits a task graph of compute and communication
tasks with dependencies; the paper's iteration-time model (Eq. 1)
serializes it into three phases -- forward/backward compute, MP
transfers, AllReduce.  :func:`build_iteration_plan` materializes that
structure for a (model, strategy, fabric) triple so the flow simulator
and examples can inspect exactly what runs when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.models.base import DNNModel
from repro.models.compute import (
    GPUSpec,
    A100,
    compute_time_seconds,
    layer_compute_time_seconds,
)
from repro.parallel.strategy import ParallelizationStrategy, PlacementKind
from repro.parallel.traffic import TrafficSummary, extract_traffic


@dataclass(frozen=True)
class ComputeTask:
    """One server's forward+backward work for a set of layers."""

    server: int
    duration_s: float
    layer_names: Tuple[str, ...]


@dataclass(frozen=True)
class CommTask:
    """One point-to-point transfer within a phase."""

    src: int
    dst: int
    size_bytes: float
    kind: str  # "mp" or "allreduce"


@dataclass
class CommPhase:
    """A barrier-synchronized set of transfers."""

    name: str
    tasks: List[CommTask] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        return sum(task.size_bytes for task in self.tasks)


@dataclass
class IterationPlan:
    """One iteration: compute tasks plus the MP and AllReduce phases."""

    compute_tasks: List[ComputeTask]
    mp_phase: CommPhase
    allreduce_phase: CommPhase
    traffic: TrafficSummary

    @property
    def compute_s(self) -> float:
        """Critical-path compute time (slowest server)."""
        return max(
            (task.duration_s for task in self.compute_tasks), default=0.0
        )


def build_iteration_plan(
    model: DNNModel,
    strategy: ParallelizationStrategy,
    batch_per_gpu: Optional[int] = None,
    gpus_per_server: int = 4,
    gpu: GPUSpec = A100,
) -> IterationPlan:
    """Materialize the per-iteration task graph of a strategy."""
    strategy.validate_against(model)
    n = strategy.num_servers
    batch = batch_per_gpu or model.default_batch_per_gpu

    # Per-server compute: replicated layers run everywhere; MP layers run
    # only on their owners (with the whole cluster's samples).
    per_server_layers: Dict[int, List[str]] = {s: [] for s in range(n)}
    per_server_time: Dict[int, float] = {s: 0.0 for s in range(n)}
    for layer in model.layers:
        placement = strategy.placement(layer.name)
        if placement.kind == PlacementKind.DATA_PARALLEL:
            duration = layer_compute_time_seconds(
                layer.flops_per_sample, batch, gpu
            )
            replicas = placement.servers or tuple(range(n))
            for server in replicas:
                per_server_layers[server].append(layer.name)
                per_server_time[server] += duration
        elif placement.kind == PlacementKind.MODEL_PARALLEL:
            owners = placement.servers
            total_samples = batch * gpus_per_server * n
            duration = layer_compute_time_seconds(
                layer.flops_per_sample,
                max(total_samples // (len(owners) * gpus_per_server), 1),
                gpu,
            )
            for server in owners:
                per_server_layers[server].append(layer.name)
                per_server_time[server] += duration
        else:  # SHARDED: 1/n of the cluster's lookups per server
            total_samples = batch * gpus_per_server * n
            duration = layer_compute_time_seconds(
                layer.flops_per_sample,
                max(total_samples // (n * gpus_per_server), 1),
                gpu,
            )
            for server in range(n):
                per_server_layers[server].append(layer.name)
                per_server_time[server] += duration

    gpu_overhead = gpu.per_iteration_overhead_s
    compute_tasks = [
        ComputeTask(
            server=server,
            duration_s=per_server_time[server] + gpu_overhead,
            layer_names=tuple(per_server_layers[server]),
        )
        for server in range(n)
    ]

    traffic = extract_traffic(model, strategy, batch, gpus_per_server)
    mp_phase = CommPhase(name="mp")
    for src in range(n):
        for dst in range(n):
            size = float(traffic.mp_matrix[src, dst])
            if src != dst and size > 0:
                mp_phase.tasks.append(
                    CommTask(src=src, dst=dst, size_bytes=size, kind="mp")
                )
    allreduce_phase = CommPhase(name="allreduce")
    for group in traffic.allreduce_groups:
        if group.size < 2:
            continue
        from repro.parallel.collectives import allreduce_edge_bytes

        per_edge = allreduce_edge_bytes(group.total_bytes, group.size)
        members = group.members
        k = len(members)
        for i in range(k):
            allreduce_phase.tasks.append(
                CommTask(
                    src=members[i],
                    dst=members[(i + 1) % k],
                    size_bytes=per_edge,
                    kind="allreduce",
                )
            )
    return IterationPlan(
        compute_tasks=compute_tasks,
        mp_phase=mp_phase,
        allreduce_phase=allreduce_phase,
        traffic=traffic,
    )
