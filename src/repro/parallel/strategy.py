"""Parallelization strategies and device placement.

A strategy assigns every layer of a DNN one of three placements:

* **data parallel** -- the layer is replicated on a set of servers; its
  parameters join that set's AllReduce group (type-2 dependency in the
  paper's taxonomy).
* **model parallel** -- the layer lives on one (or a few) owner servers;
  every training sample's activation must travel owner -> worker in the
  forward pass and worker -> owner in the backward pass (type-1
  dependency, the immutable MP traffic).
* **sharded** -- the layer (an embedding table family) is partitioned
  row-wise across *all* servers, producing the worst-case all-to-all
  pattern studied in section 5.4.

This mirrors the placements FlexFlow's search space reaches for the
paper's workloads (hybrid data+model parallelism or pure data parallel).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.models.base import DNNModel, LayerKind


class PlacementKind(enum.Enum):
    DATA_PARALLEL = "data_parallel"
    MODEL_PARALLEL = "model_parallel"
    SHARDED = "sharded"


@dataclass(frozen=True)
class LayerPlacement:
    """Where one layer lives.

    ``servers`` is the replica set for data parallelism, the owner set
    (usually a single server) for model parallelism, and ignored (all
    servers) for sharded placement.
    """

    kind: PlacementKind
    servers: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.kind == PlacementKind.MODEL_PARALLEL and not self.servers:
            raise ValueError("model-parallel placement needs owner servers")
        if len(set(self.servers)) != len(self.servers):
            raise ValueError("placement servers must be distinct")


@dataclass(frozen=True)
class ParallelizationStrategy:
    """A complete strategy: per-layer placements over ``num_servers``."""

    num_servers: int
    placements: Mapping[str, LayerPlacement]

    def __post_init__(self):
        for name, placement in self.placements.items():
            self._validate_placement(name, placement)

    def _validate_placement(
        self, name: str, placement: LayerPlacement
    ) -> None:
        for server in placement.servers:
            if not 0 <= server < self.num_servers:
                raise ValueError(
                    f"layer {name!r} placed on server {server}, but the "
                    f"job only has {self.num_servers} servers"
                )

    def placement(self, layer_name: str) -> LayerPlacement:
        try:
            return self.placements[layer_name]
        except KeyError:
            raise KeyError(f"strategy has no placement for {layer_name!r}")

    def validate_against(self, model: DNNModel) -> None:
        """Check the strategy covers exactly the model's layers."""
        model_names = {layer.name for layer in model.layers}
        strategy_names = set(self.placements)
        missing = model_names - strategy_names
        extra = strategy_names - model_names
        if missing or extra:
            raise ValueError(
                f"strategy/model mismatch for {model.name}: "
                f"missing={sorted(missing)[:5]}, extra={sorted(extra)[:5]}"
            )

    def with_placement(
        self, layer_name: str, placement: LayerPlacement
    ) -> "ParallelizationStrategy":
        """A copy with one placement replaced.

        The MCMC hot path constructs one strategy per proposal, so only
        the *changed* placement is validated -- every other placement
        was already validated when this strategy was built.
        """
        if self.placements.get(layer_name) == placement:
            return self
        self._validate_placement(layer_name, placement)
        updated = dict(self.placements)
        updated[layer_name] = placement
        clone = object.__new__(ParallelizationStrategy)
        object.__setattr__(clone, "num_servers", self.num_servers)
        object.__setattr__(clone, "placements", updated)
        return clone

    def mp_owner_servers(self) -> Dict[str, Tuple[int, ...]]:
        return {
            name: placement.servers
            for name, placement in self.placements.items()
            if placement.kind == PlacementKind.MODEL_PARALLEL
        }

    def is_pure_data_parallel(self) -> bool:
        return all(
            placement.kind == PlacementKind.DATA_PARALLEL
            for placement in self.placements.values()
        )


def data_parallel_strategy(
    model: DNNModel, num_servers: int
) -> ParallelizationStrategy:
    """Replicate every layer on all servers (Figure 1a)."""
    servers = tuple(range(num_servers))
    placements = {
        layer.name: LayerPlacement(PlacementKind.DATA_PARALLEL, servers)
        for layer in model.layers
    }
    return ParallelizationStrategy(num_servers, placements)


def hybrid_strategy(
    model: DNNModel,
    num_servers: int,
    embedding_owners: Optional[Mapping[str, int]] = None,
    sharded_embeddings: Iterable[str] = (),
) -> ParallelizationStrategy:
    """Hybrid data + model parallelism (Figure 1b / Meta's DLRM recipe).

    Embedding tables are placed model-parallel on owner servers (spread
    round-robin when ``embedding_owners`` is not given, mirroring the
    paper's E0 -> S0, E1 -> S3, ... example spacing); everything else is
    data parallel.  Tables listed in ``sharded_embeddings`` are sharded
    across all servers (the section 5.4 all-to-all setup).
    """
    servers = tuple(range(num_servers))
    sharded = set(sharded_embeddings)
    embeddings = model.embedding_layers
    if embedding_owners is None:
        # Spread owners evenly over the server range.
        count = len(embeddings)
        embedding_owners = {}
        for idx, layer in enumerate(embeddings):
            owner = (idx * num_servers) // max(count, 1) % num_servers
            embedding_owners[layer.name] = owner

    placements: Dict[str, LayerPlacement] = {}
    for layer in model.layers:
        if layer.kind == LayerKind.EMBEDDING and layer.name in sharded:
            placements[layer.name] = LayerPlacement(PlacementKind.SHARDED)
        elif layer.kind == LayerKind.EMBEDDING:
            owner = embedding_owners.get(layer.name)
            if owner is None:
                placements[layer.name] = LayerPlacement(
                    PlacementKind.DATA_PARALLEL, servers
                )
            else:
                placements[layer.name] = LayerPlacement(
                    PlacementKind.MODEL_PARALLEL, (owner,)
                )
        else:
            placements[layer.name] = LayerPlacement(
                PlacementKind.DATA_PARALLEL, servers
            )
    return ParallelizationStrategy(num_servers, placements)


def all_sharded_strategy(
    model: DNNModel, num_servers: int
) -> ParallelizationStrategy:
    """Shard every embedding table across all servers (section 5.4)."""
    names = [layer.name for layer in model.embedding_layers]
    return hybrid_strategy(model, num_servers, sharded_embeddings=names)


def auto_strategy(
    model: DNNModel,
    num_servers: int,
    batch_per_gpu: Optional[int] = None,
    gpus_per_server: int = 4,
) -> ParallelizationStrategy:
    """Greedy per-layer placement: the strategy MCMC converges to.

    An embedding table goes model-parallel only when the MP traffic it
    creates (activations out + gradients back, ``2 * act * batch/server
    * (n-1)`` bytes) is cheaper than the AllReduce traffic replication
    would add (``~2 * params`` bytes carried around the ring).  DLRM's
    huge low-dimensional tables pick MP; BERT's small word-embedding
    table (tiny parameters, enormous per-token activations) stays data
    parallel -- matching what FlexFlow's search finds in the paper.
    """
    if batch_per_gpu is None:
        batch_per_gpu = model.default_batch_per_gpu
    batch_per_server = batch_per_gpu * gpus_per_server
    mp_names = []
    for layer in model.embedding_layers:
        mp_bytes = (
            2.0
            * layer.activation_bytes_per_sample
            * batch_per_server
            * (num_servers - 1)
        )
        allreduce_bytes = 2.0 * layer.params_bytes
        if mp_bytes < allreduce_bytes:
            mp_names.append(layer.name)
    if not mp_names:
        return data_parallel_strategy(model, num_servers)
    owners = {
        name: (idx * num_servers) // len(mp_names) % num_servers
        for idx, name in enumerate(mp_names)
    }
    strategy = hybrid_strategy(model, num_servers, embedding_owners=owners)
    # Tables the heuristic rejected go back to data parallel.
    servers = tuple(range(num_servers))
    for layer in model.embedding_layers:
        if layer.name not in owners:
            strategy = strategy.with_placement(
                layer.name,
                LayerPlacement(PlacementKind.DATA_PARALLEL, servers),
            )
    return strategy
