"""Traffic extraction: from (model, strategy, batch) to transfers.

This is the bridge between the Comp. x Comm. plane and the Comm. x Topo.
plane: given a parallelization strategy it produces

* the AllReduce groups ``T_AllReduce`` (mutable traffic), and
* the MP transfer matrix ``T_MP`` (immutable traffic),

exactly the inputs of TopologyFinder (Algorithm 1), plus combined
heatmap matrices reproducing Figures 1, 8, and 9.

Accounting follows the paper's DLRM example (section 2.1 / Appendix D):

* a data-parallel layer set with ``P`` parameter bytes over ``k`` servers
  contributes an AllReduce group of ``P`` bytes;
* a model-parallel layer on owner ``o`` sends each worker its share of
  activations (``batch_per_server * activation_bytes``) forward and
  receives the same back as gradients;
* a sharded table produces all-to-all traffic: each server exchanges
  ``batch_per_server * activation_bytes / n`` with every other server in
  both passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.topology_finder import AllReduceGroup
from repro.models.base import DNNModel, Layer
from repro.parallel.strategy import (
    LayerPlacement,
    ParallelizationStrategy,
    PlacementKind,
)


@dataclass
class TrafficSummary:
    """The per-iteration communication demand of a strategy.

    Attributes
    ----------
    allreduce_groups:
        AllReduce groups with their synchronized byte counts.
    mp_matrix:
        ``n x n`` MP (activation/gradient) byte matrix.
    n:
        Number of servers.
    """

    n: int
    allreduce_groups: List[AllReduceGroup] = field(default_factory=list)
    mp_matrix: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.mp_matrix is None:
            self.mp_matrix = np.zeros((self.n, self.n))

    @property
    def total_allreduce_bytes(self) -> float:
        return float(sum(g.total_bytes for g in self.allreduce_groups))

    @property
    def total_mp_bytes(self) -> float:
        return float(self.mp_matrix.sum())

    def allreduce_matrix(self, num_rings: int = 1, strides=None) -> np.ndarray:
        """Ring-AllReduce traffic matrix (for heatmaps)."""
        from repro.core.mutability import ring_traffic_matrix

        matrix = np.zeros((self.n, self.n))
        for group in self.allreduce_groups:
            if group.size < 2:
                continue
            use = strides if strides else [1]
            for stride in use:
                matrix += ring_traffic_matrix(
                    group.members,
                    group.total_bytes,
                    self.n,
                    stride=stride,
                    num_rings=len(use),
                )
        return matrix

    def heatmap(self, strides=None) -> np.ndarray:
        """Combined AllReduce + MP traffic matrix (Figures 1/8/9)."""
        return self.allreduce_matrix(strides=strides) + self.mp_matrix

    def max_transfer_bytes(self) -> float:
        """Largest single server-pair transfer (Figure 1's 44 GB -> 4 GB)."""
        return float(self.heatmap().max())


@dataclass(frozen=True, eq=False)
class LayerTraffic:
    """One layer's additive contribution to a :class:`TrafficSummary`.

    The traffic a strategy generates is a sum of independent per-layer
    terms: an AllReduce byte count joining the layer's replica set, and
    MP demand on a (usually sparse) set of server pairs.  Exposing the
    decomposition is what lets the incremental cost evaluator
    (:mod:`repro.perf.costmodel`) re-extract only the layer a placement
    move touched instead of rebuilding the whole summary.

    Attributes
    ----------
    n:
        Number of servers (pair indices are flattened ``src * n + dst``).
    dp_replicas / dp_bytes:
        The replica set whose AllReduce group the layer's parameters
        join (``None`` when the layer adds no AllReduce traffic).
    mp_pair_indices / mp_pair_bytes:
        Flattened pair indices and byte counts of the layer's MP
        (activation/gradient) demand; indices may repeat and are summed.
    """

    n: int
    dp_replicas: Optional[Tuple[int, ...]]
    dp_bytes: float
    mp_pair_indices: np.ndarray
    mp_pair_bytes: np.ndarray


_EMPTY_IDX = np.zeros(0, dtype=np.int64)
_EMPTY_VAL = np.zeros(0)

#: Flattened off-diagonal pair indices per n (sharded layers hit all of
#: them; built once per cluster size).
_OFFDIAG_CACHE: Dict[int, np.ndarray] = {}


def _offdiag_pair_indices(n: int) -> np.ndarray:
    cached = _OFFDIAG_CACHE.get(n)
    if cached is None:
        idx = np.arange(n * n, dtype=np.int64)
        cached = idx[idx // n != idx % n]
        _OFFDIAG_CACHE[n] = cached
    return cached


def layer_traffic(
    layer: Layer,
    placement: LayerPlacement,
    batch_per_server: int,
    n: int,
) -> LayerTraffic:
    """The traffic contribution of one layer under one placement.

    Accounting matches :func:`extract_traffic` exactly (which is built
    on this function): DP parameters join the replica set's AllReduce
    group; an MP layer exchanges activations/gradients between its
    owner(s) and every worker; a sharded table is an all-to-all.
    """
    if placement.kind == PlacementKind.DATA_PARALLEL:
        replicas = placement.servers or tuple(range(n))
        if len(replicas) >= 2 and layer.params_bytes > 0:
            return LayerTraffic(
                n, replicas, layer.params_bytes, _EMPTY_IDX, _EMPTY_VAL
            )
        return LayerTraffic(n, None, 0.0, _EMPTY_IDX, _EMPTY_VAL)
    if placement.kind == PlacementKind.MODEL_PARALLEL:
        owners = placement.servers
        per_worker = (
            layer.activation_bytes_per_sample * batch_per_server / len(owners)
        )
        chunks: List[np.ndarray] = []
        everyone = np.arange(n, dtype=np.int64)
        for owner in owners:
            workers = everyone[everyone != owner]
            chunks.append(owner * n + workers)  # forward activations
            chunks.append(workers * n + owner)  # backward gradients
        indices = (
            np.concatenate(chunks) if chunks else _EMPTY_IDX
        )
        values = np.full(indices.shape, per_worker)
        return LayerTraffic(n, None, 0.0, indices, values)
    if placement.kind == PlacementKind.SHARDED:
        if n < 2:
            return LayerTraffic(n, None, 0.0, _EMPTY_IDX, _EMPTY_VAL)
        per_pair = layer.activation_bytes_per_sample * batch_per_server / n
        indices = _offdiag_pair_indices(n)
        values = np.full(indices.shape, 2.0 * per_pair)  # fwd + bwd
        return LayerTraffic(n, None, 0.0, indices, values)
    raise ValueError(f"unknown placement kind {placement.kind}")


def extract_traffic(
    model: DNNModel,
    strategy: ParallelizationStrategy,
    batch_per_gpu: int = None,
    gpus_per_server: int = 4,
) -> TrafficSummary:
    """Derive AllReduce groups and the MP matrix from a strategy.

    A thin aggregation over :func:`layer_traffic`: the summary is the
    sum of every layer's additive contribution, in layer order.
    """
    strategy.validate_against(model)
    n = strategy.num_servers
    if batch_per_gpu is None:
        batch_per_gpu = model.default_batch_per_gpu
    batch_per_server = batch_per_gpu * gpus_per_server

    summary = TrafficSummary(n=n)
    flat = summary.mp_matrix.reshape(-1)
    dp_bytes_by_replicas: Dict[Tuple[int, ...], float] = {}

    for layer in model.layers:
        contribution = layer_traffic(
            layer, strategy.placement(layer.name), batch_per_server, n
        )
        if contribution.mp_pair_indices.size:
            np.add.at(
                flat,
                contribution.mp_pair_indices,
                contribution.mp_pair_bytes,
            )
        if contribution.dp_replicas is not None:
            dp_bytes_by_replicas[contribution.dp_replicas] = (
                dp_bytes_by_replicas.get(contribution.dp_replicas, 0.0)
                + contribution.dp_bytes
            )

    for replicas, params_bytes in dp_bytes_by_replicas.items():
        summary.allreduce_groups.append(
            AllReduceGroup(members=replicas, total_bytes=params_bytes)
        )
    return summary


def _add_model_parallel_traffic(
    matrix: np.ndarray,
    owners: Tuple[int, ...],
    activation_bytes: float,
    batch_per_server: int,
    n: int,
) -> None:
    """Owner(s) -> every worker forward, workers -> owner(s) backward.

    Each worker processes ``batch_per_server`` samples and needs that
    many activation vectors from the layer's owner; the owner set splits
    the load evenly when there are several owners.
    """
    per_worker = activation_bytes * batch_per_server / len(owners)
    for owner in owners:
        for worker in range(n):
            if worker == owner:
                continue
            matrix[owner, worker] += per_worker  # forward activations
            matrix[worker, owner] += per_worker  # backward gradients


def _add_sharded_traffic(
    matrix: np.ndarray,
    activation_bytes: float,
    batch_per_server: int,
    n: int,
) -> None:
    """Row-sharded table: all-to-all exchange in both passes.

    Each server's ``batch_per_server`` lookups hit shards uniformly, so
    it pulls ``batch * act / n`` bytes from every other server forward
    and pushes the same back as gradients.
    """
    if n < 2:
        return
    per_pair = activation_bytes * batch_per_server / n
    for src in range(n):
        for dst in range(n):
            if src != dst:
                matrix[src, dst] += 2.0 * per_pair  # forward + backward


def alltoall_to_allreduce_ratio(summary: TrafficSummary) -> float:
    """Ratio of MP (all-to-all) to AllReduce bytes (Figure 12's top axis)."""
    allreduce = summary.total_allreduce_bytes
    if allreduce <= 0:
        return float("inf") if summary.total_mp_bytes > 0 else 0.0
    return summary.total_mp_bytes / allreduce
