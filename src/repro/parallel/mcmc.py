"""FlexFlow-style MCMC parallelization-strategy search (section 4.1).

FlexFlow explores parallelization strategies with Markov Chain Monte
Carlo over placement moves, scoring candidates with a fast analytic
execution simulator.  This module reimplements that loop for the
placement space the paper's workloads occupy:

* toggle an embedding layer between data-parallel, model-parallel on
  some owner server, and sharded (all-to-all);
* move a model-parallel layer to a different owner.

Candidates are scored by :class:`IterationCostModel`, a topology-aware
analytic estimator (the "FlexNet coarse" model): compute time from the
roofline, plus per-phase communication time lower-bounded by the most
loaded link after routing all transfers over the fabric's paths.  The
Metropolis criterion accepts worse states with probability
``exp(-delta / T)``, and the best state ever visited is returned.

The paper's premise is that this cost model is "orders of magnitude
faster than simulating", so the implementation treats the inner loop as
a hot path: routing lives in a per-fabric sparse matrix
(:class:`repro.perf.costmodel.CostModelKernel`), a proposal re-routes
only the moved layer through a delta update on the cached link-load
vector, and a rejected proposal undoes in O(delta)
(:class:`repro.perf.costmodel.IncrementalCostEvaluator`).  The seed
full-rebuild discipline -- re-extract the whole traffic summary and
re-route all n^2 pairs in Python per proposal -- is retained as
:class:`ReferenceIterationCostModel` + ``search(incremental=False)``,
the equivalence oracle and benchmark baseline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.models.base import DNNModel
from repro.obs import TRACER
from repro.models.compute import GPUSpec, A100, compute_time_seconds
from repro.parallel.strategy import (
    LayerPlacement,
    ParallelizationStrategy,
    PlacementKind,
    data_parallel_strategy,
    hybrid_strategy,
)
from repro.parallel.traffic import (
    TrafficSummary,
    extract_traffic,
    layer_traffic,
)
from repro.perf.costmodel import CostModelKernel, IncrementalCostEvaluator
from repro.perf.warmcache import kernel_for as _warm_kernel

Link = Tuple[int, int]

#: Cost deltas below this relative threshold are accepted without
#: consuming a random draw.  An analytically-neutral move (e.g. moving
#: an MP owner on a symmetric fabric) produces delta == 0.0 exactly
#: under a full rebuild but an O(1e-16)-relative residue under delta
#: updates; snapping both to "accept" keeps the incremental and
#: full-rebuild scorers on identical trajectories -- the property the
#: per-step equivalence tests rely on.  Real placement deltas in these
#: models are many orders of magnitude above the threshold.
ACCEPT_TOL = 1e-9


class ReferenceIterationCostModel:
    """Seed analytic iteration-time estimate (pure-Python routing loops).

    ``cost(traffic)`` = compute + busiest-link time of the MP phase +
    busiest-link time of the AllReduce phase.  The busiest-link bound is
    the fluid simulator's makespan when the bottleneck link is shared by
    flows of equal length, and a tight lower bound otherwise -- accurate
    enough to rank strategies.  Retained verbatim as the equivalence
    reference for the vectorized :class:`IterationCostModel`.
    """

    def __init__(self, fabric, compute_s: float):
        self.fabric = fabric
        self.compute_s = compute_s
        self._capacities = fabric.capacities()
        self._path_cache: Dict[Tuple[int, int, str], List[List[int]]] = {}

    def _paths(self, src: int, dst: int, kind: str) -> List[List[int]]:
        key = (src, dst, kind)
        if key not in self._path_cache:
            self._path_cache[key] = self.fabric.paths(src, dst, kind)
        return self._path_cache[key]

    def _phase_time(self, link_bytes: Dict[Link, float]) -> float:
        worst = 0.0
        for link, byte_count in link_bytes.items():
            capacity = self._capacities.get(link)
            if capacity is None or capacity <= 0:
                raise KeyError(f"routed traffic uses unknown link {link}")
            worst = max(worst, 8.0 * byte_count / capacity)
        return worst

    def mp_time(self, traffic: TrafficSummary) -> float:
        link_bytes: Dict[Link, float] = {}
        matrix = traffic.mp_matrix
        n = traffic.n
        for src in range(n):
            row = matrix[src]
            for dst in range(n):
                byte_count = row[dst]
                if src == dst or byte_count <= 0:
                    continue
                paths = self._paths(src, dst, "mp")
                if not paths:
                    return math.inf
                share = byte_count / len(paths)
                for path in paths:
                    for i in range(len(path) - 1):
                        link = (path[i], path[i + 1])
                        link_bytes[link] = link_bytes.get(link, 0.0) + share
        return self._phase_time(link_bytes)

    def allreduce_time(self, traffic: TrafficSummary) -> float:
        from repro.parallel.collectives import allreduce_edge_bytes

        link_bytes: Dict[Link, float] = {}
        for group in traffic.allreduce_groups:
            if group.size < 2 or group.total_bytes <= 0:
                continue
            ring_paths = []
            if hasattr(self.fabric, "ring_edge_paths"):
                ring_paths = self.fabric.ring_edge_paths(group.members)
            if ring_paths:
                for path, num_rings in ring_paths:
                    per_edge = allreduce_edge_bytes(
                        group.total_bytes, group.size, num_rings
                    )
                    for i in range(len(path) - 1):
                        link = (path[i], path[i + 1])
                        link_bytes[link] = link_bytes.get(link, 0.0) + per_edge
            else:
                per_edge = allreduce_edge_bytes(group.total_bytes, group.size)
                members = group.members
                k = len(members)
                for i in range(k):
                    src, dst = members[i], members[(i + 1) % k]
                    paths = self._paths(src, dst, "allreduce")
                    if not paths:
                        return math.inf
                    share = per_edge / len(paths)
                    for path in paths:
                        for j in range(len(path) - 1):
                            link = (path[j], path[j + 1])
                            link_bytes[link] = (
                                link_bytes.get(link, 0.0) + share
                            )
        return self._phase_time(link_bytes)

    def cost(self, traffic: TrafficSummary) -> float:
        return (
            self.compute_s
            + self.mp_time(traffic)
            + self.allreduce_time(traffic)
        )


class IterationCostModel:
    """Analytic iteration-time estimate on a fabric (FlexNet coarse).

    Same estimate as :class:`ReferenceIterationCostModel`, evaluated
    through the sparse routing-matrix kernel: link loads are one
    ``R.T @ demand`` mat-vec and the busiest-link time a NumPy max,
    instead of per-path Python loops.  Pass ``kernel`` to share one
    assembled :class:`~repro.perf.costmodel.CostModelKernel` across
    cost models of the same fabric (the alternating optimizer does).
    """

    def __init__(
        self,
        fabric,
        compute_s: float,
        kernel: Optional[CostModelKernel] = None,
    ):
        self.fabric = fabric
        self.compute_s = compute_s
        self.kernel = kernel if kernel is not None else _warm_kernel(fabric)

    def mp_time(self, traffic: TrafficSummary) -> float:
        return self.kernel.mp_time(traffic)

    def allreduce_time(self, traffic: TrafficSummary) -> float:
        return self.kernel.allreduce_time(traffic)

    def cost(self, traffic: TrafficSummary) -> float:
        return self.kernel.cost(traffic, self.compute_s)


@dataclass
class MCMCResult:
    """Outcome of one MCMC search (best state over all chains)."""

    strategy: ParallelizationStrategy
    traffic: TrafficSummary
    cost_s: float
    accepted_moves: int
    proposed_moves: int
    cost_trace: List[float] = field(default_factory=list)
    chains: int = 1
    chain_best_costs: List[float] = field(default_factory=list)


class _FullRebuildScorer:
    """Seed scoring discipline: rebuild everything for every proposal."""

    def __init__(self, search: "MCMCSearch", fabric):
        self.search = search
        self.cost_model = ReferenceIterationCostModel(
            fabric, search.compute_s
        )

    def _extract(self, strategy: ParallelizationStrategy) -> TrafficSummary:
        return extract_traffic(
            self.search.model,
            strategy,
            self.search.batch_per_gpu,
            self.search.gpus_per_server,
        )

    def begin(self, strategy: ParallelizationStrategy) -> float:
        return self.cost_model.cost(self._extract(strategy))

    def candidate(
        self,
        candidate: ParallelizationStrategy,
        name: str,
        old_placement: LayerPlacement,
        new_placement: LayerPlacement,
    ) -> float:
        return self.cost_model.cost(self._extract(candidate))

    def accept(self) -> None:
        pass

    def reject(self) -> None:
        pass


class _IncrementalScorer:
    """Kernel scoring discipline: delta-update only the moved layer."""

    def __init__(
        self,
        search: "MCMCSearch",
        fabric,
        kernel: Optional[CostModelKernel] = None,
    ):
        self.search = search
        self.kernel = kernel if kernel is not None else _warm_kernel(fabric)
        self.evaluator = IncrementalCostEvaluator(
            self.kernel, search.compute_s
        )
        self._layers = {layer.name: layer for layer in search.model.layers}
        self._compiled: Dict[Tuple[str, LayerPlacement], object] = {}
        self._pending: Optional[Tuple[str, object]] = None

    def _compiled_for(self, name: str, placement: LayerPlacement):
        key = (name, placement)
        compiled = self._compiled.get(key)
        if compiled is None:
            contribution = layer_traffic(
                self._layers[name],
                placement,
                self.search.batch_per_server,
                self.search.num_servers,
            )
            compiled = self.kernel.compile_layer(contribution)
            self._compiled[key] = compiled
        return compiled

    def begin(self, strategy: ParallelizationStrategy) -> float:
        strategy.validate_against(self.search.model)
        self.evaluator.reset({
            name: self._compiled_for(name, strategy.placement(name))
            for name in self._layers
        })
        return self.evaluator.cost()

    def candidate(
        self,
        candidate: ParallelizationStrategy,
        name: str,
        old_placement: LayerPlacement,
        new_placement: LayerPlacement,
    ) -> float:
        self._pending = (name, self.evaluator.layer(name))
        self.evaluator.set_layer(name, self._compiled_for(name, new_placement))
        return self.evaluator.cost()

    def accept(self) -> None:
        self._pending = None

    def reject(self) -> None:
        name, old = self._pending
        self.evaluator.set_layer(name, old)  # O(delta) undo
        self._pending = None


class MCMCSearch:
    """Markov Chain Monte Carlo over layer placements."""

    def __init__(
        self,
        model: DNNModel,
        num_servers: int,
        batch_per_gpu: Optional[int] = None,
        gpus_per_server: int = 4,
        gpu: GPUSpec = A100,
        temperature: float = 0.05,
        seed: int = 0,
    ):
        self.model = model
        self.num_servers = num_servers
        self.batch_per_gpu = batch_per_gpu or model.default_batch_per_gpu
        self.gpus_per_server = gpus_per_server
        self.gpu = gpu
        self.temperature = temperature
        self.seed = seed
        self.rng = random.Random(seed)
        self.compute_s = compute_time_seconds(
            model, self.batch_per_gpu, gpus_per_server, gpu
        )
        self._movable = [layer.name for layer in model.embedding_layers]

    @property
    def batch_per_server(self) -> int:
        return self.batch_per_gpu * self.gpus_per_server

    # ------------------------------------------------------------------
    def initial_strategy(self) -> ParallelizationStrategy:
        """Start from the Meta-style hybrid if embeddings exist, else DP."""
        if self._movable:
            return hybrid_strategy(self.model, self.num_servers)
        return data_parallel_strategy(self.model, self.num_servers)

    def _propose_move(
        self, strategy: ParallelizationStrategy, rng: random.Random
    ) -> Optional[Tuple[str, LayerPlacement]]:
        """Draw one placement move; None when identity (nothing moves)."""
        if not self._movable:
            return None
        layer_name = rng.choice(self._movable)
        current = strategy.placement(layer_name)
        move = rng.random()
        all_servers = tuple(range(self.num_servers))
        if move < 0.60:
            # Move / assign a model-parallel owner.
            owner = rng.randrange(self.num_servers)
            new = LayerPlacement(PlacementKind.MODEL_PARALLEL, (owner,))
        elif move < 0.85:
            new = LayerPlacement(PlacementKind.DATA_PARALLEL, all_servers)
        else:
            new = LayerPlacement(PlacementKind.SHARDED)
        if new == current:
            return None
        return layer_name, new

    def propose(
        self, strategy: ParallelizationStrategy
    ) -> ParallelizationStrategy:
        """One random placement move (identity when nothing is movable)."""
        move = self._propose_move(strategy, self.rng)
        if move is None:
            return strategy
        return strategy.with_placement(*move)

    # ------------------------------------------------------------------
    def _run_chain(
        self,
        iterations: int,
        initial: Optional[ParallelizationStrategy],
        rng: random.Random,
        scorer,
    ) -> MCMCResult:
        """Run one Metropolis chain; return its best state."""
        strategy = initial or self.initial_strategy()
        cost = scorer.begin(strategy)
        best_strategy, best_cost = strategy, cost
        trace = [cost]
        accepted = 0
        for _ in range(iterations):
            move = self._propose_move(strategy, rng)
            if move is None:
                trace.append(cost)
                continue
            name, new_placement = move
            old_placement = strategy.placement(name)
            candidate = strategy.with_placement(name, new_placement)
            candidate_cost = scorer.candidate(
                candidate, name, old_placement, new_placement
            )
            delta = candidate_cost - cost
            scale = max(cost, 1e-9) * self.temperature
            if delta <= ACCEPT_TOL * max(cost, 1e-9) or rng.random() < (
                math.exp(-delta / scale)
            ):
                scorer.accept()
                strategy, cost = candidate, candidate_cost
                accepted += 1
                if cost < best_cost:
                    best_strategy, best_cost = strategy, cost
            else:
                scorer.reject()
            trace.append(cost)
        traffic = extract_traffic(
            self.model, best_strategy, self.batch_per_gpu,
            self.gpus_per_server,
        )
        return MCMCResult(
            strategy=best_strategy,
            traffic=traffic,
            cost_s=best_cost,
            accepted_moves=accepted,
            proposed_moves=iterations,
            cost_trace=trace,
        )

    def _chain_rng(self, chain: int) -> random.Random:
        """Chain 0 reuses ``self.rng`` (seed-compatible); others derive.

        Extra chains are seeded from ``self.rng`` *after* the previous
        chain ran, so they stay deterministic for a given search seed
        yet decorrelated across repeated ``search`` calls (the
        alternating optimizer searches once per round).
        """
        if chain == 0:
            return self.rng
        return random.Random(self.rng.getrandbits(64))

    def search(
        self,
        fabric,
        iterations: int = 200,
        initial: Optional[ParallelizationStrategy] = None,
        *,
        incremental: bool = True,
        restarts: int = 1,
        kernel: Optional[CostModelKernel] = None,
    ) -> MCMCResult:
        """Run the Metropolis chain(s) on ``fabric``; return the best state.

        Parameters
        ----------
        incremental:
            Score proposals through the sparse incremental kernel (the
            default); ``False`` selects the retained seed full-rebuild
            path (:class:`ReferenceIterationCostModel`), used by the
            equivalence tests and benchmarks.
        restarts:
            Number of independent seeded chains (best-of).  Cheap now
            that a step no longer re-routes all n^2 pairs; chains share
            one routing kernel and compiled-layer cache.
        kernel:
            Optional pre-assembled routing kernel for ``fabric``; the
            alternating optimizer passes one to reuse it across rounds.
        """
        if restarts < 1:
            raise ValueError("need at least one chain")
        if incremental:
            scorer = _IncrementalScorer(self, fabric, kernel)
        else:
            scorer = _FullRebuildScorer(self, fabric)
        results = []
        for c in range(restarts):
            # Spans time the chain; counters come from the chain's own
            # tallies afterwards, so the Metropolis RNG stream is never
            # touched by instrumentation.
            with TRACER.span("mcmc.chain", cat="pipeline", chain=c,
                             iterations=iterations, model=self.model.name):
                result = self._run_chain(
                    iterations, initial, self._chain_rng(c), scorer
                )
            results.append(result)
            if TRACER.enabled:
                TRACER.count("mcmc.proposed", result.proposed_moves)
                TRACER.count("mcmc.accepted", result.accepted_moves)
        best = min(results, key=lambda result: result.cost_s)
        best.chains = restarts
        best.chain_best_costs = [result.cost_s for result in results]
        if restarts > 1:
            best.accepted_moves = sum(r.accepted_moves for r in results)
            best.proposed_moves = sum(r.proposed_moves for r in results)
        return best
