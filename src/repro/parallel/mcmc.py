"""FlexFlow-style MCMC parallelization-strategy search (section 4.1).

FlexFlow explores parallelization strategies with Markov Chain Monte
Carlo over placement moves, scoring candidates with a fast analytic
execution simulator.  This module reimplements that loop for the
placement space the paper's workloads occupy:

* toggle an embedding layer between data-parallel, model-parallel on
  some owner server, and sharded (all-to-all);
* move a model-parallel layer to a different owner.

Candidates are scored by :class:`IterationCostModel`, a topology-aware
analytic estimator (the "FlexNet coarse" model): compute time from the
roofline, plus per-phase communication time lower-bounded by the most
loaded link after routing all transfers over the fabric's paths.  The
Metropolis criterion accepts worse states with probability
``exp(-delta / T)``, and the best state ever visited is returned.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.models.base import DNNModel
from repro.models.compute import GPUSpec, A100, compute_time_seconds
from repro.parallel.strategy import (
    LayerPlacement,
    ParallelizationStrategy,
    PlacementKind,
    data_parallel_strategy,
    hybrid_strategy,
)
from repro.parallel.traffic import TrafficSummary, extract_traffic

Link = Tuple[int, int]


class IterationCostModel:
    """Analytic iteration-time estimate on a fabric (FlexNet coarse).

    ``cost(traffic)`` = compute + busiest-link time of the MP phase +
    busiest-link time of the AllReduce phase.  The busiest-link bound is
    the fluid simulator's makespan when the bottleneck link is shared by
    flows of equal length, and a tight lower bound otherwise -- accurate
    enough to rank strategies, orders of magnitude faster than
    simulating, which is what lets MCMC take thousands of steps.
    """

    def __init__(self, fabric, compute_s: float):
        self.fabric = fabric
        self.compute_s = compute_s
        self._capacities = fabric.capacities()
        self._path_cache: Dict[Tuple[int, int, str], List[List[int]]] = {}

    def _paths(self, src: int, dst: int, kind: str) -> List[List[int]]:
        key = (src, dst, kind)
        if key not in self._path_cache:
            self._path_cache[key] = self.fabric.paths(src, dst, kind)
        return self._path_cache[key]

    def _phase_time(self, link_bytes: Dict[Link, float]) -> float:
        worst = 0.0
        for link, byte_count in link_bytes.items():
            capacity = self._capacities.get(link)
            if capacity is None or capacity <= 0:
                raise KeyError(f"routed traffic uses unknown link {link}")
            worst = max(worst, 8.0 * byte_count / capacity)
        return worst

    def mp_time(self, traffic: TrafficSummary) -> float:
        link_bytes: Dict[Link, float] = {}
        matrix = traffic.mp_matrix
        n = traffic.n
        for src in range(n):
            row = matrix[src]
            for dst in range(n):
                byte_count = row[dst]
                if src == dst or byte_count <= 0:
                    continue
                paths = self._paths(src, dst, "mp")
                if not paths:
                    return math.inf
                share = byte_count / len(paths)
                for path in paths:
                    for i in range(len(path) - 1):
                        link = (path[i], path[i + 1])
                        link_bytes[link] = link_bytes.get(link, 0.0) + share
        return self._phase_time(link_bytes)

    def allreduce_time(self, traffic: TrafficSummary) -> float:
        from repro.parallel.collectives import allreduce_edge_bytes

        link_bytes: Dict[Link, float] = {}
        for group in traffic.allreduce_groups:
            if group.size < 2 or group.total_bytes <= 0:
                continue
            ring_paths = []
            if hasattr(self.fabric, "ring_edge_paths"):
                ring_paths = self.fabric.ring_edge_paths(group.members)
            if ring_paths:
                for path, num_rings in ring_paths:
                    per_edge = allreduce_edge_bytes(
                        group.total_bytes, group.size, num_rings
                    )
                    for i in range(len(path) - 1):
                        link = (path[i], path[i + 1])
                        link_bytes[link] = link_bytes.get(link, 0.0) + per_edge
            else:
                per_edge = allreduce_edge_bytes(group.total_bytes, group.size)
                members = group.members
                k = len(members)
                for i in range(k):
                    src, dst = members[i], members[(i + 1) % k]
                    paths = self._paths(src, dst, "allreduce")
                    if not paths:
                        return math.inf
                    share = per_edge / len(paths)
                    for path in paths:
                        for j in range(len(path) - 1):
                            link = (path[j], path[j + 1])
                            link_bytes[link] = (
                                link_bytes.get(link, 0.0) + share
                            )
        return self._phase_time(link_bytes)

    def cost(self, traffic: TrafficSummary) -> float:
        return (
            self.compute_s
            + self.mp_time(traffic)
            + self.allreduce_time(traffic)
        )


@dataclass
class MCMCResult:
    """Outcome of one MCMC search."""

    strategy: ParallelizationStrategy
    traffic: TrafficSummary
    cost_s: float
    accepted_moves: int
    proposed_moves: int
    cost_trace: List[float] = field(default_factory=list)


class MCMCSearch:
    """Markov Chain Monte Carlo over layer placements."""

    def __init__(
        self,
        model: DNNModel,
        num_servers: int,
        batch_per_gpu: Optional[int] = None,
        gpus_per_server: int = 4,
        gpu: GPUSpec = A100,
        temperature: float = 0.05,
        seed: int = 0,
    ):
        self.model = model
        self.num_servers = num_servers
        self.batch_per_gpu = batch_per_gpu or model.default_batch_per_gpu
        self.gpus_per_server = gpus_per_server
        self.gpu = gpu
        self.temperature = temperature
        self.rng = random.Random(seed)
        self.compute_s = compute_time_seconds(
            model, self.batch_per_gpu, gpus_per_server, gpu
        )
        self._movable = [layer.name for layer in model.embedding_layers]

    # ------------------------------------------------------------------
    def initial_strategy(self) -> ParallelizationStrategy:
        """Start from the Meta-style hybrid if embeddings exist, else DP."""
        if self._movable:
            return hybrid_strategy(self.model, self.num_servers)
        return data_parallel_strategy(self.model, self.num_servers)

    def propose(
        self, strategy: ParallelizationStrategy
    ) -> ParallelizationStrategy:
        """One random placement move (identity when nothing is movable)."""
        if not self._movable:
            return strategy
        layer_name = self.rng.choice(self._movable)
        current = strategy.placement(layer_name)
        move = self.rng.random()
        all_servers = tuple(range(self.num_servers))
        if move < 0.60:
            # Move / assign a model-parallel owner.
            owner = self.rng.randrange(self.num_servers)
            new = LayerPlacement(PlacementKind.MODEL_PARALLEL, (owner,))
        elif move < 0.85:
            new = LayerPlacement(PlacementKind.DATA_PARALLEL, all_servers)
        else:
            new = LayerPlacement(PlacementKind.SHARDED)
        if new == current:
            return strategy
        return strategy.with_placement(layer_name, new)

    def search(
        self,
        fabric,
        iterations: int = 200,
        initial: Optional[ParallelizationStrategy] = None,
    ) -> MCMCResult:
        """Run the Metropolis chain on ``fabric``; return the best state."""
        cost_model = IterationCostModel(fabric, self.compute_s)
        strategy = initial or self.initial_strategy()
        traffic = extract_traffic(
            self.model, strategy, self.batch_per_gpu, self.gpus_per_server
        )
        cost = cost_model.cost(traffic)
        best = MCMCResult(
            strategy=strategy,
            traffic=traffic,
            cost_s=cost,
            accepted_moves=0,
            proposed_moves=0,
            cost_trace=[cost],
        )
        accepted = 0
        for _ in range(iterations):
            candidate = self.propose(strategy)
            if candidate is strategy:
                best.cost_trace.append(cost)
                continue
            candidate_traffic = extract_traffic(
                self.model,
                candidate,
                self.batch_per_gpu,
                self.gpus_per_server,
            )
            candidate_cost = cost_model.cost(candidate_traffic)
            delta = candidate_cost - cost
            scale = max(cost, 1e-9) * self.temperature
            if delta <= 0 or self.rng.random() < math.exp(-delta / scale):
                strategy, traffic, cost = (
                    candidate,
                    candidate_traffic,
                    candidate_cost,
                )
                accepted += 1
                if cost < best.cost_s:
                    best.strategy = strategy
                    best.traffic = traffic
                    best.cost_s = cost
            best.cost_trace.append(cost)
        best.accepted_moves = accepted
        best.proposed_moves = iterations
        return best
