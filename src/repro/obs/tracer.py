"""Zero-overhead-when-disabled structured tracing core.

The process-wide :data:`TRACER` is the single instrumentation point the
rest of the codebase talks to.  By default no recorder is installed and
every call degenerates to one attribute load plus a ``None`` check --
``span()`` hands back a shared no-op context manager, ``count()`` /
``gauge()`` / ``sample()`` return immediately -- so instrumented code
paths stay byte-identical to their un-instrumented selves: no RNG
draws, no container mutations, no float arithmetic happen on the
disabled path.

Enable it by installing a :class:`TraceRecorder`, almost always through
the :meth:`Tracer.recording` context manager::

    >>> from repro.obs.tracer import TRACER
    >>> with TRACER.recording() as rec:
    ...     with TRACER.span("outer", cat="demo"):
    ...         with TRACER.span("inner", cat="demo"):
    ...             TRACER.count("demo.widgets")
    ...         TRACER.gauge("demo.level", 3.5)
    >>> [(s.name, s.depth) for s in sorted(rec.spans, key=lambda s: s.seq)]
    [('outer', 0), ('inner', 1)]
    >>> (rec.counters["demo.widgets"], rec.gauges["demo.level"])
    (1, 3.5)
    >>> TRACER.enabled
    False

Recorded spans carry wall-clock ``start_s``/``dur_s`` (relative to the
recorder's creation), a nesting ``depth``, and a monotonically
increasing ``seq`` stamped at *enter* time, so both the call order and
the parent/child structure are recoverable.  Simulated-time series go
into run-length-encoded :class:`RleTimeline` objects via
:meth:`Tracer.sample` -- a sample is stored only when the value
changes, which is what keeps per-link utilization tracking cheap.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple


class RleTimeline:
    """A run-length-encoded ``(time, value)`` series.

    ``sample`` appends only when the value differs from the last stored
    one, so a step function sampled at every event costs storage
    proportional to its *changes*:

    >>> tl = RleTimeline()
    >>> for t, v in [(0.0, 1.0), (1.0, 1.0), (2.0, 0.5), (3.0, 0.5)]:
    ...     tl.sample(t, v)
    >>> tl.to_list()
    [[0.0, 1.0], [2.0, 0.5]]
    """

    __slots__ = ("points",)

    def __init__(self) -> None:
        self.points: List[Tuple[float, float]] = []

    def sample(self, t: float, value: float) -> None:
        if self.points and self.points[-1][1] == value:
            return
        self.points.append((t, value))

    def to_list(self) -> List[List[float]]:
        return [[float(t), float(v)] for t, v in self.points]

    def __len__(self) -> int:
        return len(self.points)


class SpanEvent:
    """One completed span: what ran, when, for how long, how deep."""

    __slots__ = ("name", "cat", "start_s", "dur_s", "depth", "tid", "seq",
                 "args")

    def __init__(self, name: str, cat: str, start_s: float, dur_s: float,
                 depth: int, tid: int, seq: int,
                 args: Optional[Dict[str, Any]]):
        self.name = name
        self.cat = cat
        self.start_s = start_s
        self.dur_s = dur_s
        self.depth = depth
        self.tid = tid
        self.seq = seq
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanEvent({self.name!r}, cat={self.cat!r}, "
                f"start_s={self.start_s:.6f}, dur_s={self.dur_s:.6f}, "
                f"depth={self.depth}, seq={self.seq})")


class TraceRecorder:
    """Collects spans, counters, gauges, and RLE timelines for one run.

    Timestamps are wall-clock seconds relative to the recorder's
    creation (``now()``).  The hot entry points (``next_seq``,
    ``add_span``, ``set_gauge``, ``timeline``) rely on operations the
    CPython runtime already makes atomic -- ``itertools.count``,
    ``list.append``, dict assignment and ``dict.setdefault`` -- so the
    single-threaded engine pays no lock per event while the service
    layer's worker threads can still record concurrently.  Only
    ``bump`` (a read-modify-write) takes the lock.
    """

    def __init__(self) -> None:
        self.spans: List[SpanEvent] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timelines: Dict[str, RleTimeline] = {}
        self._seq = itertools.count()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._flush_hooks: List[Any] = []

    # -- clocks and identifiers ---------------------------------------
    def now(self) -> float:
        """Seconds of wall-clock time since this recorder was created."""
        return time.perf_counter() - self._t0

    def next_seq(self) -> int:
        return next(self._seq)

    # -- recording ----------------------------------------------------
    def add_span(self, span: SpanEvent) -> None:
        self.spans.append(span)

    def bump(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def timeline(self, name: str) -> RleTimeline:
        timeline = self.timelines.get(name)
        if timeline is None:
            timeline = self.timelines.setdefault(name, RleTimeline())
        return timeline

    # -- deferred producers -------------------------------------------
    def add_flush_hook(self, hook) -> None:
        """Register ``hook(recorder)`` to run before the data is read.

        Hot-path producers that batch raw samples (e.g. the fluid
        substrate's per-solve utilization snapshots) register a hook
        and do the expensive conversion into timelines only when an
        exporter or report asks, via :meth:`flush`.  Hooks must be
        idempotent across calls (convert-and-clear).
        """
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Run every registered flush hook (exporters call this)."""
        for hook in self._flush_hooks:
            hook(self)

    # -- summaries ----------------------------------------------------
    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregates: count, total and max duration."""
        summary: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            entry = summary.get(span.name)
            if entry is None:
                entry = summary[span.name] = {
                    "count": 0, "total_s": 0.0, "max_s": 0.0,
                }
            entry["count"] += 1
            entry["total_s"] += span.dur_s
            if span.dur_s > entry["max_s"]:
                entry["max_s"] = span.dur_s
        return summary


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: measures wall time between ``__enter__``/``__exit__``.

    On exit it records *itself* -- it carries the same attribute set as
    :class:`SpanEvent`, so appending the span object skips one
    allocation per span on the hottest instrumentation path.
    """

    __slots__ = ("_recorder", "_local", "name", "cat", "args", "start_s",
                 "dur_s", "depth", "tid", "seq")

    def __init__(self, recorder: TraceRecorder, local: threading.local,
                 name: str, cat: str, args: Optional[Dict[str, Any]]):
        # start_s/dur_s/depth/tid/seq are assigned in __enter__/__exit__;
        # skipping the placeholder writes here keeps the span cheap.
        self._recorder = recorder
        self._local = local
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        local = self._local
        try:
            depth = local.depth
        except AttributeError:
            depth = 0
        self.depth = depth
        local.depth = depth + 1
        self.seq = next(self._recorder._seq)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        recorder = self._recorder
        self.dur_s = end - self.start_s
        self.start_s -= recorder._t0
        self._local.depth = self.depth
        self.tid = threading.get_ident()
        recorder.spans.append(self)
        return False


class _BatchSpan:
    """A reusable context manager batching many spans of one name.

    For loops hot enough that even one object allocation per span
    matters (the scenario engine's per-event step, the flow kernel's
    per-solve timing): entering/exiting only appends a raw
    ``(start, end)`` ``perf_counter`` pair; the pairs are materialized
    into ordinary :class:`SpanEvent` records by the recorder's flush
    hook, so exporters and reports see full span fidelity.  Not
    reentrant -- one instance times one site, never nested with itself.
    """

    __slots__ = ("name", "cat", "depth", "tid", "raw", "_start")

    def __init__(self, recorder: TraceRecorder, name: str, cat: str,
                 depth: int):
        self.name = name
        self.cat = cat
        self.depth = depth
        self.tid = threading.get_ident()
        self.raw: List[Tuple[float, float]] = []
        recorder.add_flush_hook(self._flush)

    def __enter__(self) -> "_BatchSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.raw.append((self._start, time.perf_counter()))
        return False

    def _flush(self, recorder: TraceRecorder) -> None:
        raw, self.raw = self.raw, []
        t0 = recorder._t0
        for start, end in raw:
            recorder.spans.append(SpanEvent(
                self.name, self.cat, start - t0, end - start, self.depth,
                self.tid, recorder.next_seq(), None,
            ))


class Tracer:
    """The process-wide instrumentation facade.

    ``enabled`` is ``False`` until a recorder is installed; every
    recording method checks that first and bails out without touching
    anything, which is the whole zero-overhead contract.
    """

    def __init__(self) -> None:
        self._recorder: Optional[TraceRecorder] = None
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        return self._recorder is not None

    @property
    def recorder(self) -> Optional[TraceRecorder]:
        return self._recorder

    # -- recording lifecycle ------------------------------------------
    def set_recorder(
        self, recorder: Optional[TraceRecorder]
    ) -> Optional[TraceRecorder]:
        """Install (or clear) the active recorder; returns the previous."""
        previous = self._recorder
        self._recorder = recorder
        return previous

    @contextmanager
    def recording(
        self, recorder: Optional[TraceRecorder] = None
    ) -> Iterator[TraceRecorder]:
        """Scope a recorder: installed on entry, restored on exit."""
        active = TraceRecorder() if recorder is None else recorder
        previous = self.set_recorder(active)
        try:
            yield active
        finally:
            self.set_recorder(previous)

    # -- instrumentation entry points ---------------------------------
    def span(self, name: str, cat: str = "repro", **args: Any):
        """A context manager timing ``name``; a shared no-op when off."""
        recorder = self._recorder
        if recorder is None:
            return _NULL_SPAN
        return _Span(recorder, self._local, name, cat, args or None)

    def batch_span(self, name: str, cat: str = "repro"):
        """A reusable batching span context for very hot loops.

        Create once outside the loop, enter/exit per iteration; a
        shared no-op when tracing is off.  See :class:`_BatchSpan` for
        the cost model and the not-reentrant caveat.
        """
        recorder = self._recorder
        if recorder is None:
            return _NULL_SPAN
        depth = getattr(self._local, "depth", 0)
        return _BatchSpan(recorder, name, cat, depth)

    def count(self, name: str, value: float = 1) -> None:
        recorder = self._recorder
        if recorder is not None:
            recorder.bump(name, value)

    def gauge(self, name: str, value: float) -> None:
        recorder = self._recorder
        if recorder is not None:
            recorder.set_gauge(name, value)

    def sample(self, name: str, t: float, value: float) -> None:
        """Append to the RLE timeline ``name`` (stored only on change)."""
        recorder = self._recorder
        if recorder is not None:
            recorder.timeline(name).sample(t, value)


#: The process-wide tracer every instrumented module imports.
TRACER = Tracer()
