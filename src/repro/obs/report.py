"""A typed roll-up merging the repo's fragmented telemetry dialects.

Before the obs plane, "where did this scenario spend its time?" meant
stitching together ``scheduler_log`` events, ``warmcache.stats()``,
``ServiceCounters`` snapshots, and ``bench --profile`` prints by hand.
:class:`ObsReport` is the one schema they all land in: span aggregates
and counters from a :class:`~repro.obs.tracer.TraceRecorder`, the
process-wide warm-cache counters, scheduler event counts (recorded as
``scheduler.*`` counters by the engine), per-link utilization RLE
timelines from the fluid substrate, and -- when a service run is being
observed -- the executor's counter snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.tracer import TraceRecorder

_REPORT_KEYS = ("spans", "counters", "gauges", "warmcache", "timelines",
                "service")


@dataclass(frozen=True)
class ObsReport:
    """One observed run, merged into a single JSON-native schema."""

    #: Per-span-name aggregates: ``{"count", "total_s", "max_s"}``.
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Flat counters (``scheduler.admit``, ``mcmc.accepted``, ...).
    counters: Dict[str, float] = field(default_factory=dict)
    #: Last-value gauges (``engine.sim_now_s``, ...).
    gauges: Dict[str, float] = field(default_factory=dict)
    #: ``repro.perf.warmcache.stats()`` snapshot at report time.
    warmcache: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: RLE timelines as ``[[t, value], ...]`` point lists.
    timelines: Dict[str, List[List[float]]] = field(default_factory=dict)
    #: ``ServiceCounters`` snapshot when a service run was observed.
    service: Optional[Dict[str, Any]] = None

    @classmethod
    def build(
        cls,
        recorder: TraceRecorder,
        service: Optional[Dict[str, Any]] = None,
    ) -> "ObsReport":
        """Snapshot ``recorder`` plus the process-wide warm caches."""
        from repro.perf import warmcache

        recorder.flush()
        return cls(
            spans=recorder.span_summary(),
            counters=dict(recorder.counters),
            gauges=dict(recorder.gauges),
            warmcache=warmcache.stats(),
            timelines={
                name: timeline.to_list()
                for name, timeline in recorder.timelines.items()
            },
            service=dict(service) if service is not None else None,
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "spans": {
                name: dict(entry) for name, entry in sorted(self.spans.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "warmcache": {
                name: dict(entry)
                for name, entry in sorted(self.warmcache.items())
            },
            "timelines": {
                name: [list(point) for point in points]
                for name, points in sorted(self.timelines.items())
            },
        }
        if self.service is not None:
            data["service"] = dict(self.service)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObsReport":
        unknown = sorted(set(data) - set(_REPORT_KEYS))
        if unknown:
            raise ValueError(f"ObsReport: unknown keys {unknown}")
        return cls(
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            warmcache={
                k: dict(v) for k, v in data.get("warmcache", {}).items()
            },
            timelines={
                k: [list(p) for p in v]
                for k, v in data.get("timelines", {}).items()
            },
            service=(dict(data["service"])
                     if data.get("service") is not None else None),
        )

    # -- human-readable summary ---------------------------------------
    def format_lines(self) -> List[str]:
        """A compact terminal summary, hottest spans first."""
        lines = ["observability report"]
        ranked = sorted(
            self.spans.items(),
            key=lambda item: item[1]["total_s"],
            reverse=True,
        )
        for name, entry in ranked:
            lines.append(
                f"  span {name:<28s} count={int(entry['count']):>6d} "
                f"total={entry['total_s'] * 1e3:9.2f}ms "
                f"max={entry['max_s'] * 1e3:8.3f}ms"
            )
        for name, value in sorted(self.counters.items()):
            lines.append(f"  counter {name:<25s} {value:g}")
        for name, value in sorted(self.gauges.items()):
            lines.append(f"  gauge {name:<27s} {value:g}")
        for cache, entry in sorted(self.warmcache.items()):
            lines.append(
                f"  warmcache {cache:<23s} "
                + " ".join(f"{k}={entry[k]}" for k in sorted(entry))
            )
        if self.timelines:
            points = sum(len(p) for p in self.timelines.values())
            lines.append(
                f"  timelines {len(self.timelines)} series, "
                f"{points} RLE points"
            )
        if self.service is not None:
            lines.append(
                "  service "
                + " ".join(
                    f"{k}={self.service[k]}" for k in sorted(self.service)
                )
            )
        return lines
