"""Exporters turning a :class:`~repro.obs.tracer.TraceRecorder` into files.

Two formats:

* :func:`chrome_trace` -- the Chrome trace-event JSON object format
  (load the written file in ``chrome://tracing`` or https://ui.perfetto.dev).
  Wall-clock spans become ``ph: "X"`` complete events under pid 0;
  simulated-time RLE timelines (e.g. per-link utilization) become
  ``ph: "C"`` counter tracks under pid 1, so the two clock domains
  never share an axis.
* :func:`metrics_jsonl` -- a flat JSON-lines stream (one object per
  span / counter / gauge / timeline point) for ad-hoc ``jq``-style
  analysis and for feeding later adaptive-controller experiments.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.tracer import TraceRecorder

#: ``pid`` of the wall-clock span rows in the Chrome trace.
WALL_PID = 0
#: ``pid`` of the simulated-time counter tracks in the Chrome trace.
SIM_PID = 1


def chrome_trace(recorder: TraceRecorder) -> Dict[str, Any]:
    """The recorder as a Chrome trace-event JSON object.

    Timestamps are microseconds (the format's unit).  Span rows sit
    under pid 0 keyed by recording thread; timeline counters sit under
    pid 1 with their simulated time mapped onto the ``ts`` axis.
    """
    recorder.flush()
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": WALL_PID, "tid": 0,
         "args": {"name": "wall-clock spans"}},
        {"name": "process_name", "ph": "M", "pid": SIM_PID, "tid": 0,
         "args": {"name": "simulated-time counters"}},
    ]
    for span in sorted(recorder.spans, key=lambda s: (s.start_s, s.seq)):
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": round(span.start_s * 1e6, 3),
            "dur": round(span.dur_s * 1e6, 3),
            "pid": WALL_PID,
            "tid": span.tid,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    for name in sorted(recorder.timelines):
        for t, value in recorder.timelines[name].points:
            events.append({
                "name": name,
                "ph": "C",
                "ts": round(t * 1e6, 3),
                "pid": SIM_PID,
                "tid": 0,
                "args": {"value": value},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(sorted(recorder.counters.items())),
            "gauges": dict(sorted(recorder.gauges.items())),
        },
    }


def write_chrome_trace(path: str, recorder: TraceRecorder) -> None:
    """Write :func:`chrome_trace` output as a loadable ``.json`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(recorder), handle, indent=2, sort_keys=True)
        handle.write("\n")


def metrics_jsonl(recorder: TraceRecorder) -> str:
    """The recorder flattened into one JSON object per line.

    Lines carry a ``kind`` discriminator: ``span`` (one per completed
    span, in start order), ``counter``, ``gauge``, and ``timeline``
    (one per RLE point).
    """
    recorder.flush()
    lines: List[str] = []

    def emit(payload: Dict[str, Any]) -> None:
        lines.append(json.dumps(payload, sort_keys=True))

    for span in sorted(recorder.spans, key=lambda s: (s.start_s, s.seq)):
        payload: Dict[str, Any] = {
            "kind": "span",
            "name": span.name,
            "cat": span.cat,
            "start_s": span.start_s,
            "dur_s": span.dur_s,
            "depth": span.depth,
            "seq": span.seq,
        }
        if span.args:
            payload["args"] = dict(span.args)
        emit(payload)
    for name, value in sorted(recorder.counters.items()):
        emit({"kind": "counter", "name": name, "value": value})
    for name, value in sorted(recorder.gauges.items()):
        emit({"kind": "gauge", "name": name, "value": value})
    for name in sorted(recorder.timelines):
        for t, value in recorder.timelines[name].points:
            emit({"kind": "timeline", "name": name, "t": t, "value": value})
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_jsonl(path: str, recorder: TraceRecorder) -> None:
    """Write :func:`metrics_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_jsonl(recorder))
