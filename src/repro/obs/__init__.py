"""Unified observability plane: tracing, metrics, timeline exporters.

``from repro.obs import TRACER`` is the only import an instrumented
module needs; everything is a no-op until a recorder is installed (see
:mod:`repro.obs.tracer` for the zero-overhead contract).  Exporters and
the merged :class:`ObsReport` schema live in :mod:`repro.obs.export`
and :mod:`repro.obs.report`.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_jsonl,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.report import ObsReport
from repro.obs.tracer import (
    TRACER,
    RleTimeline,
    SpanEvent,
    TraceRecorder,
    Tracer,
)

__all__ = [
    "TRACER",
    "Tracer",
    "TraceRecorder",
    "SpanEvent",
    "RleTimeline",
    "ObsReport",
    "chrome_trace",
    "metrics_jsonl",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
