"""Batched progressive filling over a sparse flow--link incidence matrix.

The max-min fair allocation is computed exactly as in the textbook
algorithm (and in :class:`repro.sim.fluid.ReferenceFluidNetwork`): all
unfrozen flows grow together until some link saturates, every flow
crossing a saturated link freezes at the link's fair share, and the
remaining flows keep growing.  The difference is purely operational --
one round here processes *every* link that reaches the minimal fair
share simultaneously (equal shares are fixed points of the update, so
batching ties is equivalent to freezing them one at a time), and each
round is a handful of sparse matrix-vector products instead of a Python
scan over every (link, flow) pair.  Symmetric workloads (uniform
all-to-all, AllReduce rings) collapse from thousands of rounds to one.
"""

from __future__ import annotations

import heapq
from itertools import chain
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

_EPS = 1e-12
Edge = Tuple[int, int]


def build_incidence(
    link_lists: Sequence[Sequence[Hashable]],
    capacities: Dict[Hashable, float],
) -> Tuple[sparse.csr_matrix, np.ndarray, List[Hashable]]:
    """Build the (links x flows) 0/1 incidence matrix for a flow set.

    Parameters
    ----------
    link_lists:
        Per-flow link sequences (``flow.links``).  Duplicate links
        within one flow are counted once, matching the set semantics of
        the reference allocator.
    capacities:
        Link -> capacity table.  Only links actually crossed by a flow
        get a row, so a dense fabric with ``n^2`` idle links costs
        nothing.

    Returns
    -------
    (incidence, cap_vector, link_order):
        CSR incidence matrix, per-row capacities, and the link each row
        corresponds to.

    Raises
    ------
    KeyError
        If a flow crosses a link missing from ``capacities``.
    """
    link_index: Dict[Hashable, int] = {}
    link_order: List[Hashable] = []
    cap_list: List[float] = []
    rows: List[int] = []
    cols: List[int] = []
    for col, links in enumerate(link_lists):
        for link in dict.fromkeys(links):
            row = link_index.get(link)
            if row is None:
                if link not in capacities:
                    raise KeyError(
                        f"flow {col} uses link {link} which does not "
                        "exist in the network"
                    )
                row = link_index[link] = len(link_order)
                link_order.append(link)
                cap_list.append(float(capacities[link]))
            rows.append(row)
            cols.append(col)
    shape = (len(link_order), len(link_lists))
    incidence = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=shape
    )
    return incidence, np.asarray(cap_list, dtype=float), link_order


def build_incidence_from_paths(
    paths: Sequence[Sequence[int]],
    capacities: Dict[Edge, float],
) -> Tuple[sparse.csr_matrix, np.ndarray, List[Edge]]:
    """Vectorized :func:`build_incidence` for integer node paths.

    Links are the consecutive node pairs of each path, encoded as
    ``a * stride + b`` integers so the whole (flow, link) table is
    deduplicated and indexed with :func:`np.unique` instead of per-hop
    dict lookups -- the construction itself was the bottleneck once the
    solve went sparse.  Semantics match ``build_incidence`` on
    ``[flow.links for flow in flows]``.
    """
    num_flows = len(paths)
    if num_flows == 0:
        return (
            sparse.csr_matrix((0, 0)),
            np.empty(0),
            [],
        )
    lens = np.fromiter((len(p) for p in paths), dtype=np.int64, count=num_flows)
    total = int(lens.sum())
    flat = np.fromiter(chain.from_iterable(paths), dtype=np.int64, count=total)
    # Positions of every hop head: all path positions except the last
    # node of each path.
    mask = np.ones(total, dtype=bool)
    mask[np.cumsum(lens) - 1] = False
    head_pos = np.flatnonzero(mask)
    heads = flat[head_pos]
    tails = flat[head_pos + 1]
    flow_ids = np.repeat(np.arange(num_flows), lens - 1)
    stride = int(flat.max()) + 1
    codes = heads * stride + tails
    # Count each (flow, link) incidence once even if a path revisits a
    # link (set semantics, as in the reference allocator).
    pair_codes = flow_ids * (stride * stride) + codes
    _, keep = np.unique(pair_codes, return_index=True)
    link_rows, row_index = np.unique(codes[keep], return_inverse=True)
    link_order: List[Edge] = []
    cap_list: List[float] = []
    for code in link_rows:
        link = (int(code) // stride, int(code) % stride)
        if link not in capacities:
            raise KeyError(
                f"a flow uses link {link} which does not exist in the network"
            )
        link_order.append(link)
        cap_list.append(float(capacities[link]))
    incidence = sparse.csr_matrix(
        (
            np.ones(len(row_index)),
            (row_index, flow_ids[keep]),
        ),
        shape=(len(link_order), num_flows),
    )
    return incidence, np.asarray(cap_list), link_order


def progressive_filling_rates(
    capacities: np.ndarray,
    incidence: sparse.csr_matrix,
    active: Optional[np.ndarray] = None,
    incidence_t: Optional[sparse.csr_matrix] = None,
) -> np.ndarray:
    """Max-min fair rates for all flows of a sparse incidence matrix.

    Parameters
    ----------
    capacities:
        ``(L,)`` per-link capacities (bits/s).
    incidence:
        ``(L, F)`` CSR 0/1 matrix: entry (l, f) set iff flow f crosses
        link l.
    active:
        Optional ``(F,)`` boolean mask; inactive flows are excluded
        from the allocation and receive rate 0 (used by the phase
        simulator to retire completed flows without rebuilding the
        matrix).
    incidence_t:
        Optional precomputed ``incidence.T`` in CSR form; callers that
        solve repeatedly over the same flow set (the phase simulator)
        pass it to avoid re-transposing every call.

    Returns
    -------
    ``(F,)`` rate vector; identical (up to floating point) to the
    sequential reference allocator.

    Complexity: ``O(rounds * (L + nnz))`` where one round retires every
    link tied at the minimal fair share; symmetric workloads take one
    round, adversarial ones at most ``L``.

    Example -- the textbook three-flow chain (flows A on link 0, B on
    both links, C on link 1; every flow ends up with half a link):

    >>> import numpy as np
    >>> from scipy import sparse
    >>> from repro.perf.fairshare import progressive_filling_rates
    >>> incidence = sparse.csr_matrix(
    ...     np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
    ... )
    >>> progressive_filling_rates(np.array([1.0, 1.0]), incidence)
    array([0.5, 0.5, 0.5])
    """
    num_links, num_flows = incidence.shape
    rates = np.zeros(num_flows)
    if num_flows == 0 or num_links == 0:
        return rates
    if active is None:
        unfrozen = np.ones(num_flows, dtype=bool)
    else:
        unfrozen = active.astype(bool).copy()
    if not unfrozen.any():
        return rates
    if incidence_t is None:
        incidence_t = incidence.T.tocsr()
    residual = np.asarray(capacities, dtype=float).copy()
    counts = incidence @ unfrozen.astype(float)
    # Each round retires at least one link, so L+1 rounds always suffice.
    for _ in range(num_links + 1):
        if not unfrozen.any():
            break
        contended = counts > 0.5
        if not contended.any():
            break
        share = np.full(num_links, np.inf)
        share[contended] = residual[contended] / counts[contended]
        best = share.min()
        bottleneck = share <= best
        hits = incidence_t @ bottleneck.astype(float)
        freeze = unfrozen & (hits > 0.5)
        rates[freeze] = best
        frozen_per_link = incidence @ freeze.astype(float)
        residual = np.maximum(0.0, residual - frozen_per_link * best)
        counts -= frozen_per_link
        unfrozen &= ~freeze
    return rates


def _heap_progressive_fill(
    residual: List[float], flow_links: List[List[int]]
) -> List[float]:
    """Progressive filling on a tiny sub-problem, scalar heap edition.

    Classic single-pass water-filling: a heap of per-link fair shares,
    popping the minimum, freezing that link's flows, and lazily
    re-pushing the shares of the links they also cross.  ``O(nnz log
    L)`` with no per-round vector dispatch, which beats both the dense
    and the sparse kernels by an order of magnitude on the few-dozen-
    flow sub-problems the incremental solver's repair loop produces.
    Rates match the batched kernels up to float rounding (ties are
    retired sequentially here, simultaneously there).
    """
    num_links = len(residual)
    counts = [0] * num_links
    link_flows: List[List[int]] = [[] for _ in range(num_links)]
    for flow, links in enumerate(flow_links):
        for link in links:
            counts[link] += 1
            link_flows[link].append(flow)
    version = [0] * num_links
    heap = [
        (residual[link] / counts[link], link, 0)
        for link in range(num_links)
        if counts[link]
    ]
    heapq.heapify(heap)
    rates = [0.0] * len(flow_links)
    frozen = [False] * len(flow_links)
    remaining = len(flow_links)
    while heap and remaining:
        share, link, stamp = heapq.heappop(heap)
        if stamp != version[link] or counts[link] == 0:
            continue
        if share < 0.0:
            share = 0.0
        for flow in link_flows[link]:
            if frozen[flow]:
                continue
            frozen[flow] = True
            rates[flow] = share
            remaining -= 1
            for other in flow_links[flow]:
                residual[other] -= share
                counts[other] -= 1
                if other != link and counts[other] > 0:
                    version[other] += 1
                    updated = residual[other] / counts[other]
                    heapq.heappush(
                        heap,
                        (updated if updated > 0.0 else 0.0, other,
                         version[other]),
                    )
        version[link] += 1
    return rates


def _dense_progressive_fill(
    capacities: np.ndarray, incidence: np.ndarray
) -> np.ndarray:
    """Progressive filling on a small *dense* ``(L, F)`` 0/1 matrix.

    Same algorithm (and bit-identical rounds) as
    :func:`progressive_filling_rates`; used by the incremental solver's
    compacted sub-solve, where the per-round cost is dominated by
    dispatch overhead rather than arithmetic.
    """
    num_links, num_flows = incidence.shape
    rates = np.zeros(num_flows)
    if num_flows == 0 or num_links == 0:
        return rates
    unfrozen = np.ones(num_flows, dtype=bool)
    residual = capacities.copy()
    counts = incidence.sum(axis=1)
    for _ in range(num_links + 1):
        if not unfrozen.any():
            break
        contended = counts > 0.5
        if not contended.any():
            break
        share = np.full(num_links, np.inf)
        share[contended] = residual[contended] / counts[contended]
        best = share.min()
        bottleneck = share <= best
        hits = bottleneck @ incidence
        freeze = unfrozen & (hits > 0.5)
        rates[freeze] = best
        frozen_per_link = incidence @ freeze
        residual = np.maximum(0.0, residual - frozen_per_link * best)
        counts = counts - frozen_per_link
        unfrozen &= ~freeze
    return rates


#: Relative slack used by the verification pass when testing link
#: saturation and per-link rate maximality.  Quantities that are equal
#: in exact arithmetic differ here only by accumulated rounding
#: (~1e-13 relative between aggregate re-syncs), far below this slack;
#: genuine level gaps in any non-degenerate workload sit far above it.
_CHECK_RTOL = 1e-9


class IncrementalFairShare:
    """Incremental max-min solver with add/remove-flow deltas.

    Holds the ``(L, F)`` flow--link incidence matrix fixed and maintains
    the max-min fair allocation for the *active* subset of its columns,
    updating it in place as flows depart (complete) or arrive instead of
    re-running progressive filling from scratch.

    Each delta re-solves only the affected link/flow *frontier*: the
    departing (or arriving) flows' capacity is released on (charged to)
    their links, and progressive filling re-runs over just the active
    flows sharing a link with them, against the residual capacity left
    by everyone else.  The repaired allocation is then *verified* with
    the water-filling optimality condition -- a feasible allocation is
    the (unique) max-min allocation iff every flow crosses a saturated
    link on which its rate is maximal -- checked only over links whose
    state changed, since a flow whose witness link is untouched keeps
    it.  If any flow lacks a witness, the frontier expands to include
    the violators and their link neighbours and the repair re-runs;
    after :attr:`MAX_REPAIR_ROUNDS` expansions the solver falls back to
    a full re-solve, so exactness never rests on the frontier
    heuristic -- only the cost does.

    Each update therefore costs ``O(nnz touched)`` amortized solve work
    -- the gather/solve/verify passes are proportional to the entries
    incident to the frontier -- plus ``O(F + L)`` boolean-mask
    bookkeeping per event, against ``O(rounds * nnz)`` for a full
    re-solve per event.  The per-link consumed-capacity aggregate is
    maintained incrementally and re-synchronized from scratch every
    :attr:`SYNC_INTERVAL` events so floating-point drift cannot
    accumulate over long simulations.

    Used by :class:`repro.sim.events.FlowEventEngine` (and through it
    :func:`repro.sim.fluid.simulate_phase`) to make staggered phases --
    every flow completing at a distinct time -- affordable.

    Example -- removing a flow can *lower* another flow's rate, and the
    incremental solver tracks this exactly.  Flow 0 shares link 0
    (capacity 4) with flow 1; flow 1 also crosses link 1 (capacity 10)
    shared with flow 2:

    >>> import numpy as np
    >>> from scipy import sparse
    >>> from repro.perf.fairshare import IncrementalFairShare
    >>> incidence = sparse.csr_matrix(
    ...     np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
    ... )
    >>> solver = IncrementalFairShare(np.array([4.0, 10.0]), incidence)
    >>> solver.rates
    array([2., 2., 8.])
    >>> solver.remove_flows([0])
    >>> solver.rates  # flow 1 rises to 4, squeezing flow 2 down to 6
    array([0., 4., 6.])
    """

    #: Events between full recomputations of the per-link aggregate.
    SYNC_INTERVAL = 256

    #: Largest dense ``links x flows`` sub-problem the compacted refill
    #: will materialize; bigger resolve sets fall back to the sparse
    #: kernel (identical result, higher per-round constant).
    DENSE_CELL_LIMIT = 262_144

    #: Sub-problems with at most this many (flow, link) incidences use
    #: the scalar heap fill -- below this size, Python-loop water-
    #: filling beats NumPy's per-op dispatch overhead.
    SCALAR_NNZ_LIMIT = 1_024

    #: Verify/re-solve rounds before giving up and re-solving from
    #: scratch.  Each round is cheap (gathers proportional to the
    #: frontier), so a generous bound costs nothing in the common case.
    MAX_REPAIR_ROUNDS = 8

    def __init__(
        self,
        capacities: np.ndarray,
        incidence: sparse.csr_matrix,
        active: Optional[np.ndarray] = None,
    ):
        self.capacities = np.asarray(capacities, dtype=float)
        self._incidence = incidence.tocsr()
        self._incidence_t = self._incidence.T.tocsr()
        # Raw CSR arrays (link -> flows and flow -> links); every
        # per-event gather works on these directly because scipy's
        # fancy row indexing costs more than the whole sub-solve.
        self._i_indptr = self._incidence.indptr
        self._i_indices = self._incidence.indices
        self._it_indptr = self._incidence_t.indptr
        self._it_indices = self._incidence_t.indices
        self.num_links, self.num_flows = self._incidence.shape
        if np.any(np.diff(self._it_indptr) == 0):
            raise ValueError(
                "every flow must cross at least one link (found an "
                "all-zero incidence column)"
            )
        if active is None:
            self._active = np.ones(self.num_flows, dtype=bool)
        else:
            self._active = np.asarray(active, dtype=bool).copy()
        self._rates = np.zeros(self.num_flows)
        self._active_count = int(self._active.sum())
        self._link_consumed = np.zeros(self.num_links)
        #: Cached bottleneck witness link per flow (-1 = unknown); see
        #: :meth:`_assign_witnesses`.
        self._witness = np.full(self.num_flows, -1, dtype=np.int64)
        self._events_since_sync = 0
        start = np.flatnonzero(self._active)
        if start.size:
            self._refill(start)
            self._assign_witnesses(start)

    # -- public views --------------------------------------------------
    @property
    def rates(self) -> np.ndarray:
        """Current ``(F,)`` max-min rate vector (copy; inactive = 0)."""
        return self._rates.copy()

    @property
    def active(self) -> np.ndarray:
        """Current ``(F,)`` boolean active mask (copy)."""
        return self._active.copy()

    def rates_view(self) -> np.ndarray:
        """The live rate vector (no copy). Callers must not mutate it."""
        return self._rates

    def active_view(self) -> np.ndarray:
        """The live active mask (no copy). Callers must not mutate it."""
        return self._active

    # -- deltas --------------------------------------------------------
    def remove_flows(self, indices: Sequence[int]) -> None:
        """Deactivate ``indices`` and repair the allocation in place.

        The departing flows' consumption is released on their links,
        then flows whose cached witness sat on one of those links are
        re-verified and re-solved as needed (see class docstring).
        Already-inactive indices are ignored, as are duplicates within
        one call (the aggregate must be updated once per flow).
        """
        idx = np.unique(np.asarray(indices, dtype=np.int64))
        idx = idx[self._active[idx]]
        if idx.size == 0:
            return
        bulk = self._bulk_delta(idx.size)
        self._active_count -= idx.size
        if bulk:
            self._active[idx] = False
            self._rates[idx] = 0.0
            self.recompute()
            return
        link_ids, lens = self._gather_links(idx)
        np.subtract.at(
            self._link_consumed, link_ids, np.repeat(self._rates[idx], lens)
        )
        self._active[idx] = False
        self._rates[idx] = 0.0
        self._witness[idx] = -1
        self._repair(link_ids)
        self._tick()

    def add_flows(self, indices: Sequence[int]) -> None:
        """Activate ``indices`` (columns of the incidence matrix).

        Arriving flows start at rate 0 with no witness, so the repair
        loop immediately re-solves them (and whoever they squeeze).
        Already-active indices are ignored, as are duplicates within
        one call.
        """
        idx = np.unique(np.asarray(indices, dtype=np.int64))
        idx = idx[~self._active[idx]]
        if idx.size == 0:
            return
        bulk = self._bulk_delta(idx.size)
        self._active_count += idx.size
        if bulk:
            self._active[idx] = True
            self._rates[idx] = 0.0
            self.recompute()
            return
        link_ids, _ = self._gather_links(idx)
        self._active[idx] = True
        self._rates[idx] = 0.0
        self._witness[idx] = -1
        self._repair(link_ids)
        self._tick()

    def recompute(self) -> None:
        """Full from-scratch re-solve (drops all incremental state)."""
        self._rates[:] = 0.0
        self._sync_aggregates()
        start = np.flatnonzero(self._active)
        if start.size:
            self._refill(start)
            self._witness[start] = -1
            self._assign_witnesses(start)

    # -- internals -----------------------------------------------------
    def _bulk_delta(self, delta_size: int) -> bool:
        """Whether a delta is so large that frontier repair cannot win.

        A batch that adds or removes a sizeable fraction of the active
        set perturbs most of the allocation anyway (symmetric phases
        complete in a handful of huge batches), so a single full
        re-solve is cheaper than repairing an almost-global frontier.
        """
        return delta_size * 4 > max(self._active_count, 1)

    def _repair(self, touched_links: np.ndarray) -> None:
        """Re-verify flows whose witness links changed; re-solve failures.

        ``touched_links`` are the links whose consumption, membership,
        or member rates just changed.  Flows witnessing an untouched
        link are provably still optimal (the link's saturation and rate
        profile are unchanged), so each round only re-checks flows whose
        witness is stale, re-solves the ones that fail, and marks the
        links of flows whose rate *actually moved* as the next round's
        touched set -- a refill that reproduces a flow's old rate
        bit-for-bit leaves its links' state untouched and must not
        cascade.  A frontier that violates repeatedly expands to its
        link neighbours; :attr:`MAX_REPAIR_ROUNDS` rounds without
        convergence trigger a full re-solve, so exactness never rests
        on the frontier heuristic -- only the cost does.
        """
        touched = np.zeros(self.num_links, dtype=bool)
        touched[touched_links] = True
        prev = np.zeros(self.num_flows, dtype=bool)
        for _ in range(self.MAX_REPAIR_ROUNDS):
            stale = self._active & (
                (self._witness < 0) | touched[self._witness]
            )
            cand = np.flatnonzero(stale)
            if cand.size == 0:
                return
            violators = self._assign_witnesses(cand)
            if violators.size == 0:
                return
            if prev.any() and not np.any(~prev[violators]):
                # Re-solving the same set again cannot help: widen to
                # every active flow sharing a link with a violator.
                bad_links, _ = self._gather_links(violators)
                flow_ids, _ = self._gather_flows(
                    np.flatnonzero(self._mask_links(bad_links))
                )
                prev[flow_ids] = True
            prev[violators] = True
            frontier = np.flatnonzero(prev & self._active)
            changed = self._refill(frontier)
            self._witness[changed] = -1
            c_links, _ = self._gather_links(changed)
            touched[:] = False
            touched[c_links] = True
        self.recompute()

    def _mask_links(self, link_ids: np.ndarray) -> np.ndarray:
        mask = np.zeros(self.num_links, dtype=bool)
        mask[link_ids] = True
        return mask

    def _assign_witnesses(self, cand: np.ndarray) -> np.ndarray:
        """Find a bottleneck witness for each of ``cand``; cache or fail.

        A witness for flow ``f`` is a crossed link that is saturated and
        on which ``f``'s rate is maximal among active flows -- the
        water-filling optimality certificate.  Flows with a witness get
        it cached in ``self._witness``; the rest are returned as
        violators for the repair loop to re-solve.
        """
        link_ids, lens = self._gather_links(cand)
        links = np.flatnonzero(self._mask_links(link_ids))
        lmap = np.empty(self.num_links, dtype=np.int64)
        lmap[links] = np.arange(links.size)
        inverse = lmap[link_ids]
        # Per-link max rate over the links the candidates cross
        # (inactive flows hold rate 0, so no masking is needed).
        flow_ids, flow_lens = self._gather_flows(links)
        seg = np.concatenate(([0], np.cumsum(flow_lens)[:-1]))
        max_rate = np.maximum.reduceat(self._rates[flow_ids], seg)
        caps = self.capacities[links]
        saturated = self._link_consumed[links] >= caps - (
            _CHECK_RTOL * caps + _EPS
        )
        cand_rates = np.repeat(self._rates[cand], lens)
        ok = saturated[inverse] & (
            cand_rates >= max_rate[inverse] * (1.0 - _CHECK_RTOL) - _EPS
        )
        seg_c = np.concatenate(([0], np.cumsum(lens)[:-1]))
        has_witness = np.logical_or.reduceat(ok, seg_c)
        total = ok.size
        first = np.minimum.reduceat(
            np.where(ok, np.arange(total), total), seg_c
        )
        passed = cand[has_witness]
        self._witness[passed] = link_ids[first[has_witness]]
        violators = cand[~has_witness]
        self._witness[violators] = -1
        return violators

    def _gather_flows(
        self, links: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated flow ids of ``links`` plus per-link lengths."""
        starts = self._i_indptr[links]
        lens = self._i_indptr[links + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=self._i_indices.dtype), lens
        offsets = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
        return self._i_indices[np.repeat(starts, lens) + offsets], lens

    def _gather_links(
        self, idx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated link ids of flows ``idx`` plus per-flow lengths.

        Equivalent to fancy-indexing rows of ``incidence.T`` but built
        from the raw CSR arrays: scipy's ``__getitem__`` costs more per
        event than the entire compacted sub-solve.
        """
        starts = self._it_indptr[idx]
        lens = self._it_indptr[idx + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=self._it_indices.dtype), lens
        offsets = np.arange(total) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        return self._it_indices[np.repeat(starts, lens) + offsets], lens

    def _refill(self, resolve_idx: np.ndarray) -> np.ndarray:
        """Re-run progressive filling over just the ``resolve_idx`` columns.

        The kept flows' consumption is subtracted from capacity, so the
        sub-solve sees exactly the residual network the global algorithm
        would hand to these rounds.  The sub-problem is compacted to the
        links the resolved flows actually cross and solved densely
        (small resolve sets are the common case; a handful of dense
        matvecs beats scipy's sparse dispatch overhead by an order of
        magnitude), falling back to the sparse kernel past
        :attr:`DENSE_CELL_LIMIT` cells.

        Returns the subset of ``resolve_idx`` whose rate moved beyond
        float noise -- the flows whose links the repair loop must treat
        as touched.  A sub-solve over unchanged inputs reproduces its
        old rates bit-for-bit, so the comparison needs no tolerance
        beyond guarding aggregate drift.
        """
        k = resolve_idx.size
        if k == 0:
            return resolve_idx
        link_ids, lens = self._gather_links(resolve_idx)
        links = np.flatnonzero(self._mask_links(link_ids))
        if link_ids.size <= self.SCALAR_NNZ_LIMIT:
            return self._refill_scalar(resolve_idx, link_ids, lens, links)
        if links.size * k > self.DENSE_CELL_LIMIT:
            return self._refill_sparse(resolve_idx)
        lmap = np.empty(self.num_links, dtype=np.int64)
        lmap[links] = np.arange(links.size)
        dense = np.zeros((links.size, k))
        dense[lmap[link_ids], np.repeat(np.arange(k), lens)] = 1.0
        old = self._rates[resolve_idx]
        consumed = self._link_consumed[links] - dense @ old
        residual = np.maximum(0.0, self.capacities[links] - consumed)
        new_rates = _dense_progressive_fill(residual, dense)
        self._rates[resolve_idx] = new_rates
        self._link_consumed[links] = consumed + dense @ new_rates
        return resolve_idx[self._moved(old, new_rates)]

    def _refill_scalar(
        self,
        resolve_idx: np.ndarray,
        link_ids: np.ndarray,
        lens: np.ndarray,
        links: np.ndarray,
    ) -> np.ndarray:
        """Heap-based scalar refill for few-dozen-flow sub-problems."""
        lmap = np.empty(self.num_links, dtype=np.int64)
        lmap[links] = np.arange(links.size)
        local = lmap[link_ids].tolist()
        old = self._rates[resolve_idx].tolist()
        residual = (
            self.capacities[links] - self._link_consumed[links]
        ).tolist()
        flow_links: List[List[int]] = []
        pos = 0
        for flow, length in enumerate(lens.tolist()):
            mine = local[pos: pos + length]
            pos += length
            flow_links.append(mine)
            rate = old[flow]
            for link in mine:
                residual[link] += rate
        for link in range(len(residual)):
            if residual[link] < 0.0:
                residual[link] = 0.0
        new_rates = _heap_progressive_fill(residual, flow_links)
        delta = [0.0] * links.size
        for flow, mine in enumerate(flow_links):
            diff = new_rates[flow] - old[flow]
            if diff != 0.0:
                for link in mine:
                    delta[link] += diff
        self._rates[resolve_idx] = new_rates
        self._link_consumed[links] += delta
        return resolve_idx[
            self._moved(np.asarray(old), np.asarray(new_rates))
        ]

    def _refill_sparse(self, resolve_idx: np.ndarray) -> np.ndarray:
        """Sparse-kernel refill for resolve sets too big to densify."""
        sub_t = self._incidence_t[resolve_idx]
        sub = sub_t.T.tocsr()
        old = self._rates[resolve_idx].copy()
        self._link_consumed -= sub @ old
        residual = np.maximum(0.0, self.capacities - self._link_consumed)
        new_rates = progressive_filling_rates(
            residual, sub, incidence_t=sub_t
        )
        self._rates[resolve_idx] = new_rates
        self._link_consumed += sub @ new_rates
        return resolve_idx[self._moved(old, new_rates)]

    @staticmethod
    def _moved(old: np.ndarray, new: np.ndarray) -> np.ndarray:
        scale = np.maximum(np.abs(old), np.abs(new))
        return np.abs(new - old) > 1e-13 * scale

    def _tick(self) -> None:
        self._events_since_sync += 1
        if self._events_since_sync >= self.SYNC_INTERVAL:
            self._sync_aggregates()

    def _sync_aggregates(self) -> None:
        active = self._active.astype(float)
        self._link_consumed = self._incidence @ (self._rates * active)
        self._events_since_sync = 0
