"""Batched progressive filling over a sparse flow--link incidence matrix.

The max-min fair allocation is computed exactly as in the textbook
algorithm (and in :class:`repro.sim.fluid.ReferenceFluidNetwork`): all
unfrozen flows grow together until some link saturates, every flow
crossing a saturated link freezes at the link's fair share, and the
remaining flows keep growing.  The difference is purely operational --
one round here processes *every* link that reaches the minimal fair
share simultaneously (equal shares are fixed points of the update, so
batching ties is equivalent to freezing them one at a time), and each
round is a handful of sparse matrix-vector products instead of a Python
scan over every (link, flow) pair.  Symmetric workloads (uniform
all-to-all, AllReduce rings) collapse from thousands of rounds to one.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

_EPS = 1e-12
Edge = Tuple[int, int]


def build_incidence(
    link_lists: Sequence[Sequence[Hashable]],
    capacities: Dict[Hashable, float],
) -> Tuple[sparse.csr_matrix, np.ndarray, List[Hashable]]:
    """Build the (links x flows) 0/1 incidence matrix for a flow set.

    Parameters
    ----------
    link_lists:
        Per-flow link sequences (``flow.links``).  Duplicate links
        within one flow are counted once, matching the set semantics of
        the reference allocator.
    capacities:
        Link -> capacity table.  Only links actually crossed by a flow
        get a row, so a dense fabric with ``n^2`` idle links costs
        nothing.

    Returns
    -------
    (incidence, cap_vector, link_order):
        CSR incidence matrix, per-row capacities, and the link each row
        corresponds to.

    Raises
    ------
    KeyError
        If a flow crosses a link missing from ``capacities``.
    """
    link_index: Dict[Hashable, int] = {}
    link_order: List[Hashable] = []
    cap_list: List[float] = []
    rows: List[int] = []
    cols: List[int] = []
    for col, links in enumerate(link_lists):
        for link in dict.fromkeys(links):
            row = link_index.get(link)
            if row is None:
                if link not in capacities:
                    raise KeyError(
                        f"flow {col} uses link {link} which does not "
                        "exist in the network"
                    )
                row = link_index[link] = len(link_order)
                link_order.append(link)
                cap_list.append(float(capacities[link]))
            rows.append(row)
            cols.append(col)
    shape = (len(link_order), len(link_lists))
    incidence = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=shape
    )
    return incidence, np.asarray(cap_list, dtype=float), link_order


def build_incidence_from_paths(
    paths: Sequence[Sequence[int]],
    capacities: Dict[Edge, float],
) -> Tuple[sparse.csr_matrix, np.ndarray, List[Edge]]:
    """Vectorized :func:`build_incidence` for integer node paths.

    Links are the consecutive node pairs of each path, encoded as
    ``a * stride + b`` integers so the whole (flow, link) table is
    deduplicated and indexed with :func:`np.unique` instead of per-hop
    dict lookups -- the construction itself was the bottleneck once the
    solve went sparse.  Semantics match ``build_incidence`` on
    ``[flow.links for flow in flows]``.
    """
    num_flows = len(paths)
    if num_flows == 0:
        return (
            sparse.csr_matrix((0, 0)),
            np.empty(0),
            [],
        )
    lens = np.fromiter((len(p) for p in paths), dtype=np.int64, count=num_flows)
    total = int(lens.sum())
    flat = np.fromiter(chain.from_iterable(paths), dtype=np.int64, count=total)
    # Positions of every hop head: all path positions except the last
    # node of each path.
    mask = np.ones(total, dtype=bool)
    mask[np.cumsum(lens) - 1] = False
    head_pos = np.flatnonzero(mask)
    heads = flat[head_pos]
    tails = flat[head_pos + 1]
    flow_ids = np.repeat(np.arange(num_flows), lens - 1)
    stride = int(flat.max()) + 1
    codes = heads * stride + tails
    # Count each (flow, link) incidence once even if a path revisits a
    # link (set semantics, as in the reference allocator).
    pair_codes = flow_ids * (stride * stride) + codes
    _, keep = np.unique(pair_codes, return_index=True)
    link_rows, row_index = np.unique(codes[keep], return_inverse=True)
    link_order: List[Edge] = []
    cap_list: List[float] = []
    for code in link_rows:
        link = (int(code) // stride, int(code) % stride)
        if link not in capacities:
            raise KeyError(
                f"a flow uses link {link} which does not exist in the network"
            )
        link_order.append(link)
        cap_list.append(float(capacities[link]))
    incidence = sparse.csr_matrix(
        (
            np.ones(len(row_index)),
            (row_index, flow_ids[keep]),
        ),
        shape=(len(link_order), num_flows),
    )
    return incidence, np.asarray(cap_list), link_order


def progressive_filling_rates(
    capacities: np.ndarray,
    incidence: sparse.csr_matrix,
    active: Optional[np.ndarray] = None,
    incidence_t: Optional[sparse.csr_matrix] = None,
) -> np.ndarray:
    """Max-min fair rates for all flows of a sparse incidence matrix.

    Parameters
    ----------
    capacities:
        ``(L,)`` per-link capacities (bits/s).
    incidence:
        ``(L, F)`` CSR 0/1 matrix: entry (l, f) set iff flow f crosses
        link l.
    active:
        Optional ``(F,)`` boolean mask; inactive flows are excluded
        from the allocation and receive rate 0 (used by the phase
        simulator to retire completed flows without rebuilding the
        matrix).
    incidence_t:
        Optional precomputed ``incidence.T`` in CSR form; callers that
        solve repeatedly over the same flow set (the phase simulator)
        pass it to avoid re-transposing every call.

    Returns
    -------
    ``(F,)`` rate vector; identical (up to floating point) to the
    sequential reference allocator.
    """
    num_links, num_flows = incidence.shape
    rates = np.zeros(num_flows)
    if num_flows == 0 or num_links == 0:
        return rates
    if active is None:
        unfrozen = np.ones(num_flows, dtype=bool)
    else:
        unfrozen = active.astype(bool).copy()
    if not unfrozen.any():
        return rates
    if incidence_t is None:
        incidence_t = incidence.T.tocsr()
    residual = np.asarray(capacities, dtype=float).copy()
    counts = incidence @ unfrozen.astype(float)
    # Each round retires at least one link, so L+1 rounds always suffice.
    for _ in range(num_links + 1):
        if not unfrozen.any():
            break
        contended = counts > 0.5
        if not contended.any():
            break
        share = np.full(num_links, np.inf)
        share[contended] = residual[contended] / counts[contended]
        best = share.min()
        bottleneck = share <= best
        hits = incidence_t @ bottleneck.astype(float)
        freeze = unfrozen & (hits > 0.5)
        rates[freeze] = best
        frozen_per_link = incidence @ freeze.astype(float)
        residual = np.maximum(0.0, residual - frozen_per_link * best)
        counts -= frozen_per_link
        unfrozen &= ~freeze
    return rates
