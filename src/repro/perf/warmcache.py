"""Process-wide warm caches for compiled kernels and pipelines.

The scenario engine re-admits jobs built from the same
:class:`~repro.cluster.spec.JobTemplateSpec` over and over -- and bench
harnesses replay whole scenarios -- yet until this module every
admission re-ran the workload pipeline (strategy build, traffic
extraction, TopologyFinder) and every cost model recompiled its routing
matrices.  Both artifacts are pure functions of their inputs, so they
are cached process-wide here:

* :data:`PIPELINE_CACHE` -- the scenario engine's per-template pipeline
  output, keyed by the full input fingerprint (model, scale, shard
  size, strategy, batch, seed where the strategy is stochastic, cluster
  geometry, optimizer knobs).
* :data:`COSTMODEL_CACHE` -- compiled
  :class:`repro.perf.costmodel.CostModelKernel` instances via
  :func:`kernel_for`, keyed by the identity of the fabric's immutable
  topology result (held alive by the cache entry) or, for switch
  fabrics, by their full link-capacity table.

Entries are only ever *equal inputs -> equal outputs* reuses, so warm
runs produce bit-identical results to cold ones; the caches exist to
delete wall-clock time, not to change anything observable.  This is
also the seed of the ROADMAP's service-mode cache: a long-lived process
serving many scenario requests keeps its compiled state across them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple


class WarmCache:
    """A bounded insertion-ordered memo table with LRU eviction."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(
        self, key: Hashable, builder: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``key``, building it on a miss."""
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = builder()
            self._store[key] = value
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self.evictions += 1
            return value
        self.hits += 1
        self._store.move_to_end(key)
        return value

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset_stats(self) -> None:
        """Zero the counters while keeping cached entries warm.

        Tests and the obs plane read counters around a region of
        interest; resetting must not throw away the (expensive) cached
        values themselves.

        >>> cache = WarmCache(maxsize=2)
        >>> _ = cache.get_or_build("a", lambda: "A")
        >>> cache.reset_stats()
        >>> (len(cache), cache.stats()["misses"])
        (1, 0)
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, int]:
        """Counters plus current occupancy, as a *deep snapshot*.

        The returned dict is built fresh on every call and holds only
        plain ``int`` values, so callers (tests, the obs plane's
        :class:`~repro.obs.report.ObsReport`) can stash it without any
        risk of later cache activity mutating it under them.

        >>> cache = WarmCache(maxsize=2)
        >>> for key in ("a", "b", "a", "c"):
        ...     _ = cache.get_or_build(key, lambda: key.upper())
        >>> cache.stats() == {"size": 2, "maxsize": 2, "hits": 1,
        ...                   "misses": 3, "evictions": 1}
        True
        >>> before = cache.stats()
        >>> _ = cache.get_or_build("c", lambda: "C")
        >>> before["hits"]
        1
        """
        return {
            "size": len(self._store),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Scenario-engine pipeline outputs (see ``cluster/engine._prepare``).
PIPELINE_CACHE = WarmCache(maxsize=128)

#: Compiled cost-model kernels (see :func:`kernel_for`).
COSTMODEL_CACHE = WarmCache(maxsize=64)


def kernel_for(fabric):
    """The process-wide compiled ``CostModelKernel`` for ``fabric``.

    Fabrics wrapping a TopologyFinder result are keyed by that result's
    *identity* -- routing tables and ring plans are not recoverable
    from the link set alone -- with the result object kept alive by
    the cache entry so its id cannot be recycled while the entry
    lives.  Plain switch fabrics are keyed by class and full sorted
    capacity table, which determines their deterministic routing.
    """
    from repro.perf.costmodel import CostModelKernel

    if hasattr(fabric, "fabric"):
        # Wrapper fabrics (e.g. relabeled shards) route through hidden
        # state the keys below cannot fingerprint; compile uncached.
        return CostModelKernel(fabric)
    result = getattr(fabric, "result", None)
    if result is not None:
        key: Tuple = (
            type(fabric).__name__,
            id(result),
            getattr(fabric, "link_bandwidth_bps", None),
        )
    else:
        key = (
            type(fabric).__name__,
            getattr(fabric, "num_servers", None),
            tuple(sorted(fabric.capacities().items())),
        )
    anchor, kernel = COSTMODEL_CACHE.get_or_build(
        key, lambda: (result, CostModelKernel(fabric))
    )
    return kernel


def stats() -> Dict[str, Dict[str, int]]:
    """Counters for every process-wide warm cache, by cache name.

    This is what ``repro bench --profile`` prints and what the service
    layer's per-worker cache export and the obs plane's
    :class:`~repro.obs.report.ObsReport` aggregate.  Like
    :meth:`WarmCache.stats`, the result is a deep snapshot -- fresh
    dicts of plain ints, detached from the live caches.

    >>> sorted(stats())
    ['costmodel', 'pipeline']
    >>> sorted(stats()["pipeline"])
    ['evictions', 'hits', 'maxsize', 'misses', 'size']
    """
    return {
        "pipeline": PIPELINE_CACHE.stats(),
        "costmodel": COSTMODEL_CACHE.stats(),
    }


def reset_stats() -> None:
    """Zero every process-wide cache's counters, keeping entries warm.

    The read-modify-reset pattern tests and the obs plane use to scope
    counters to a region without paying cold rebuilds afterwards.
    """
    PIPELINE_CACHE.reset_stats()
    COSTMODEL_CACHE.reset_stats()


def clear_all() -> None:
    """Empty every process-wide warm cache (tests, memory pressure)."""
    PIPELINE_CACHE.clear()
    COSTMODEL_CACHE.clear()
