"""Vectorized performance kernels shared by the hot simulation paths.

This package is the array-based kernel layer the rest of the system
leans on for cluster-scale runs:

- :mod:`repro.perf.fairshare` -- sparse flow--link incidence
  construction plus a batched progressive-filling solver that computes
  the max-min fair rate allocation with NumPy/scipy.sparse instead of
  per-(link, flow) Python loops.
- :mod:`repro.perf.graph` -- all-pairs hop counts (one C-level BFS
  sweep per source via ``scipy.sparse.csgraph``), strong-connectivity
  checks, min-hop path enumeration from a precomputed distance matrix,
  and the node/edge-avoiding BFS behind Yen's spur searches.
- :mod:`repro.perf.costmodel` -- the sparse iteration-cost kernel for
  the strategy search: per-fabric pair -> link routing matrices,
  compiled per-layer load vectors, and the delta-updated
  :class:`~repro.perf.costmodel.IncrementalCostEvaluator` the MCMC
  inner loop mutates.
- :mod:`repro.perf.bench` -- the micro-benchmark runner behind
  ``benchmarks/bench_perf_kernels.py`` and ``repro.cli bench-smoke``.

Consumers: :mod:`repro.sim.fluid` (rate allocation, phase simulation),
:mod:`repro.network.topology` (graph queries, routing support),
:mod:`repro.core.routing_lp` (sparse LP assembly), and
:mod:`repro.parallel.mcmc` / :mod:`repro.core.alternating` (the
incremental cost model).
"""

from repro.perf.fairshare import build_incidence, progressive_filling_rates
from repro.perf.graph import (
    all_pairs_hop_counts,
    enumerate_min_hop_paths,
    is_strongly_connected,
)

__all__ = [
    "build_incidence",
    "progressive_filling_rates",
    "all_pairs_hop_counts",
    "enumerate_min_hop_paths",
    "is_strongly_connected",
]
