"""Micro-benchmarks for the vectorized kernel layer.

Three scenarios, each comparing the retained seed implementation
against the vectorized kernel on identical inputs:

- ``phase_sim``: uniform all-to-all ECMP flow set over a TotientPerms-
  style ring topology, run to completion by
  :func:`repro.sim.fluid.simulate_phase_reference` (pure Python) and
  :func:`repro.sim.fluid.simulate_phase` (incidence-matrix kernel).
- ``routing``: all-pairs minimum-hop ECMP path construction, seed
  per-pair BFS vs. the batched shortest-path-DAG sweep behind
  ``DirectConnectTopology.min_hop_paths_from``.
- ``lp_assembly``: min-max-utilization routing-LP constraint assembly,
  seed dense ``np.zeros`` formulation vs. the ``scipy.sparse`` COO
  assembly now used by :func:`repro.core.routing_lp.optimize_routing`.
- ``staggered_phase``: chunked ring-AllReduce plus model-parallel
  flows, sizes jittered so every flow completes at a distinct time --
  the per-event full recompute (``solver="batch"``) vs. the
  incremental frontier solver
  (:class:`repro.perf.fairshare.IncrementalFairShare`).
- ``mcmc_steps``: the MCMC strategy search on a DLRM-class model over
  a TopoOpt fabric -- the seed full-rebuild scoring (re-extract the
  traffic summary and re-route all pairs per proposal) vs. the sparse
  incremental cost-model kernel (:mod:`repro.perf.costmodel`), same
  seed, per-step costs checked to agree.
- ``alternating``: end-to-end ``AlternatingOptimizer.run`` (MCMC x
  TopologyFinder), old full-rebuild path vs. the incremental kernel
  path with per-fabric routing-matrix reuse.
- ``scenario``: the multi-job shared-cluster scenario engine
  (:mod:`repro.cluster`) on a contended Fat-tree -- pure-Python
  reference allocator vs. the sparse progressive-filling kernel --
  doubling as the same-(spec, seed)-identical-JSON determinism gate.
- ``service_throughput``: the optimization-as-a-service loop
  (:mod:`repro.service`) draining a Zipf-distributed request mix cold
  (empty store) and warm (populated store) -- gates warm >= 5x cold
  specs/sec, exact dedup, and store-vs-fresh byte identity.
- ``obs_overhead``: the same scenario with the observability plane
  (:mod:`repro.obs`) off vs on -- gates the tracing overhead under 10%
  and the traced result JSON byte-identical to the untraced one.

Used by ``benchmarks/bench_perf_kernels.py`` (full sizes, writes
``BENCH_kernels.json``) and ``python -m repro.cli bench-smoke`` (quick
pre-merge sanity check).
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.network.topology import DirectConnectTopology
from repro.sim.flows import Flow
from repro.sim.fluid import simulate_phase, simulate_phase_reference

GBPS = 1e9

#: Sizes the full benchmark sweeps (the acceptance targets live at
#: n=64 for phase simulation and n=128 for routing construction).
FULL_SIZES = (16, 64, 128)
SMOKE_SIZES = (16, 64)


def ring_topology(n: int, degree: int = 4) -> DirectConnectTopology:
    """TotientPerms-style fabric: ``degree`` coprime-stride rings."""
    topo = DirectConnectTopology(n, degree)
    laid = 0
    for stride in (1, 3, 5, 7, 9, 11, 13, 17):
        if laid >= degree:
            break
        if np.gcd(stride, n) != 1:
            continue
        topo.add_ring([(i * stride) % n for i in range(n)])
        laid += 1
    if laid == 0:  # pragma: no cover - n would have to be even & tiny
        topo.add_ring(list(range(n)))
    return topo


def alltoall_flows(
    topo: DirectConnectTopology, ecmp_cap: int = 4, bits: float = 1e9
) -> List[Flow]:
    """Uniform all-to-all demand split over minimum-hop ECMP paths."""
    flows: List[Flow] = []
    for src in range(topo.n):
        for dst, paths in topo.min_hop_paths_from(src, ecmp_cap).items():
            share = bits / len(paths)
            for path in paths:
                flows.append(Flow(path=tuple(path), size_bits=share))
    return flows


def staggered_phase_flows(
    topo: DirectConnectTopology,
    seed: int = 1,
    chunks: int = 16,
    mp_peers: int = 8,
) -> List[Flow]:
    """A realistic staggered phase: chunked AllReduce plus MP flows.

    TopoOpt's dominant traffic is ring AllReduce over dedicated ring
    edges (one hop per flow) with a lighter model-parallel component
    between power-of-two-offset peers (section 2.2 of the paper).
    Splitting each ring edge's volume into ``chunks`` independently
    sized flows and jittering every size gives a phase where *all*
    completions land at distinct times -- the workload shape that makes
    per-event full rate recomputation ruinous.
    """
    rng = np.random.default_rng(seed)
    flows: List[Flow] = []
    for src, dst, count in topo.edges():
        for _ in range(count * chunks):
            flows.append(Flow(
                path=(src, dst),
                size_bits=1e9 * float(rng.uniform(0.5, 1.5)),
                kind="allreduce",
            ))
    for src in range(topo.n):
        pathmap = topo.min_hop_paths_from(src, 1)
        for k in range(mp_peers):
            dst = (src + (1 << k)) % topo.n
            if dst == src or dst not in pathmap:
                continue
            flows.append(Flow(
                path=tuple(pathmap[dst][0]),
                size_bits=1e9 * float(rng.uniform(0.5, 1.5)),
                kind="mp",
            ))
    return flows


def bench_staggered_phase(n: int, degree: int = 4, chunks: int = 16) -> Dict:
    """All-distinct-completion phase; n=64 is the acceptance target.

    Both sides run the exact same :class:`repro.sim.events.
    FlowEventEngine` event loop; the reference re-solves max-min rates
    from scratch on every completion (``solver="batch"``, the PR-1
    behavior) while the vectorized side repairs the allocation
    incrementally (``solver="incremental"``).
    """
    topo = ring_topology(n, degree)
    capacities = {
        (s, d): count * 100 * GBPS for s, d, count in topo.edges()
    }
    flows_ref = staggered_phase_flows(topo, chunks=chunks)
    start = time.perf_counter()
    makespan_ref = simulate_phase(capacities, flows_ref, False, solver="batch")
    reference_s = time.perf_counter() - start
    flows_inc = staggered_phase_flows(topo, chunks=chunks)
    start = time.perf_counter()
    makespan_inc = simulate_phase(capacities, flows_inc, False)
    vectorized_s = time.perf_counter() - start
    rel_err = abs(makespan_ref - makespan_inc) / max(makespan_ref, 1e-12)
    return _record(
        reference_s,
        vectorized_s,
        flows=len(flows_ref),
        links=len(capacities),
        makespan_rel_err=float(rel_err),
    )


def _record(reference_s: float, vectorized_s: float, **extra) -> Dict:
    entry = {
        "reference_s": round(reference_s, 6),
        "vectorized_s": round(vectorized_s, 6),
        "speedup": round(reference_s / max(vectorized_s, 1e-12), 2),
    }
    entry.update(extra)
    return entry


def bench_phase_sim(n: int, degree: int = 4) -> Dict:
    """64-server all-to-all phase simulation is the acceptance target."""
    topo = ring_topology(n, degree)
    capacities = {
        (s, d): count * 100 * GBPS for s, d, count in topo.edges()
    }
    flows_ref = alltoall_flows(topo)
    start = time.perf_counter()
    makespan_ref = simulate_phase_reference(capacities, flows_ref, False)
    reference_s = time.perf_counter() - start
    flows_vec = alltoall_flows(topo)
    start = time.perf_counter()
    makespan_vec = simulate_phase(capacities, flows_vec, False)
    vectorized_s = time.perf_counter() - start
    rel_err = abs(makespan_ref - makespan_vec) / max(makespan_ref, 1e-12)
    return _record(
        reference_s,
        vectorized_s,
        flows=len(flows_ref),
        links=len(capacities),
        makespan_rel_err=float(rel_err),
    )


def bench_routing(n: int, degree: int = 4, ecmp_cap: int = 6) -> Dict:
    """All-pairs ECMP construction; n=128 is the acceptance target."""
    topo = ring_topology(n, degree)
    start = time.perf_counter()
    reference: Dict[Tuple[int, int], List[List[int]]] = {}
    for src in range(n):
        for dst in range(n):
            if src != dst:
                reference[(src, dst)] = topo._all_shortest_paths_bfs(
                    src, dst, ecmp_cap
                )
    reference_s = time.perf_counter() - start
    # Invalidate caches so the batched side pays its full cost too.
    topo._adjacency_cache = None
    topo._hops_cache = None
    topo._hops_int_cache = None
    topo._pred_cache = None
    start = time.perf_counter()
    batched: Dict[Tuple[int, int], List[List[int]]] = {}
    for src in range(n):
        for dst, paths in topo.min_hop_paths_from(src, ecmp_cap).items():
            batched[(src, dst)] = paths
    vectorized_s = time.perf_counter() - start
    hop_match = set(reference) == set(batched) and all(
        len(reference[pair][0]) == len(batched[pair][0])
        for pair in reference
        if reference[pair] and batched[pair]
    )
    return _record(
        reference_s,
        vectorized_s,
        pairs=len(reference),
        hop_counts_match=bool(hop_match),
    )


def _dense_lp_assembly(
    demand: np.ndarray,
    capacities: Dict[Tuple[int, int], float],
    pair_paths: Dict[Tuple[int, int], List[List[int]]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Seed dense constraint assembly, kept inline for comparison."""
    pairs = sorted(pair_paths)
    link_index = {link: i for i, link in enumerate(capacities)}
    var_offsets = []
    total_vars = 0
    for pair in pairs:
        var_offsets.append(total_vars)
        total_vars += len(pair_paths[pair])
    t_index = total_vars
    total_vars += 1
    a_eq = np.zeros((len(pairs), total_vars))
    for row, (pair, offset) in enumerate(zip(pairs, var_offsets)):
        a_eq[row, offset: offset + len(pair_paths[pair])] = 1.0
    a_ub = np.zeros((len(link_index), total_vars))
    for pair, offset in zip(pairs, var_offsets):
        volume = float(demand[pair])
        for path_idx, path in enumerate(pair_paths[pair]):
            for a, b in zip(path, path[1:]):
                a_ub[link_index[(a, b)], offset + path_idx] += (
                    volume / capacities[(a, b)]
                )
    a_ub[:, t_index] = -1.0
    return a_eq, a_ub


def bench_lp_assembly(
    n: int, degree: int = 4, ecmp_cap: int = 4, peers: int = 8
) -> Dict:
    """Constraint-matrix assembly for the routing LP (dense vs sparse).

    Demand is a ``peers``-regular MP matrix (each server talks to a few
    power-of-two-offset peers, the paper's typical MP pattern) rather
    than all-to-all: the dense reference is O(pairs * vars) memory, and
    at n=128 the all-to-all formulation is a multi-GB allocation -- the
    exact wall the sparse assembly removes.
    """
    from repro.core.routing_lp import assemble_lp_constraints

    topo = ring_topology(n, degree)
    capacities = {
        (s, d): count * 100 * GBPS for s, d, count in topo.edges()
    }
    demand = np.zeros((n, n))
    offsets = [1 << k for k in range(peers) if (1 << k) < n]
    for src in range(n):
        for off in offsets:
            demand[src, (src + off) % n] = 1e9
    pair_paths: Dict[Tuple[int, int], List[List[int]]] = {}
    for src in range(n):
        row = demand[src]
        for dst, paths in topo.min_hop_paths_from(src, ecmp_cap).items():
            if row[dst] > 0:
                pair_paths[(src, dst)] = paths

    start = time.perf_counter()
    a_eq_dense, a_ub_dense = _dense_lp_assembly(demand, capacities, pair_paths)
    reference_s = time.perf_counter() - start

    pairs = sorted(pair_paths)
    volumes = [float(demand[pair]) for pair in pairs]
    paths = [pair_paths[pair] for pair in pairs]
    start = time.perf_counter()
    a_eq, _, a_ub, _, _, t_index = assemble_lp_constraints(
        volumes, paths, capacities
    )
    vectorized_s = time.perf_counter() - start
    def as_dense(mat):
        return mat.toarray() if hasattr(mat, "toarray") else np.asarray(mat)

    eq_match = np.allclose(as_dense(a_eq), a_eq_dense)
    ub_match = np.allclose(as_dense(a_ub), a_ub_dense)
    return _record(
        reference_s,
        vectorized_s,
        variables=t_index + 1,
        matrices_match=bool(eq_match and ub_match),
    )


def _search_model():
    """DLRM-class workload: the paper's canonical MCMC search target."""
    from repro.models import build_dlrm

    return build_dlrm(
        num_embedding_tables=8,
        embedding_rows=200_000,
        embedding_dim=128,
        num_dense_layers=2,
        dense_layer_size=512,
        num_feature_layers=2,
        feature_layer_size=512,
        batch_per_gpu=32,
    )


def _search_fabric(model, search, n: int, degree: int = 4):
    """TopoOpt fabric built for the initial hybrid strategy's traffic."""
    from repro.core.topology_finder import topology_finder
    from repro.network.topoopt import TopoOptFabric
    from repro.parallel.traffic import extract_traffic

    traffic = extract_traffic(
        model, search.initial_strategy(), search.batch_per_gpu
    )
    result = topology_finder(
        n, degree, traffic.allreduce_groups, traffic.mp_matrix
    )
    return TopoOptFabric(result, 100 * GBPS)


def bench_mcmc_steps(n: int, iterations: int = 120) -> Dict:
    """MCMC steps/sec, full-rebuild vs incremental; n=64 is the gate.

    Both sides run the exact same Metropolis chain (same seed, same
    proposal stream): the reference re-extracts the traffic summary and
    re-routes every pair in pure Python per proposal
    (``search(incremental=False)``), the vectorized side delta-updates
    the cached link-load vector through the sparse cost-model kernel.
    Per-step costs must agree, so the whole trace doubles as an
    equivalence check.
    """
    from repro.parallel.mcmc import MCMCSearch

    model = _search_model()
    fabric = _search_fabric(model, MCMCSearch(model, n, seed=5), n)

    start = time.perf_counter()
    ref = MCMCSearch(model, n, seed=5).search(
        fabric, iterations, incremental=False
    )
    reference_s = time.perf_counter() - start
    start = time.perf_counter()
    inc = MCMCSearch(model, n, seed=5).search(
        fabric, iterations, incremental=True
    )
    vectorized_s = time.perf_counter() - start
    ref_trace = np.asarray(ref.cost_trace)
    inc_trace = np.asarray(inc.cost_trace)
    cost_rel_err = float(np.max(
        np.abs(ref_trace - inc_trace) / np.maximum(np.abs(ref_trace), 1e-300)
    ))
    return _record(
        reference_s,
        vectorized_s,
        steps=iterations,
        reference_steps_per_s=round(iterations / max(reference_s, 1e-12), 1),
        vectorized_steps_per_s=round(iterations / max(vectorized_s, 1e-12), 1),
        cost_rel_err=cost_rel_err,
    )


def bench_alternating(n: int, rounds: int = 2, iterations: int = 60) -> Dict:
    """End-to-end alternating optimization, old vs new search plane.

    Same seed and Metropolis trajectory on both sides, so the two runs
    visit the same strategies and topologies; the final co-optimized
    costs must agree to float tolerance.
    """
    from repro.core.alternating import AlternatingOptimizer
    from repro.parallel.mcmc import MCMCSearch

    model = _search_model()

    def run(incremental: bool):
        search = MCMCSearch(model, num_servers=n, seed=3)
        optimizer = AlternatingOptimizer(
            num_servers=n,
            degree=4,
            link_bandwidth_bps=100 * GBPS,
            search=search,
            max_rounds=rounds,
            mcmc_iterations=iterations,
            incremental=incremental,
        )
        start = time.perf_counter()
        result = optimizer.run()
        return time.perf_counter() - start, result

    reference_s, ref = run(incremental=False)
    vectorized_s, inc = run(incremental=True)
    cost_rel_err = abs(ref.cost_s - inc.cost_s) / max(abs(ref.cost_s), 1e-300)
    return _record(
        reference_s,
        vectorized_s,
        rounds=len(inc.rounds),
        mcmc_iterations=iterations,
        cost_rel_err=float(cost_rel_err),
    )


def bench_scenario(n: int, iterations: int = 2) -> Dict:
    """Multi-job shared-cluster scenario, reference vs kernel allocator.

    Runs the Figure 16 job mix (one 8-server shard per job, as many
    jobs as fit ``n`` servers) through the scenario engine on a shared
    cost-equivalent Fat-tree -- the substrate where every completion
    event re-solves the max-min allocation over *all* jobs' flows.  The
    reference side drives the retained pure-Python allocator
    (``solver="reference"``), the vectorized side the sparse
    progressive-filling kernel (``solver="kernel"``); iteration times
    must agree to float tolerance.

    The same entry doubles as the determinism gate: the kernel run is
    repeated with an identical (spec, seed) and the two result JSONs
    must be byte-identical (``deterministic``), which ``bench-smoke``
    enforces pre-merge.
    """
    from repro.cluster import ArrivalSpec, JobTemplateSpec, ScenarioSpec
    from repro.cluster.engine import run_scenario
    from repro.api.spec import ClusterSpec, FabricSpec

    models = ("DLRM", "BERT", "CANDLE", "VGG16")
    num_jobs = max(n // 8, 2)
    spec = ScenarioSpec(
        name=f"bench-scenario-n{n}",
        cluster=ClusterSpec(servers=n, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="fattree"),
        arrivals=ArrivalSpec(
            process="explicit", times=tuple(0.0 for _ in range(num_jobs))
        ),
        jobs=tuple(
            JobTemplateSpec(
                model=models[i % len(models)], servers=8,
                iterations=iterations,
            )
            for i in range(min(num_jobs, len(models)))
        ),
    )
    # Untimed warm-up: populates the process-wide pipeline/kernel warm
    # caches (repro.perf.warmcache) so both timed runs measure the
    # engine, not one-time template compilation -- and so run order
    # cannot favour whichever side runs second.
    run_scenario(spec)
    start = time.perf_counter()
    ref = run_scenario(spec.with_overrides({"solver": "reference"}))
    reference_s = time.perf_counter() - start
    start = time.perf_counter()
    vec = run_scenario(spec)
    vectorized_s = time.perf_counter() - start
    repeat = run_scenario(spec)
    deterministic = (
        json.dumps(vec.to_dict(), sort_keys=True)
        == json.dumps(repeat.to_dict(), sort_keys=True)
    )
    ref_avg, ref_p99 = ref.iteration_stats()
    vec_avg, vec_p99 = vec.iteration_stats()
    rel_err = max(
        abs(ref_avg - vec_avg) / max(abs(ref_avg), 1e-300),
        abs(ref_p99 - vec_p99) / max(abs(ref_p99), 1e-300),
    )
    return _record(
        reference_s,
        vectorized_s,
        jobs=num_jobs,
        iterations=iterations,
        deterministic=bool(deterministic),
        iteration_rel_err=float(rel_err),
    )


def bench_scenario_fleet(n: int = 1000) -> Dict:
    """Fleet-scale trace scenario: months of cluster time, one number.

    ``n`` servers ingest ``n`` production-trace jobs (section 2.2
    population) with *wall-clock* durations -- the trace's
    ``duration_hours`` field, median ~20 h -- arriving over weeks, on
    best-fit optical shards with analytic fast-forward through
    steady-state iterations.  There is no reference side: the seed
    engine stepped every iteration of every job individually, which at
    this scale is billions of events; the entry records absolute wall
    time and the simulated-to-wall ratio instead of a speedup.
    """
    from repro.cluster import ArrivalSpec, JobTemplateSpec, ScenarioSpec
    from repro.cluster.engine import run_scenario
    from repro.cluster.spec import SchedulerSpec
    from repro.api.spec import ClusterSpec, FabricSpec

    spec = ScenarioSpec(
        name=f"bench-fleet-n{n}",
        cluster=ClusterSpec(servers=n, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="topoopt"),
        arrivals=ArrivalSpec(
            process="trace", count=n, mean_interarrival_s=7200.0,
            max_servers=16, durations="wallclock",
        ),
        jobs=(
            JobTemplateSpec(model="DLRM", servers=8),
            JobTemplateSpec(model="BERT", servers=8),
            JobTemplateSpec(model="CANDLE", servers=8),
            JobTemplateSpec(model="VGG16", servers=8),
        ),
        scheduler=SchedulerSpec(policy="best-fit"),
        max_sim_time_s=4e7,
        fast_forward=True,
    )
    start = time.perf_counter()
    result = run_scenario(spec)
    wall_s = time.perf_counter() - start
    makespan_days = result.makespan_s / 86400.0
    return {
        "wall_s": round(wall_s, 3),
        "servers": n,
        "jobs_submitted": n,
        "jobs_completed": len(result.jobs),
        "makespan_days": round(makespan_days, 2),
        "sim_days_per_wall_s": round(
            makespan_days / max(wall_s, 1e-12), 2
        ),
        "mean_utilization": round(result.mean_utilization(), 4),
    }


def bench_scheduler_sweep(n: int = 64) -> Dict:
    """Policy plane drain gate: 100 trace jobs x every queue policy.

    ``n`` servers ingest a 100-job production trace (section 2.2
    population, wall-clock durations) under each queue discipline --
    FCFS, EASY backfill, conservative backfill -- plus the EASY run
    repeated with an identical (spec, seed) as the determinism probe.
    The smoke gate requires every policy to drain the full trace, the
    repeat to be byte-identical, and backfill to strictly beat FCFS on
    mean queueing delay on a canonical head-of-line-blocking trace
    (the golden scheduler scenario, where a 24-server job blocks two
    8-server jobs behind a long-running 16-server one).
    """
    from repro.cluster import ArrivalSpec, JobTemplateSpec, ScenarioSpec
    from repro.cluster.engine import run_scenario
    from repro.cluster.invariants import golden_scenario_spec
    from repro.cluster.spec import QUEUE_POLICIES, SchedulerSpec
    from repro.api.spec import ClusterSpec, FabricSpec

    jobs = 100
    spec = ScenarioSpec(
        name=f"bench-scheduler-sweep-n{n}",
        cluster=ClusterSpec(servers=n, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="topoopt"),
        arrivals=ArrivalSpec(
            # ~20 h median durations x ~12 servers / 4 h interarrival
            # is near saturation on 64 servers: the queue backs up
            # (policies actually differ) without a standing backlog
            # that would make the conservative O(queue) walk the
            # benchmark instead of the policy.
            process="trace", count=jobs, mean_interarrival_s=14400.0,
            max_servers=16, durations="wallclock",
        ),
        jobs=(
            JobTemplateSpec(model="DLRM", servers=8),
            JobTemplateSpec(model="BERT", servers=8),
            JobTemplateSpec(model="CANDLE", servers=8),
            JobTemplateSpec(model="VGG16", servers=8),
        ),
        scheduler=SchedulerSpec(policy="best-fit"),
        max_sim_time_s=4e7,
        fast_forward=True,
    )
    record: Dict = {"servers": n, "jobs": jobs}
    drained = True
    start_all = time.perf_counter()
    for queue in QUEUE_POLICIES:
        policy_spec = spec.with_overrides({"queue": queue})
        start = time.perf_counter()
        result = run_scenario(policy_spec)
        record[f"{queue}_wall_s"] = round(
            time.perf_counter() - start, 3
        )
        record[f"{queue}_queueing_avg_s"] = round(
            result.metrics()["queueing_avg_s"], 3
        )
        drained = drained and len(result.jobs) == jobs
        if queue == "easy":
            repeat = run_scenario(policy_spec)
            record["deterministic"] = (
                json.dumps(result.to_dict(), sort_keys=True)
                == json.dumps(repeat.to_dict(), sort_keys=True)
            )
    record["drained"] = bool(drained)
    fcfs_hol = run_scenario(golden_scenario_spec("fcfs"))
    easy_hol = run_scenario(golden_scenario_spec("easy"))
    record["backfill_beats_fcfs"] = bool(
        easy_hol.metrics()["queueing_avg_s"]
        < fcfs_hol.metrics()["queueing_avg_s"]
    )
    record["wall_s"] = round(time.perf_counter() - start_all, 3)
    return record


def bench_scenario_storm(n: int = 64) -> Dict:
    """Failure-storm drain gate: correlated faults x recovery policies.

    ``n`` servers ingest the 100-job wall-clock trace from
    :func:`bench_scheduler_sweep` while a declared fault schedule
    (:class:`repro.cluster.faults.FaultScheduleSpec`) lands correlated
    storms -- host deaths plus ring-link cuts inside a rack-sized
    region -- across the busy part of the timeline.  Each recovery
    policy (detour / reoptimize / checkpoint-restart) must drain the
    full trace with zero invariant violations (which includes the
    checkpoint lost-work bound), the storm schedule must actually bite
    (>= 20 applied fault events under at least one policy), and the
    detour run repeated with identical (spec, seed) must be
    byte-identical JSON.
    """
    from repro.cluster import ArrivalSpec, JobTemplateSpec, ScenarioSpec
    from repro.cluster.engine import run_scenario
    from repro.cluster.invariants import check_scenario_invariants
    from repro.cluster.spec import SchedulerSpec
    from repro.cluster.faults import RECOVERY_POLICIES
    from repro.api.spec import ClusterSpec, FabricSpec

    jobs = 100
    spec = ScenarioSpec(
        name=f"bench-scenario-storm-n{n}",
        cluster=ClusterSpec(servers=n, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="topoopt"),
        arrivals=ArrivalSpec(
            process="trace", count=jobs, mean_interarrival_s=14400.0,
            max_servers=16, durations="wallclock",
        ),
        jobs=(
            JobTemplateSpec(model="DLRM", servers=8),
            JobTemplateSpec(model="BERT", servers=8),
            JobTemplateSpec(model="CANDLE", servers=8),
            JobTemplateSpec(model="VGG16", servers=8),
        ),
        scheduler=SchedulerSpec(policy="best-fit"),
        max_sim_time_s=2e8,
        fast_forward=True,
    )
    # Storms over the first ~23 simulated days: arrivals span ~17 days
    # (100 x 4 h), so every storm lands while the cluster is busy.
    spec = spec.with_overrides({
        "storms": 8,
        "storm_window_s": 2e6,
        "storm_region_size": 8,
        "storm_servers": 2,
        "storm_links": 2,
        "mean_repair_s": 2e4,
        "checkpoint_interval_s": 1800.0,
    })
    record: Dict = {"servers": n, "jobs": jobs}
    drained = True
    violations = 0
    max_fault_events = 0
    start_all = time.perf_counter()
    for policy in RECOVERY_POLICIES:
        policy_spec = spec.with_overrides({"recovery_policy": policy})
        start = time.perf_counter()
        result = run_scenario(policy_spec)
        key = policy.replace("-", "_")
        record[f"{key}_wall_s"] = round(time.perf_counter() - start, 3)
        fault = result.fault_metrics()
        record[f"{key}_fault_events"] = fault["fault_events"]
        record[f"{key}_lost_work_s"] = round(fault["lost_work_s"], 3)
        max_fault_events = max(max_fault_events, fault["fault_events"])
        drained = drained and (
            len(result.jobs) == jobs and not result.unfinished_jobs
        )
        violations += len(check_scenario_invariants(result))
        if policy == "detour":
            repeat = run_scenario(policy_spec)
            record["deterministic"] = (
                json.dumps(result.to_dict(), sort_keys=True)
                == json.dumps(repeat.to_dict(), sort_keys=True)
            )
    record["drained"] = bool(drained)
    record["invariant_violations"] = violations
    record["fault_events"] = max_fault_events
    record["storm_bites"] = bool(max_fault_events >= 20)
    record["wall_s"] = round(time.perf_counter() - start_all, 3)
    return record


def bench_service_throughput(n: int = 16) -> Dict:
    """Serving-loop throughput gate: Zipf request mix, cold vs warm.

    Models the optimization-as-a-service workload (``docs/service.md``):
    a fixed universe of 8 cheap experiment specs (fixed-strategy, no
    baselines, ``n`` servers) receives 64 requests drawn
    Zipf-distributed over popularity rank (weight of rank ``r`` is
    ``1/r^1.1``, seeded ``default_rng`` -- deterministic), the mix real
    request streams show: a few hot specs dominate, a long tail stays
    cold.  The **cold** drain starts from an empty
    :class:`~repro.service.store.ResultStore` (thread pool, in-flight
    dedup does the coalescing); the **warm** drain replays the same 64
    requests against the now-populated store.

    Three gates ride on the record: ``warm_speedup`` (warm specs/sec
    over cold; floor 5x, enforced by ``bench-smoke`` and the full
    harness), ``dedup_exact`` (the cold drain launched exactly one
    computation per *unique* spec -- the dedup counter's proof
    obligation), and ``byte_identical`` (a store-served result's JSON
    equals a freshly computed one's, byte for byte).
    """
    from repro.api.runner import run_experiment
    from repro.api.spec import (
        ClusterSpec, ExperimentSpec, FabricSpec, OptimizerSpec,
        WorkloadSpec,
    )
    from repro.service import BatchExecutor, ResultStore

    universe_size, request_count, zipf_s = 8, 64, 1.1
    models = ("DLRM", "BERT", "CANDLE", "VGG16")
    universe = [
        ExperimentSpec(
            name=f"bench-service-{i}",
            seed=i,
            workload=WorkloadSpec(
                model=models[i % len(models)], scale="testbed"
            ),
            cluster=ClusterSpec(servers=n, degree=4, bandwidth_gbps=100.0),
            fabric=FabricSpec(kind="fattree"),
            optimizer=OptimizerSpec(strategy="auto"),
            baselines=(),
        )
        for i in range(universe_size)
    ]
    ranks = np.arange(1, universe_size + 1, dtype=float)
    weights = 1.0 / ranks ** zipf_s
    weights /= weights.sum()
    rng = np.random.default_rng(7)
    draws = rng.choice(universe_size, size=request_count, p=weights)
    requests = [universe[i] for i in draws]
    unique = len(set(draws.tolist()))

    store = ResultStore()
    start = time.perf_counter()
    with BatchExecutor(
        store=store, executor="thread", max_workers=8
    ) as service:
        service.drain(requests)
        cold_wall = time.perf_counter() - start
        cold = service.report(wall_s=cold_wall)
    start = time.perf_counter()
    with BatchExecutor(
        store=store, executor="thread", max_workers=8
    ) as service:
        service.drain(requests)
        warm_wall = time.perf_counter() - start
        warm = service.report(wall_s=warm_wall)

    probe = requests[0]
    byte_identical = (
        json.dumps(store.get(probe).to_dict(), sort_keys=True)
        == json.dumps(run_experiment(probe).to_dict(), sort_keys=True)
    )
    return {
        "servers": n,
        "universe": universe_size,
        "requests": request_count,
        "unique_requested": unique,
        "computed": cold.computed,
        "deduplicated": cold.deduplicated,
        "cold_store_hits": cold.store_hits,
        "dedup_exact": bool(
            cold.computed == unique and cold.errors == 0
        ),
        "byte_identical": bool(byte_identical),
        "cold_specs_per_s": cold.specs_per_s,
        "warm_specs_per_s": warm.specs_per_s,
        "cold_p99_ms": cold.latency_p99_ms,
        "warm_p99_ms": warm.latency_p99_ms,
        "warm_speedup": round(
            warm.specs_per_s / max(cold.specs_per_s, 1e-12), 2
        ),
        "wall_s": round(cold_wall + warm_wall, 3),
    }


def bench_obs_overhead(n: int = 64, iterations: int = 4,
                       pairs: int = 40) -> Dict:
    """Observability overhead gate: the scenario engine, tracing off vs on.

    Runs a shared Fat-tree scenario (one 16-server shard per job, as
    many jobs as fit ``n`` servers) with the observability plane
    disabled and again under a live
    :class:`repro.obs.TraceRecorder` -- engine-step spans, pipeline
    spans, scheduler counters, and per-link utilization timelines all
    recording.

    The enabled side measures the *hot path* under an ambient recorder
    (tracing left on in development), so the one-time ObsReport/export
    cost at the end of an observed run is not charged against the
    per-event budget.  Overhead is estimated from ``pairs`` adjacent
    disabled/enabled run pairs -- order flipped every pair so periodic
    background load cannot alias onto one side -- as the *median of
    the paired differences*: pairing cancels CPU-frequency drift, and
    a median over many short pairs resolves sub-noise overheads that a
    min-vs-min comparison of a few long runs cannot (single-run
    scheduler jitter here is routinely larger than the overhead being
    measured).  The ``noise_floor_s`` record field -- the median
    absolute difference between *consecutive disabled* runs -- says
    what resolution the estimate actually had.

    Two gates ride on the record, enforced by ``bench-smoke``:
    ``byte_identical`` -- the traced run's result JSON must equal the
    untraced run's byte for byte (instrumentation must never perturb
    simulation state, RNG draws, or serialization) -- and
    ``overhead_pct`` under 10% (the spans and counters on the hot path
    must stay cheap enough to leave on in development).
    """
    from repro.cluster import ArrivalSpec, JobTemplateSpec, ScenarioSpec
    from repro.cluster.engine import run_scenario
    from repro.obs import TRACER, TraceRecorder
    from repro.api.spec import ClusterSpec, FabricSpec

    models = ("DLRM", "BERT", "CANDLE", "VGG16")
    num_jobs = max(n // 16, 2)
    spec = ScenarioSpec(
        name=f"bench-obs-n{n}",
        cluster=ClusterSpec(servers=n, degree=4, bandwidth_gbps=100.0),
        fabric=FabricSpec(kind="fattree"),
        arrivals=ArrivalSpec(
            process="explicit", times=tuple(0.0 for _ in range(num_jobs))
        ),
        jobs=tuple(
            JobTemplateSpec(
                model=models[i % len(models)], servers=16,
                iterations=iterations,
            )
            for i in range(min(num_jobs, len(models)))
        ),
    )
    run_scenario(spec)  # warm-up: pipeline/kernel caches off the clock
    # GC pauses would land disproportionately on the enabled side
    # (spans and snapshots are allocations), so collection is off for
    # the whole measurement.
    import gc

    recorder = TraceRecorder()
    baseline = traced = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        def run_disabled() -> float:
            nonlocal baseline
            start = time.perf_counter()
            baseline = run_scenario(spec)
            return time.perf_counter() - start

        def run_enabled() -> float:
            nonlocal recorder, traced
            recorder = TraceRecorder()
            with TRACER.recording(recorder):
                start = time.perf_counter()
                traced = run_scenario(spec)
                return time.perf_counter() - start

        diffs: List[float] = []
        offs: List[float] = []
        nulls: List[float] = []
        prev_off = None
        for k in range(pairs):
            if k % 2 == 0:
                off_s = run_disabled()
                on_s = run_enabled()
            else:
                on_s = run_enabled()
                off_s = run_disabled()
            offs.append(off_s)
            diffs.append(on_s - off_s)
            if prev_off is not None:
                nulls.append(abs(off_s - prev_off))
            prev_off = off_s
    finally:
        if gc_was_enabled:
            gc.enable()
    byte_identical = (
        json.dumps(baseline.to_dict(), sort_keys=True)
        == json.dumps(traced.to_dict(), sort_keys=True)
    )
    recorder.flush()  # deferred producers (e.g. utilization timelines)
    median = statistics.median
    disabled_s = median(offs)
    overhead_s = median(diffs)
    return {
        "servers": n,
        "jobs": num_jobs,
        "pairs": pairs,
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(disabled_s + overhead_s, 6),
        "noise_floor_s": round(median(nulls), 6),
        "overhead_pct": round(
            overhead_s / max(disabled_s, 1e-12) * 100.0, 2
        ),
        "byte_identical": bool(byte_identical),
        "spans": len(recorder.spans),
        "counters": len(recorder.counters),
        "timelines": len(recorder.timelines),
    }


#: Sizes the staggered-phase scenario runs at: the batch baseline is
#: quadratic-ish in events x flows, so n=128 would dominate the whole
#: suite without changing the verdict (the acceptance gate is n=64).
STAGGERED_SIZES = (16, 64)

#: Sizes the shared-cluster scenario runs at.  Smoke runs intersect
#: with :data:`SMOKE_SIZES` (the determinism / equivalence gate lives
#: at n=64); full runs sweep all three -- the >=3x speedup gate lives
#: at n=256, where per-event solver rebuilds dominated the seed.
SCENARIO_SIZES = (16, 64, 256)

#: Fleet-scale scenario sizes (servers; jobs scale 1:1).  The full run
#: is the headline config -- a 1000-server cluster ingesting 1000
#: trace jobs with wall-clock durations over months of simulated time
#: -- and the smoke run is the same shape capped small enough for the
#: pre-merge budget.
FLEET_SIZES = (1000,)
FLEET_SMOKE_SIZES = (200,)

#: Scheduler policy-sweep size (servers; the trace is always 100
#: jobs).  One size at both scales: the gate is behavioral (drain,
#: determinism, backfill < FCFS queueing), not a speedup curve.
SCHEDULER_SWEEP_SIZES = (64,)

#: Failure-storm scenario size (servers; the trace is always 100
#: jobs).  One size at both scales: the gate is behavioral (drain
#: under every recovery policy, determinism, zero invariant
#: violations, the storm actually biting), not a speedup curve.
STORM_SIZES = (64,)

#: Service-throughput size (servers per spec; the request mix is
#: always 64 Zipf draws over an 8-spec universe).  One size at both
#: scales: the gates are behavioral (warm >= 5x cold, dedup exactness,
#: byte identity), not a scaling curve.
SERVICE_SIZES = (16,)

#: Observability-overhead size (servers).  One size at both scales:
#: the gates are behavioral (byte identity, overhead under the 10%
#: cap), not a scaling curve.
OBS_SIZES = (64,)

#: Sizes the search-plane scenarios run at (fixed, per the acceptance
#: criteria): the full-rebuild baseline re-routes all n^2 pairs per
#: proposal, so n=128 would dominate the suite without changing the
#: verdict (the gate is n=64).
SEARCH_SIZES = (32, 64)

#: Every benchmark entry, by name -- shared by :func:`run_benchmarks`
#: and the ``repro bench`` CLI (single entry, optional profiling).
BENCH_ENTRIES = {
    "phase_sim": bench_phase_sim,
    "routing": bench_routing,
    "lp_assembly": bench_lp_assembly,
    "staggered_phase": bench_staggered_phase,
    "mcmc_steps": bench_mcmc_steps,
    "alternating": bench_alternating,
    "scenario": bench_scenario,
    "scenario_fleet": bench_scenario_fleet,
    "scheduler_sweep": bench_scheduler_sweep,
    "scenario_storm": bench_scenario_storm,
    "service_throughput": bench_service_throughput,
    "obs_overhead": bench_obs_overhead,
}


def run_benchmarks(
    sizes: Sequence[int] = FULL_SIZES,
    scenarios: Sequence[str] = (
        "phase_sim", "routing", "lp_assembly", "staggered_phase",
        "mcmc_steps", "alternating", "scenario", "scenario_fleet",
        "scheduler_sweep", "scenario_storm", "service_throughput",
        "obs_overhead",
    ),
) -> Dict:
    """Run the kernel micro-benchmarks and return the results tree."""
    runners = BENCH_ENTRIES
    full_run = max(sizes) >= max(FULL_SIZES)
    results: Dict = {"sizes": list(sizes)}
    for scenario in scenarios:
        results[scenario] = {}
        scenario_sizes = sizes
        if scenario == "staggered_phase":
            scenario_sizes = [n for n in sizes if n in STAGGERED_SIZES]
        elif scenario == "scenario":
            scenario_sizes = (
                list(SCENARIO_SIZES) if full_run
                else [n for n in sizes if n in SCENARIO_SIZES]
            )
        elif scenario == "scenario_fleet":
            scenario_sizes = FLEET_SIZES if full_run else FLEET_SMOKE_SIZES
        elif scenario == "scheduler_sweep":
            scenario_sizes = SCHEDULER_SWEEP_SIZES
        elif scenario == "scenario_storm":
            scenario_sizes = STORM_SIZES
        elif scenario == "service_throughput":
            scenario_sizes = SERVICE_SIZES
        elif scenario == "obs_overhead":
            scenario_sizes = OBS_SIZES
        elif scenario in ("mcmc_steps", "alternating"):
            scenario_sizes = SEARCH_SIZES
        for n in scenario_sizes:
            results[scenario][f"n={n}"] = runners[scenario](n)
    return results


def format_results(results: Dict) -> List[str]:
    lines = ["kernel micro-benchmarks (reference vs vectorized)", ""]
    for scenario, per_size in results.items():
        if scenario == "sizes":
            continue
        lines.append(f"{scenario}:")
        for size_key, entry in per_size.items():
            if "reference_s" in entry:
                lines.append(
                    f"  {size_key:>6}: ref {entry['reference_s']:8.4f}s  "
                    f"vec {entry['vectorized_s']:8.4f}s  "
                    f"speedup {entry['speedup']:6.1f}x"
                )
            else:
                # Entries without a reference side (e.g. the fleet
                # scenario) report absolute numbers.
                detail = "  ".join(
                    f"{key}={entry[key]}" for key in sorted(entry)
                )
                lines.append(f"  {size_key:>6}: {detail}")
        lines.append("")
    return lines


def write_results(results: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
