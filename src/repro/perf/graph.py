"""Array-based graph kernels for direct-connect topologies.

All-pairs hop counts run as one C-level unweighted BFS per source via
:mod:`scipy.sparse.csgraph`, replacing the per-pair Python BFS the seed
used for ``diameter``/``average_path_length`` and routing construction.
Path enumeration then works off the precomputed distance matrix: a
node ``p`` precedes ``head`` on some minimum-hop ``src -> dst`` path
iff ``dist[src, p] == dist[src, head] - 1``, so no further searches are
needed once the matrix exists.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

#: Marker for unreachable pairs in integer hop-count rows.
UNREACHABLE = -1


def all_pairs_hop_counts(adjacency: sparse.csr_matrix) -> np.ndarray:
    """Hop-count matrix of a directed graph (``np.inf`` if unreachable).

    ``adjacency`` is any (n x n) sparse matrix whose nonzero pattern is
    the edge set; multiplicities are ignored (hop counts only care
    about connectivity).
    """
    n = adjacency.shape[0]
    if adjacency.nnz == 0:
        hops = np.full((n, n), np.inf)
        np.fill_diagonal(hops, 0.0)
        return hops
    return csgraph.shortest_path(
        adjacency, method="D", directed=True, unweighted=True
    )


def is_strongly_connected(adjacency: sparse.csr_matrix) -> bool:
    """True iff every node reaches every other node."""
    if adjacency.shape[0] <= 1:
        return True
    num_components, _ = csgraph.connected_components(
        adjacency, directed=True, connection="strong"
    )
    return num_components == 1


def shortest_path_avoiding(
    successors: Sequence[Sequence[int]],
    src: int,
    dst: int,
    banned: Iterable[int] = (),
    removed_edges: Optional[Set[Tuple[int, int]]] = None,
) -> Optional[List[int]]:
    """BFS shortest path over out-neighbor lists, avoiding nodes/edges.

    The workhorse of Yen's spur loop: ``successors`` comes from the
    topology's cached CSR adjacency (plain int lists, one per node), so
    the spur search neither iterates dict-of-Counter rows nor mutates
    the graph -- root-path edges are excluded through ``removed_edges``
    and root-path nodes through ``banned``.

    Returns the node list from ``src`` to ``dst``, or ``None`` when no
    path avoids the exclusions.
    """
    if src == dst:
        return [src] if src not in set(banned) else None
    prev = [-1] * len(successors)
    for node in banned:
        prev[node] = -2  # visited-marker: never expanded
    if prev[src] == -2:
        return None
    prev[src] = src
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for nbr in successors[node]:
            if prev[nbr] != -1:
                continue
            if removed_edges and (node, nbr) in removed_edges:
                continue
            prev[nbr] = node
            if nbr == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(prev[path[-1]])
                path.reverse()
                return path
            queue.append(nbr)
    return None


def _shortest_path_dag_parents(
    dist_from_src: Sequence[int],
    predecessors: Sequence[Sequence[int]],
) -> List[Optional[List[int]]]:
    """Per-node predecessors lying on some minimum-hop path from src.

    ``parents[v]`` holds the in-neighbors ``p`` with
    ``dist[p] == dist[v] - 1``; computed once per source (O(E)) so the
    path backtracking never re-filters neighbor lists.
    """
    parents: List[Optional[List[int]]] = [None] * len(dist_from_src)
    for node, d in enumerate(dist_from_src):
        if d <= 0:
            continue
        want = d - 1
        parents[node] = [
            p for p in predecessors[node] if dist_from_src[p] == want
        ]
    return parents


def _paths_via_parents(
    parents: Sequence[Optional[List[int]]],
    src: int,
    dst: int,
    cap: int,
) -> List[List[int]]:
    """Backtracking DFS over the shortest-path DAG (no list copies)."""
    paths: List[List[int]] = []
    path = [dst]
    iters = [iter(parents[dst])]
    while iters:
        nxt = next(iters[-1], None)
        if nxt is None:
            iters.pop()
            path.pop()
            continue
        if nxt == src:
            paths.append([src] + path[::-1])
            if len(paths) >= cap:
                break
            continue
        path.append(nxt)
        iters.append(iter(parents[nxt]))
    return paths


def enumerate_min_hop_paths(
    dist_from_src: Sequence[int],
    predecessors: Sequence[Sequence[int]],
    src: int,
    dst: int,
    cap: int,
) -> List[List[int]]:
    """Up to ``cap`` distinct minimum-hop paths from src to dst.

    Parameters
    ----------
    dist_from_src:
        Integer hop counts from ``src``, with :data:`UNREACHABLE` for
        unreachable nodes (plain-int access is several times faster
        than NumPy scalar indexing in the enumeration loops).
    predecessors:
        ``predecessors[v]`` iterates the in-neighbors of ``v``.
    """
    if src == dst:
        return [[src]]
    if dist_from_src[dst] == UNREACHABLE:
        return []
    if dist_from_src[dst] == 1:
        return [[src, dst]]
    parents = _shortest_path_dag_parents(dist_from_src, predecessors)
    return _paths_via_parents(parents, src, dst, cap)


def min_hop_paths_from_source(
    dist_from_src: Sequence[int],
    predecessors: Sequence[Sequence[int]],
    src: int,
    cap: int,
) -> Dict[int, List[List[int]]]:
    """Min-hop path sets from ``src`` to every reachable destination.

    Dynamic programming over the shortest-path DAG in distance order:
    a node at hop ``k`` extends the already-assembled path lists of its
    DAG parents at hop ``k - 1``, so path prefixes are shared across
    all destinations and the total work is bounded by the output size.
    Capping parent lists at ``cap`` is lossless for the capped result
    (``sum(min(cap, c_p)) >= min(cap, sum(c_p))``), and with a large
    ``cap`` this enumerates exactly the full min-hop path set of every
    destination -- the batched replacement for an independent BFS per
    (src, dst) pair.
    """
    reachable = [
        (d, node)
        for node, d in enumerate(dist_from_src)
        if d > 0
    ]
    reachable.sort()
    paths_by_node: List[Optional[List[List[int]]]] = [None] * len(
        dist_from_src
    )
    paths_by_node[src] = [[src]]
    result: Dict[int, List[List[int]]] = {}
    for d, node in reachable:
        want = d - 1
        acc: List[List[int]] = []
        for pred in predecessors[node]:
            if dist_from_src[pred] != want:
                continue
            for prefix in paths_by_node[pred]:
                acc.append(prefix + [node])
                if len(acc) >= cap:
                    break
            if len(acc) >= cap:
                break
        paths_by_node[node] = acc
        result[node] = acc
    return result
