"""Sparse incremental iteration-cost kernels for the strategy search.

The alternating co-optimization (section 4.1) only works because the
analytic cost model is orders of magnitude faster than simulating,
letting MCMC take thousands of placement steps.  This module supplies
the kernels that make each step cheap:

* :class:`CostModelKernel` -- per fabric, a pair -> link routing-
  fraction matrix ``R`` is assembled **once** (one per traffic kind),
  so a phase's link loads are a single sparse mat-vec ``R.T @ demand``
  and the busiest-link time is a NumPy max over ``link_bits /
  capacity``, replacing the per-path Python loops of the seed
  ``IterationCostModel``.
* :class:`CompiledLayerTraffic` -- one layer's contribution to the
  traffic summary, pre-multiplied through ``R`` into a per-link load
  vector, so re-placing a layer touches O(links) state instead of
  re-routing all n^2 pairs.
* :class:`IncrementalCostEvaluator` -- the delta-updated cost state a
  Metropolis chain mutates: proposing a move subtracts the moved
  layer's old load vector and adds the new one; rejecting undoes in
  O(delta).  Cached aggregates are re-synchronized from the per-layer
  vectors every :data:`SYNC_INTERVAL` deltas so floating-point drift
  stays bounded, and the full rebuild
  (:meth:`IncrementalCostEvaluator.rebuild`) is retained as the
  equivalence oracle -- exactness never rests on the delta path.

The pure-Python seed cost model survives as
:class:`repro.parallel.mcmc.ReferenceIterationCostModel`; equivalence
tests pin the two together (``tests/test_costmodel.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np
from scipy import sparse

if TYPE_CHECKING:  # break the repro.parallel <-> repro.perf import cycle
    from repro.parallel.traffic import LayerTraffic, TrafficSummary

Link = Tuple[int, int]

#: Deltas applied between full re-synchronizations of the cached
#: aggregate load vectors (bounds floating-point drift the same way
#: ``IncrementalFairShare.SYNC_INTERVAL`` does for the flow solver).
SYNC_INTERVAL = 256


def _iter_pair_paths(
    fabric, kind: str, n: int
) -> Iterator[Tuple[int, int, List[List[int]]]]:
    """Yield ``(src, dst, paths)`` for every ordered server pair.

    Fabrics may expose a ``bulk_paths(kind)`` hook that enumerates the
    whole pair space without per-call overhead; the generic fallback
    asks ``fabric.paths`` pair by pair over the ``n``-server id space.
    """
    bulk = getattr(fabric, "bulk_paths", None)
    if bulk is not None and getattr(fabric, "num_servers", None) == n:
        yield from bulk(kind)
        return
    for src in range(n):
        for dst in range(n):
            if src != dst:
                yield src, dst, fabric.paths(src, dst, kind)


@dataclass
class _MPRouting:
    """MP routing state for one pair-space size ``n``."""

    matrix: sparse.csr_matrix  # (n*n pairs) x (links), routing fractions
    unroutable: np.ndarray     # bool per pair: demand here costs inf


@dataclass
class CompiledLayerTraffic:
    """One layer's traffic contribution, pre-routed onto the links.

    ``mp_loads[l]`` is the byte load layer demand places on link ``l``
    after ECMP splitting -- i.e. ``R.T @ demand`` restricted to the
    layer's pairs, computed once and cached so a placement delta is a
    vector add/subtract.
    """

    source: "LayerTraffic"
    mp_loads: np.ndarray       # (num_links,) routed byte loads
    unroutable_bytes: float    # MP bytes falling on pathless pairs

    @property
    def dp_replicas(self) -> Optional[Tuple[int, ...]]:
        return self.source.dp_replicas

    @property
    def dp_bytes(self) -> float:
        return self.source.dp_bytes


class CostModelKernel:
    """Per-fabric routing matrices and vectorized phase times.

    Assembled once per fabric and shared across MCMC proposals, search
    restarts, and alternating-optimization rounds.  The three queries:

    * :meth:`mp_time` / :meth:`allreduce_time` / :meth:`cost` -- full
      evaluations of a :class:`TrafficSummary` (the fast path behind
      :class:`repro.parallel.mcmc.IterationCostModel`);
    * :meth:`compile_layer` -- pre-route one layer's contribution for
      the incremental evaluator;
    * :meth:`allreduce_unit_loads` -- per-link byte loads of a 1-byte
      AllReduce over a member set (loads scale linearly in the group's
      bytes, so one unit vector serves every byte count).
    """

    def __init__(self, fabric):
        self.fabric = fabric
        caps = fabric.capacities()
        self.links: List[Link] = list(caps)
        self.link_index: Dict[Link, int] = {
            link: i for i, link in enumerate(self.links)
        }
        self.capacities_bps = np.asarray(
            [caps[link] for link in self.links], dtype=float
        )
        self.num_links = len(self.links)
        self._mp_routing: Dict[int, _MPRouting] = {}
        self._ar_units: Dict[Tuple[int, ...], Optional[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Routing-matrix assembly
    # ------------------------------------------------------------------
    def _link_id(self, a: int, b: int) -> int:
        try:
            return self.link_index[(a, b)]
        except KeyError:
            raise KeyError(f"routed traffic uses unknown link {(a, b)}")

    def mp_routing(self, n: int) -> _MPRouting:
        """The (n*n x links) MP routing-fraction matrix, built lazily.

        Row ``src * n + dst`` holds the fraction of that pair's bytes
        each link carries under equal splitting over the fabric's MP
        path set; pairs without any path are flagged ``unroutable``
        (demand there makes the phase time infinite, as in the seed).
        """
        routing = self._mp_routing.get(n)
        if routing is not None:
            return routing
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        unroutable = np.zeros(n * n, dtype=bool)
        for src, dst, paths in _iter_pair_paths(self.fabric, "mp", n):
            pair = src * n + dst
            if not paths:
                unroutable[pair] = True
                continue
            fraction = 1.0 / len(paths)
            for path in paths:
                for a, b in zip(path, path[1:]):
                    rows.append(pair)
                    cols.append(self._link_id(a, b))
                    data.append(fraction)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(n * n, self.num_links)
        )
        routing = _MPRouting(matrix=matrix, unroutable=unroutable)
        self._mp_routing[n] = routing
        return routing

    def allreduce_unit_loads(
        self, members: Tuple[int, ...]
    ) -> Optional[np.ndarray]:
        """Per-link byte loads of a 1-byte AllReduce over ``members``.

        Mirrors the seed accounting: dedicated ring edges when the
        fabric advertises them (``ring_edge_paths``), otherwise the
        ring-neighbor transfers ECMP-split over the fabric's AllReduce
        paths.  Returns ``None`` when some neighbor pair has no path
        (any positive byte count is then unroutable -> infinite time).
        """
        members = tuple(members)
        if members in self._ar_units:
            return self._ar_units[members]
        loads = self._compute_allreduce_unit(members)
        self._ar_units[members] = loads
        return loads

    def _compute_allreduce_unit(
        self, members: Tuple[int, ...]
    ) -> Optional[np.ndarray]:
        from repro.parallel.collectives import allreduce_edge_bytes

        k = len(members)
        loads = np.zeros(self.num_links)
        if k < 2:
            return loads
        ring_paths = []
        if hasattr(self.fabric, "ring_edge_paths"):
            ring_paths = self.fabric.ring_edge_paths(members)
        if ring_paths:
            for path, num_rings in ring_paths:
                per_edge = allreduce_edge_bytes(1.0, k, num_rings)
                for a, b in zip(path, path[1:]):
                    loads[self._link_id(a, b)] += per_edge
            return loads
        per_edge = allreduce_edge_bytes(1.0, k)
        for i in range(k):
            src, dst = members[i], members[(i + 1) % k]
            paths = self.fabric.paths(src, dst, "allreduce")
            if not paths:
                return None
            share = per_edge / len(paths)
            for path in paths:
                for a, b in zip(path, path[1:]):
                    loads[self._link_id(a, b)] += share
        return loads

    # ------------------------------------------------------------------
    # Phase times (vectorized)
    # ------------------------------------------------------------------
    def phase_time(self, link_loads_bytes: np.ndarray) -> float:
        """Busiest-link time of a phase given per-link byte loads."""
        if self.num_links == 0 or link_loads_bytes.size == 0:
            return 0.0
        worst = float(np.max(link_loads_bytes / self.capacities_bps))
        # Delta updates can leave -1e-25-scale residues on idle links.
        return max(0.0, 8.0 * worst)

    def compile_layer(self, contribution: LayerTraffic) -> CompiledLayerTraffic:
        """Pre-route a layer contribution into a per-link load vector."""
        n = contribution.n
        routing = self.mp_routing(n)
        idx = contribution.mp_pair_indices
        values = contribution.mp_pair_bytes
        if idx.size:
            mp_loads = routing.matrix[idx].T.dot(values)
            mp_loads = np.asarray(mp_loads).reshape(-1)
            unroutable = float(values[routing.unroutable[idx]].sum())
        else:
            mp_loads = np.zeros(self.num_links)
            unroutable = 0.0
        return CompiledLayerTraffic(
            source=contribution,
            mp_loads=mp_loads,
            unroutable_bytes=unroutable,
        )

    def mp_time(self, traffic: TrafficSummary) -> float:
        """Vectorized equivalent of the seed per-pair MP routing loop."""
        routing = self.mp_routing(traffic.n)
        demand = np.asarray(traffic.mp_matrix, dtype=float).reshape(-1)
        if float(demand[routing.unroutable].sum()) > 0.0:
            return math.inf
        loads = np.asarray(routing.matrix.T.dot(demand)).reshape(-1)
        return self.phase_time(loads)

    def allreduce_time(self, traffic: TrafficSummary) -> float:
        """Vectorized equivalent of the seed per-group AllReduce loop."""
        loads = np.zeros(self.num_links)
        for group in traffic.allreduce_groups:
            if group.size < 2 or group.total_bytes <= 0:
                continue
            unit = self.allreduce_unit_loads(group.members)
            if unit is None:
                return math.inf
            loads += group.total_bytes * unit
        return self.phase_time(loads)

    def cost(self, traffic: TrafficSummary, compute_s: float) -> float:
        return compute_s + self.mp_time(traffic) + self.allreduce_time(traffic)


class IncrementalCostEvaluator:
    """Delta-updated iteration cost over compiled layer contributions.

    State: the per-layer compiled contributions, the aggregate MP
    link-load vector, the per-replica-set AllReduce byte totals, and
    the aggregate AllReduce link-load vector.  Invariants:

    * **Additivity.**  Every aggregate equals the sum of the current
      per-layer terms; :meth:`set_layer` maintains this with one
      vector subtract + add (O(links)), whatever ``n`` is.
    * **Bounded drift.**  After :data:`SYNC_INTERVAL` deltas the
      aggregates are rebuilt from the per-layer vectors
      (:meth:`rebuild`), so accumulated float error cannot grow
      unboundedly along a long Metropolis chain.
    * **Oracle equivalence.**  :meth:`rebuild` *is* the full-rebuild
      evaluation; the incremental state must match it (and the
      pure-Python reference cost model) to ~1e-12 relative at every
      step -- enforced by ``tests/test_costmodel.py`` and
      ``tests/test_mcmc.py``.
    """

    def __init__(self, kernel: CostModelKernel, compute_s: float):
        self.kernel = kernel
        self.compute_s = compute_s
        self._layers: Dict[str, CompiledLayerTraffic] = {}
        self._mp_loads = np.zeros(kernel.num_links)
        # Unroutability is tracked as exact integer counts of the
        # contributing layers, not float byte sums: add/subtract
        # residues must never leave a spurious "still unroutable" (or
        # "became routable") state behind.
        self._mp_unroutable_layers = 0
        self._ar_bytes: Dict[Tuple[int, ...], float] = {}
        self._ar_loads = np.zeros(kernel.num_links)
        self._ar_unroutable_layers = 0
        self._deltas_since_sync = 0

    # ------------------------------------------------------------------
    def reset(self, layers: Mapping[str, CompiledLayerTraffic]) -> None:
        """Load a full strategy's contributions and rebuild aggregates."""
        self._layers = dict(layers)
        self.rebuild()

    def layer(self, name: str) -> CompiledLayerTraffic:
        return self._layers[name]

    def set_layer(self, name: str, compiled: CompiledLayerTraffic) -> None:
        """Replace one layer's contribution (O(links) delta update)."""
        old = self._layers.get(name)
        if old is not None:
            self._apply(old, -1.0)
        self._layers[name] = compiled
        self._apply(compiled, +1.0)
        self._deltas_since_sync += 1
        if self._deltas_since_sync >= SYNC_INTERVAL:
            self.rebuild()

    def _apply(self, compiled: CompiledLayerTraffic, sign: float) -> None:
        self._mp_loads += sign * compiled.mp_loads
        if compiled.unroutable_bytes > 0:
            self._mp_unroutable_layers += int(sign)
        if compiled.dp_replicas is not None:
            members = compiled.dp_replicas
            delta = sign * compiled.dp_bytes
            self._ar_bytes[members] = self._ar_bytes.get(members, 0.0) + delta
            unit = self.kernel.allreduce_unit_loads(members)
            if unit is None:
                # Layers only report dp_replicas with positive bytes, so
                # a non-zero count is exactly "some group is unroutable".
                self._ar_unroutable_layers += int(sign)
            else:
                self._ar_loads += delta * unit

    def rebuild(self) -> None:
        """Recompute every aggregate from the per-layer contributions.

        This is the oracle the delta path must agree with; it also
        resets the drift clock.
        """
        kernel = self.kernel
        self._mp_loads = np.zeros(kernel.num_links)
        self._mp_unroutable_layers = 0
        self._ar_bytes = {}
        self._ar_loads = np.zeros(kernel.num_links)
        self._ar_unroutable_layers = 0
        for compiled in self._layers.values():
            self._mp_loads += compiled.mp_loads
            if compiled.unroutable_bytes > 0:
                self._mp_unroutable_layers += 1
            if compiled.dp_replicas is not None:
                members = compiled.dp_replicas
                self._ar_bytes[members] = (
                    self._ar_bytes.get(members, 0.0) + compiled.dp_bytes
                )
                if kernel.allreduce_unit_loads(members) is None:
                    self._ar_unroutable_layers += 1
        for members, total in self._ar_bytes.items():
            if len(members) < 2 or total <= 0:
                continue
            unit = kernel.allreduce_unit_loads(members)
            if unit is not None:
                self._ar_loads += total * unit
        self._deltas_since_sync = 0

    # ------------------------------------------------------------------
    def mp_time(self) -> float:
        if self._mp_unroutable_layers > 0:
            return math.inf
        return self.kernel.phase_time(self._mp_loads)

    def allreduce_time(self) -> float:
        if self._ar_unroutable_layers > 0:
            return math.inf
        return self.kernel.phase_time(self._ar_loads)

    def cost(self) -> float:
        return self.compute_s + self.mp_time() + self.allreduce_time()
