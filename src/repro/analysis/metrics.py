"""Network metrics of sections 5.4-5.5: bandwidth tax, path lengths, load.

* **Bandwidth tax** (after RotorNet [99]): the ratio of traffic volume in
  the network -- including host-forwarded bytes -- to the logical demand.
  A full-bisection Fat-tree always has tax 1; TopoOpt's tax grows with
  multi-hop MP paths (Figure 13).
* **Path-length CDF**: hop counts over all server pairs (Figure 14).
* **Per-link traffic distribution**: bytes carried by each physical link
  for a routed traffic matrix -- the load-imbalance CDF of Figure 15.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

Link = Tuple[int, int]
PathsFn = Callable[[int, int], Sequence[Sequence[int]]]


def routed_link_bytes(
    matrix: np.ndarray, paths_fn: PathsFn
) -> Dict[Link, float]:
    """Route a byte matrix over ``paths_fn`` and total bytes per link."""
    n = matrix.shape[0]
    totals: Dict[Link, float] = {}
    for src in range(n):
        for dst in range(n):
            byte_count = float(matrix[src, dst])
            if src == dst or byte_count <= 0:
                continue
            paths = paths_fn(src, dst)
            if not paths:
                raise ValueError(f"no path for demand {src}->{dst}")
            share = byte_count / len(paths)
            for path in paths:
                for i in range(len(path) - 1):
                    link = (path[i], path[i + 1])
                    totals[link] = totals.get(link, 0.0) + share
    return totals


def bandwidth_tax(
    matrix: np.ndarray, paths_fn: PathsFn, server_count: int = None
) -> float:
    """Traffic volume in the network / logical demand volume (section 5.4).

    Only server-to-server hops count: a path through switch nodes (ids
    >= ``server_count``) contributes one unit per logical transfer, as
    hosts do not relay in switch fabrics, keeping Fat-tree's tax at 1.
    """
    n = matrix.shape[0]
    if server_count is None:
        server_count = n
    logical = 0.0
    carried = 0.0
    for src in range(n):
        for dst in range(n):
            byte_count = float(matrix[src, dst])
            if src == dst or byte_count <= 0:
                continue
            logical += byte_count
            paths = paths_fn(src, dst)
            if not paths:
                raise ValueError(f"no path for demand {src}->{dst}")
            share = byte_count / len(paths)
            for path in paths:
                server_hops = _server_segment_count(path, server_count)
                carried += share * server_hops
    if logical <= 0:
        return 1.0
    return carried / logical


def _server_segment_count(path: Sequence[int], server_count: int) -> int:
    """Number of server-to-server segments along a path.

    Consecutive switch nodes collapse into the enclosing segment, so a
    Fat-tree path server->ToR->core->ToR->server counts once while a
    TopoOpt relay path server->server->server counts twice.
    """
    servers = [node for node in path if node < server_count]
    return max(len(servers) - 1, 1)


def path_length_cdf(paths_fn: PathsFn, n: int) -> List[int]:
    """Hop counts of the primary path for every ordered pair (Figure 14)."""
    lengths = []
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            paths = paths_fn(src, dst)
            if not paths:
                raise ValueError(f"no path for pair {src}->{dst}")
            lengths.append(len(paths[0]) - 1)
    return lengths


def link_traffic_distribution(
    matrix: np.ndarray, paths_fn: PathsFn
) -> List[float]:
    """Sorted per-link byte totals for a routed matrix (Figure 15)."""
    totals = routed_link_bytes(matrix, paths_fn)
    return sorted(totals.values())


def load_imbalance(matrix: np.ndarray, paths_fn: PathsFn) -> float:
    """(max - min) / max link load; 0 means perfectly balanced."""
    loads = link_traffic_distribution(matrix, paths_fn)
    if not loads or loads[-1] <= 0:
        return 0.0
    return (loads[-1] - loads[0]) / loads[-1]


def average_path_length(paths_fn: PathsFn, n: int) -> float:
    lengths = path_length_cdf(paths_fn, n)
    return float(np.mean(lengths)) if lengths else 0.0
