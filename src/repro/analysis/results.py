"""Analysis helpers driven directly off result objects.

The figure drivers used to hand-build dicts of samples before calling
:mod:`repro.analysis.cdf`; these helpers close that gap by reading
:meth:`repro.api.results.SweepResult.rows` and
:class:`repro.cluster.results.ScenarioResult` directly, so a
Figure 16-style series is one call away from a result object.  The
functions duck-type their inputs (anything with ``jobs`` /
``iteration_samples`` works), keeping ``analysis/`` free of result-layer
imports.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.analysis.cdf import Cdf, empirical_cdf


def column(
    rows: Sequence[Mapping[str, Any]], key: str, drop_none: bool = True
) -> List[Any]:
    """One column of a row-per-run table (``SweepResult.rows()``).

    ``drop_none`` skips failed points' ``None`` metrics, which is what
    a CDF or a plot wants; pass ``False`` to keep row alignment.
    """
    values = [row.get(key) for row in rows]
    if drop_none:
        values = [value for value in values if value is not None]
    return values


def cdf_from_rows(rows: Sequence[Mapping[str, Any]], key: str) -> Cdf:
    """Empirical CDF of one metric column across sweep points."""
    values = column(rows, key)
    if not values:
        raise ValueError(f"no values for column {key!r}")
    return empirical_cdf([float(value) for value in values])


def iteration_time_cdf(result, skip_first: int = 0) -> Cdf:
    """CDF of all jobs' iteration times in one scenario (Figure 16)."""
    return empirical_cdf(result.iteration_samples(skip_first))


def jct_cdf(result) -> Cdf:
    """CDF of job completion times in one scenario."""
    return empirical_cdf([job.jct_s for job in result.jobs])


def queueing_delay_cdf(result) -> Cdf:
    """CDF of queueing delays in one scenario."""
    return empirical_cdf([job.queueing_delay_s for job in result.jobs])


def iteration_time_series(
    results: Mapping[str, Any], skip_first: int = 0
) -> List[Dict[str, float]]:
    """Figure 16's series: per-label average and p99 iteration time.

    ``results`` maps display labels (e.g. fabric names) to
    :class:`~repro.cluster.results.ScenarioResult` objects run under
    the same arrival trace; rows come back in mapping order.
    """
    series = []
    for label, result in results.items():
        avg, p99 = result.iteration_stats(skip_first)
        series.append({"label": label, "avg_s": avg, "p99_s": p99})
    return series
