"""Empirical CDFs for the paper's distribution figures (2, 14, 15)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF: sorted values and cumulative fractions."""

    values: Tuple[float, ...]
    fractions: Tuple[float, ...]

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1]."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            raise ValueError("empty CDF")
        return float(np.percentile(np.array(self.values), q * 100.0))

    def fraction_at_or_below(self, value: float) -> float:
        """CDF evaluated at ``value``."""
        count = sum(1 for v in self.values if v <= value)
        return count / len(self.values) if self.values else 0.0

    @property
    def median(self) -> float:
        return self.percentile(0.5)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    def series(self, points: int = 20) -> List[Tuple[float, float]]:
        """Down-sampled (value, fraction) pairs for table printing."""
        if not self.values:
            return []
        idx = np.linspace(0, len(self.values) - 1, points).astype(int)
        return [(self.values[i], self.fractions[i]) for i in idx]


def empirical_cdf(samples: Sequence[float]) -> Cdf:
    """Build an empirical CDF from samples."""
    if len(samples) == 0:
        raise ValueError("need at least one sample")
    ordered = sorted(float(s) for s in samples)
    n = len(ordered)
    fractions = tuple((i + 1) / n for i in range(n))
    return Cdf(values=tuple(ordered), fractions=fractions)
