"""Analysis utilities: heatmaps, CDFs, and the paper's network metrics."""

from repro.analysis.heatmap import render_heatmap, heatmap_summary
from repro.analysis.cdf import Cdf, empirical_cdf
from repro.analysis.metrics import (
    bandwidth_tax,
    link_traffic_distribution,
    path_length_cdf,
    routed_link_bytes,
)
from repro.analysis.results import (
    cdf_from_rows,
    column,
    iteration_time_cdf,
    iteration_time_series,
    jct_cdf,
    queueing_delay_cdf,
)

__all__ = [
    "render_heatmap",
    "heatmap_summary",
    "Cdf",
    "empirical_cdf",
    "bandwidth_tax",
    "link_traffic_distribution",
    "path_length_cdf",
    "routed_link_bytes",
    "cdf_from_rows",
    "column",
    "iteration_time_cdf",
    "iteration_time_series",
    "jct_cdf",
    "queueing_delay_cdf",
]
