"""Analysis utilities: heatmaps, CDFs, and the paper's network metrics."""

from repro.analysis.heatmap import render_heatmap, heatmap_summary
from repro.analysis.cdf import Cdf, empirical_cdf
from repro.analysis.metrics import (
    bandwidth_tax,
    link_traffic_distribution,
    path_length_cdf,
    routed_link_bytes,
)

__all__ = [
    "render_heatmap",
    "heatmap_summary",
    "Cdf",
    "empirical_cdf",
    "bandwidth_tax",
    "link_traffic_distribution",
    "path_length_cdf",
    "routed_link_bytes",
]
