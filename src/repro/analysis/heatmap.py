"""Traffic-heatmap helpers: ASCII rendering and structural summaries.

The paper communicates traffic patterns as server-to-server heatmaps
(Figures 1, 4, 8, 9, 22-24).  Benches print them as ASCII grids and
report the structural facts the figures illustrate: the maximum pair
transfer, how many diagonals (ring permutations) are present, and how
balanced the matrix is.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

_SHADES = " .:-=+*#%@"


def render_heatmap(matrix: np.ndarray) -> str:
    """ASCII-art heatmap: darker characters mean more traffic."""
    matrix = np.asarray(matrix, dtype=float)
    peak = matrix.max()
    rows = []
    for row in matrix:
        if peak <= 0:
            rows.append(" " * len(row))
            continue
        chars = []
        for value in row:
            level = int(round((len(_SHADES) - 1) * value / peak))
            chars.append(_SHADES[level])
        rows.append("".join(chars))
    return "\n".join(rows)


def heatmap_summary(matrix: np.ndarray) -> Dict[str, float]:
    """Structural summary of a traffic matrix."""
    matrix = np.asarray(matrix, dtype=float)
    off_diag = matrix[~np.eye(matrix.shape[0], dtype=bool)]
    positive = off_diag[off_diag > 0]
    return {
        "max_bytes": float(matrix.max()),
        "total_bytes": float(matrix.sum()),
        "nonzero_pairs": int((matrix > 0).sum()),
        "mean_positive_bytes": float(positive.mean()) if positive.size else 0.0,
        "balance": (
            float(positive.min() / positive.max()) if positive.size else 1.0
        ),
    }


def diagonal_offsets(matrix: np.ndarray, threshold: float = 0.5) -> List[int]:
    """Ring strides visible in a heatmap.

    A "+p" ring permutation over n servers puts traffic on the cyclic
    diagonal at offset p.  Returns every offset whose *minimum* entry
    exceeds ``threshold`` times the matrix's peak -- i.e. complete
    diagonals, the dark lines in Figures 4 and 8.
    """
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    peak = matrix.max()
    if peak <= 0:
        return []
    offsets = []
    for offset in range(1, n):
        entries = [matrix[i, (i + offset) % n] for i in range(n)]
        if min(entries) >= threshold * peak:
            offsets.append(offset)
    return offsets
