"""The trace-driven shared-cluster scenario engine.

:func:`run_scenario` turns a :class:`~repro.cluster.spec.ScenarioSpec`
into a :class:`~repro.cluster.results.ScenarioResult` by simulating the
cluster's life as a discrete-event loop:

1. **Arrivals** are drawn from the spec's arrival process (explicit
   times, Poisson, or the section 2.2 production-trace generator) and
   enter an FCFS queue.
2. **Admission**: the head-of-line job asks the
   :class:`~repro.cluster.scheduler.ShardAllocator` for a contiguous
   server block (first-fit / best-fit / random).  On success the job's
   pipeline runs -- workload build, strategy (a fixed registry builder
   or the MCMC x TopologyFinder co-optimization on the allocated shard),
   traffic extraction -- and its flows are handed to the
   :class:`repro.sim.cluster.SharedClusterSimulator` state machine:
   a physically isolated per-shard fluid network when the fabric is
   ``topoopt``, the one contended cluster-wide network otherwise.
3. **Departure** after the job's iteration quota: ports are freed,
   fragmentation is sampled, and the queue is re-examined.

Determinism: every random draw derives from the spec seed through
:func:`repro.api.runner.point_seed` streams, the fluid simulation is
seedless (stagger disabled), and all reductions are insertion-ordered,
so ``run_scenario(spec).to_dict()`` is a pure function of (spec, seed).

Strategy parity across fabrics: the per-job pipeline always optimizes
at shard-local scale, so a ``fattree`` scenario offers *exactly* the
traffic its ``topoopt`` twin does -- the comparison isolates the
interconnect, which is what makes the Figure 16 series meaningful.

Link failures (section 7) can be injected mid-scenario with
:class:`FailureInjection`: the affected shard's routing is patched
through :class:`repro.sim.failures.FailureManager` (transient MP
detour, then an optional permanent port swap), and subsequent
iterations ride the repaired paths.
"""

from __future__ import annotations

import bisect
import heapq
import math
import random
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.api.registry import (
    FabricBuildContext,
    build_fabric,
    build_strategy,
    build_workload,
)
from repro.api.runner import point_seed
from repro.api.spec import (
    ClusterSpec,
    ExperimentSpec,
    FabricSpec,
    WorkloadSpec,
)
from repro.cluster.results import JobResult, ScenarioResult
from repro.cluster.scheduler import (
    JobScheduler,
    QueuedJob,
    RunningJob,
    ShardAllocator,
    ShardManager,
)
from repro.cluster.spec import FAMILY_MODELS, ScenarioSpec
from repro.models.compute import compute_time_seconds
from repro.models.configs import CONFIG_FAMILIES
from repro.parallel.traffic import extract_traffic
from repro.sim.cluster import JobSpec, SharedClusterSimulator, remap_traffic

_TIME_EPS = 1e-9


class ScenarioError(RuntimeError):
    """A scenario could not run to completion."""


@dataclass(frozen=True)
class FailureInjection:
    """One link failure to inject while the scenario runs.

    ``job_index`` names the arrival-order index of the target job;
    ``link`` is a local shard link ``(src, dst)`` (``None`` picks the
    job's first AllReduce ring edge); ``repair_s`` schedules the
    permanent port-swap repair.  Failures only apply to running jobs on
    ``topoopt`` shards -- anything else is logged as skipped.
    """

    time_s: float
    job_index: int
    link: Optional[Tuple[int, int]] = None
    repair_s: Optional[float] = None


@dataclass
class _JobPlan:
    """One drawn arrival, fully resolved against its template."""

    index: int
    name: str
    model: str
    scale: str
    servers: int
    iterations: int
    strategy: Optional[str]
    batch_per_gpu: Optional[int]
    arrival_s: float
    seed: int
    #: Wall-clock budget (``arrivals.durations='wallclock'``); ``None``
    #: keeps the template's iteration quota.
    duration_s: Optional[float] = None
    #: Scheduling priority (``preemption="priority"``): higher wins.
    priority: int = 0
    #: Effective elastic shard-size range (collapses to ``servers`` for
    #: inelastic templates; only consulted when ``scheduler.elastic``).
    min_servers: int = 0
    max_servers: int = 0


@dataclass
class _Prepared:
    """The per-job pipeline output (cached across identical templates)."""

    traffic: object
    compute_s: float
    strategy_name: str
    fabric: Optional[object] = None  # local-id TopoOptFabric (shard mode)
    #: Lazily measured uncontended iteration wall time (the backfill
    #: disciplines' reservation currency); exact on isolated shards.
    est_iteration_s: Optional[float] = None


@dataclass
class _JobLife:
    """Cross-segment accounting of one job's whole life.

    Preemption and elastic resize split a job into *segments* (one
    per :class:`_Running` incarnation); everything that must survive a
    segment boundary -- completed iterations, the sealed RLE iteration
    log, wall-clock service time, costs owed at the next start -- lives
    here.  A job that is never preempted or resized has exactly one
    segment and this reduces to the old single-entry bookkeeping.
    """

    plan: _JobPlan
    #: First admission time (queueing delay is measured to here).
    admitted_s: Optional[float] = None
    #: Iterations completed in *sealed* (past) segments.
    done: int = 0
    #: RLE iteration log of sealed segments.
    log: List[Tuple[float, int]] = field(default_factory=list)
    #: Wall-clock service time accumulated in sealed segments
    #: (wall-clock-duration jobs stop their budget clock while evicted).
    served_s: float = 0.0
    segments: int = 0
    preemptions: int = 0
    resizes: int = 0
    #: Checkpoint/restart debt charged at the next segment start.
    pending_overhead_s: float = 0.0
    #: When the job was last evicted (None = not currently evicted).
    requeued_s: Optional[float] = None
    #: Total time spent requeued between eviction and re-admission.
    preempted_wait_s: float = 0.0


@dataclass
class _Running:
    plan: _JobPlan
    prepared: _Prepared
    servers: Tuple[int, ...]
    substrate: SharedClusterSimulator
    state: object
    admitted_s: float
    life: Optional[_JobLife] = None
    #: When this segment's first compute phase starts (admission time
    #: plus provisioning latency and any checkpoint/restart debt).
    start_s: float = 0.0
    failure_manager: Optional[object] = None
    #: First iteration boundary at or past this absolute time ends the
    #: job (wall-clock durations); ``None`` means quota mode.
    deadline_s: Optional[float] = None
    #: Run-length-encoded iteration record, built lazily the first time
    #: fast-forward accounts iterations analytically (``None`` = every
    #: iteration was simulated and ``state.stats`` is the full record).
    log: Optional[List[Tuple[float, int]]] = None
    #: How many simulated iterations are already flushed into ``log``.
    logged_upto: int = 0
    #: Iterations accounted analytically (never simulated).
    ff_count: int = 0
    #: Fast-forwarded straight to departure: the job left its substrate
    #: early and only awaits its scheduled analytic departure time.
    detached: bool = False
    #: Exact analytic departure time of a detached job.
    analytic_finish_s: Optional[float] = None


class ScenarioEngine:
    """Drives one scenario; most callers want :func:`run_scenario`."""

    def __init__(
        self,
        spec: ScenarioSpec,
        failures: Sequence[FailureInjection] = (),
    ):
        self.spec = spec
        self.shardable = spec.fabric.kind == "topoopt"
        self._allocator = ShardAllocator(
            spec.cluster.servers,
            spec.scheduler.policy,
            random.Random(point_seed(spec.seed, {"stream": "allocator"})),
        )
        self.scheduler = JobScheduler(spec.scheduler, self._allocator)
        self.manager = ShardManager(spec.scheduler)
        #: ``(now, key, t_res, start, count)`` head-of-queue reservation
        #: snapshots from every backfill pass (in-memory only; the
        #: invariant harness checks "backfill never delays the head"
        #: against these).
        self.reservation_trace: List[Tuple[float, int, float, int, int]] = []
        #: JSON-native admit/preempt/resize/depart event record; lands
        #: on the result as ``scheduler_log`` so occupancy can be
        #: reconstructed and invariant-checked after the fact.
        self.scheduler_log: List[Dict[str, Any]] = []
        # Per-template pipeline outputs live in the process-wide warm
        # cache (repro.perf.warmcache.PIPELINE_CACHE): repeated
        # admissions of one template -- and repeated scenarios over the
        # same templates -- skip the workload/strategy/TopologyFinder
        # pipeline entirely.
        self._substrates: List[SharedClusterSimulator] = []
        self._shared_fabric = None
        if not self.shardable:
            ctx = FabricBuildContext(
                num_servers=spec.cluster.servers,
                degree=spec.cluster.degree,
                link_bandwidth_bps=spec.cluster.link_bandwidth_bps,
                seed=spec.seed,
            )
            self._shared_fabric = build_fabric(spec.fabric, ctx)
            self._substrates.append(
                SharedClusterSimulator(
                    self._shared_fabric.capacities(),
                    seed=0,
                    stagger=False,
                    solver=spec.solver,
                )
            )
        self._failure_events: List[Tuple[float, str, FailureInjection]] = []
        for injection in failures:
            self._failure_events.append((injection.time_s, "fail", injection))
            if injection.repair_s is not None:
                if injection.repair_s < injection.time_s:
                    raise ScenarioError(
                        f"failure repair at {injection.repair_s}s precedes "
                        f"the failure at {injection.time_s}s"
                    )
                self._failure_events.append(
                    (injection.repair_s, "repair", injection)
                )
        self._failure_events.sort(key=lambda event: event[0])
        self.failure_log: List[Dict[str, Any]] = []

    # -- arrival drawing -----------------------------------------------
    def _plan(self, index, template, arrival_s, model=None, servers=None,
              duration_s=None):
        model = model or template.model
        scale = template.scale
        if model != template.model and model not in CONFIG_FAMILIES.get(
            scale, {}
        ):
            scale = "shared"  # trace fallback: every family model has one
        resolved_servers = servers or template.servers
        lo, hi = template.elastic_range()
        lo = min(lo, resolved_servers)
        hi = min(max(hi, resolved_servers), self.spec.cluster.servers)
        return _JobPlan(
            index=index,
            name=f"{model}-{index}",
            model=model,
            scale=scale,
            servers=resolved_servers,
            iterations=template.iterations,
            strategy=template.strategy,
            batch_per_gpu=template.batch_per_gpu,
            arrival_s=arrival_s,
            seed=point_seed(self.spec.seed, {"job": index}),
            duration_s=duration_s,
            priority=template.priority,
            min_servers=lo,
            max_servers=hi,
        )

    def _draw_jobs(self) -> List[_JobPlan]:
        spec = self.spec
        arrivals = spec.arrivals
        templates = spec.jobs
        rng = random.Random(point_seed(spec.seed, {"stream": "arrivals"}))
        plans: List[_JobPlan] = []
        if arrivals.process == "explicit":
            # Pair times[i] with templates[i % len] in the order the
            # user wrote them (so "jobs.0.*" overrides target the job
            # arriving at times[0]), then order the plans by arrival
            # for the event loop.
            for index, arrival in enumerate(arrivals.times):
                template = templates[index % len(templates)]
                plans.append(self._plan(index, template, float(arrival)))
            plans.sort(key=lambda plan: (plan.arrival_s, plan.index))
            return plans
        clock = 0.0
        if arrivals.process == "poisson":
            weights = [template.weight for template in templates]
            for index in range(arrivals.count):
                clock += rng.expovariate(1.0 / arrivals.mean_interarrival_s)
                template = rng.choices(templates, weights=weights, k=1)[0]
                plans.append(self._plan(index, template, clock))
            return plans
        # trace: the section 2.2 production population sets model family
        # and worker count; templates contribute iteration quotas and
        # strategy choices (matched by model name, first template as the
        # default).
        from repro.traces.generator import ProductionTraceGenerator

        generator = ProductionTraceGenerator(
            seed=point_seed(spec.seed, {"stream": "trace"})
        )
        records = generator.sample_population(arrivals.count)
        cap = arrivals.max_servers or max(
            2, min(spec.cluster.servers // 2, 16)
        )
        cap = min(cap, spec.cluster.servers)
        by_model = {}
        for template in templates:
            by_model.setdefault(template.model, template)
        wallclock = arrivals.durations == "wallclock"
        for index, record in enumerate(records):
            clock += rng.expovariate(1.0 / arrivals.mean_interarrival_s)
            model = FAMILY_MODELS[record.family]
            template = by_model.get(model, templates[0])
            servers = max(
                2,
                min(
                    record.num_workers // spec.cluster.gpus_per_server, cap
                ),
            )
            plans.append(
                self._plan(
                    index, template, clock, model=model, servers=servers,
                    duration_s=(
                        record.duration_hours * 3600.0 if wallclock
                        else None
                    ),
                )
            )
        return plans

    # -- per-job pipeline ----------------------------------------------
    def _prepare(self, plan: _JobPlan) -> _Prepared:
        from repro.perf.warmcache import PIPELINE_CACHE

        spec = self.spec
        resolved = plan.strategy or spec.optimizer.strategy
        # Every input the pipeline consumes is in the key, so a warm
        # hit is guaranteed to return what a cold build would have.
        key = (
            plan.model, plan.scale, plan.servers, resolved,
            plan.batch_per_gpu,
            plan.seed if resolved == "mcmc" else None,
            spec.cluster.degree, spec.cluster.bandwidth_gbps,
            spec.cluster.gpus_per_server, self.shardable,
            tuple(sorted(spec.optimizer.to_dict().items())),
        )
        return PIPELINE_CACHE.get_or_build(
            key, lambda: self._build_pipeline(plan, resolved)
        )

    def _build_pipeline(self, plan: _JobPlan, resolved: str) -> _Prepared:
        spec = self.spec
        if resolved == "mcmc":
            # The full co-optimization (MCMC x TopologyFinder) at shard
            # scale, via the experiment runner's pipeline.
            from repro.api.runner import prepare as prepare_experiment

            experiment = ExperimentSpec(
                name=plan.name,
                seed=plan.seed,
                workload=WorkloadSpec(
                    model=plan.model,
                    scale=plan.scale,
                    batch_per_gpu=plan.batch_per_gpu,
                ),
                cluster=ClusterSpec(
                    servers=plan.servers,
                    degree=spec.cluster.degree,
                    bandwidth_gbps=spec.cluster.bandwidth_gbps,
                    gpus_per_server=spec.cluster.gpus_per_server,
                ),
                fabric=FabricSpec(kind="topoopt"),
                optimizer=replace(spec.optimizer, strategy="mcmc"),
            )
            pipeline = prepare_experiment(experiment)
            prepared = _Prepared(
                traffic=pipeline.traffic,
                compute_s=pipeline.compute_s,
                strategy_name="mcmc",
                fabric=pipeline.fabric if self.shardable else None,
            )
        else:
            model = build_workload(
                WorkloadSpec(
                    model=plan.model,
                    scale=plan.scale,
                    batch_per_gpu=plan.batch_per_gpu,
                )
            )
            batch = plan.batch_per_gpu or model.default_batch_per_gpu
            strategy = build_strategy(
                resolved,
                model,
                plan.servers,
                batch_per_gpu=batch,
                gpus_per_server=spec.cluster.gpus_per_server,
            )
            traffic = extract_traffic(
                model, strategy, batch, spec.cluster.gpus_per_server
            )
            compute_s = compute_time_seconds(
                model, batch, spec.cluster.gpus_per_server
            )
            fabric = None
            if self.shardable:
                from repro.core.topology_finder import topology_finder
                from repro.network.topoopt import TopoOptFabric

                result = topology_finder(
                    plan.servers,
                    spec.cluster.degree,
                    traffic.allreduce_groups,
                    traffic.mp_matrix,
                    primes_only=spec.optimizer.primes_only,
                )
                fabric = TopoOptFabric(
                    result, spec.cluster.link_bandwidth_bps
                )
            prepared = _Prepared(
                traffic=traffic,
                compute_s=compute_s,
                strategy_name=resolved,
                fabric=fabric,
            )
        return prepared

    # -- duration estimates --------------------------------------------
    def _est_iteration(self, prepared: _Prepared, servers: int) -> float:
        """Uncontended wall time of one iteration of this pipeline.

        The backfill disciplines' reservation currency.  Measured by
        running a single-job, single-iteration simulation on the job's
        own shard-local fabric -- on an isolated ``topoopt`` shard
        every real iteration repeats this one exactly (relabeling
        preserves capacities), so the estimate is *exact* there.  On a
        shared substrate the local build ignores contention, making the
        estimate a lower bound, as user-supplied runtime estimates are
        in real clusters.  Cached on the (warm-cache-shared) pipeline
        output, so each template pays for one estimate per shard size.
        """
        if prepared.est_iteration_s is not None:
            return prepared.est_iteration_s
        try:
            fabric = prepared.fabric
            if fabric is None:
                ctx = FabricBuildContext(
                    num_servers=servers,
                    degree=self.spec.cluster.degree,
                    link_bandwidth_bps=self.spec.cluster.link_bandwidth_bps,
                    seed=self.spec.seed,
                )
                fabric = build_fabric(self.spec.fabric, ctx)
            sim = SharedClusterSimulator(
                fabric.capacities(),
                seed=0,
                stagger=False,
                solver=self.spec.solver,
            )
            state = sim.add_job(
                JobSpec(
                    name="estimate",
                    traffic=prepared.traffic,
                    compute_s=prepared.compute_s,
                    fabric=fabric,
                ),
                start=0.0,
            )
            for _ in range(10000):
                if state.stats.iteration_times:
                    break
                target = sim.next_event_time()
                if target is None:
                    break
                sim.advance_to(target)
            if state.stats.iteration_times:
                estimate = float(state.stats.iteration_times[0])
            else:
                estimate = 2.0 * prepared.compute_s
        except Exception:
            # Some fabrics cannot build at arbitrary shard sizes; fall
            # back to a crude compute-bound guess rather than failing
            # the scenario over an estimate.
            estimate = 2.0 * prepared.compute_s
        prepared.est_iteration_s = max(estimate, _TIME_EPS)
        return prepared.est_iteration_s

    # -- the event loop ------------------------------------------------
    def run(self) -> ScenarioResult:
        spec = self.spec
        sched_spec = spec.scheduler
        scheduler = self.scheduler
        manager = self.manager
        pending: Deque[_JobPlan] = deque(self._draw_jobs())
        queue: List[_JobLife] = []
        lives: Dict[int, _JobLife] = {}
        running: Dict[int, _Running] = {}
        #: id(state) -> entry: O(1) owner lookup when a substrate
        #: reports iterated states (the per-event scan over ``running``
        #: dominated large scenarios).
        by_state: Dict[int, _Running] = {}
        finished: List[JobResult] = []
        utilization: List[Tuple[float, int]] = [(0.0, 0)]
        fragmentation: List[Tuple[float, float]] = []
        failure_events = deque(self._failure_events)
        #: (departure time, job index) heap of fast-forwarded jobs that
        #: already left their substrates.
        analytic: List[Tuple[float, int]] = []
        makespan = 0.0
        #: Cached absolute next-event time per substrate.  A substrate's
        #: schedule only changes when the loop touches it (advance, job
        #: add/remove/defer), so untouched substrates are not re-queried
        #: -- and not re-solved -- on every event.
        event_cache: Dict[int, Optional[float]] = {}
        dirty: set = set()

        def mark_dirty(substrate) -> None:
            dirty.add(id(substrate))

        def drop_substrate(substrate) -> None:
            self._substrates.remove(substrate)
            event_cache.pop(id(substrate), None)
            dirty.discard(id(substrate))

        def sample(now: float) -> None:
            utilization.append((now, self._allocator.busy_count))
            fragmentation.append((now, self._allocator.fragmentation()))

        def flush_log(entry: _Running) -> List[Tuple[float, int]]:
            """Bring the RLE log up to date with the simulated record."""
            if entry.log is None:
                entry.log = []
            recorded = entry.state.stats.iteration_times
            entry.log.extend(
                (t, 1) for t in recorded[entry.logged_upto:]
            )
            entry.logged_upto = len(recorded)
            return entry.log

        def total_done(entry: _Running) -> int:
            return (
                entry.life.done
                + len(entry.state.stats.iteration_times)
                + entry.ff_count
            )

        def log_event(
            now: float, event: str, index: int, servers, **extra
        ) -> None:
            record: Dict[str, Any] = {
                "time_s": float(now),
                "event": event,
                "job_index": int(index),
                "servers": [int(s) for s in servers],
            }
            record.update(extra)
            self.scheduler_log.append(record)

        def job_horizon(index: int) -> float:
            """Earliest pending failure/repair aimed at job ``index``."""
            return min(
                (t for t, _, inj in failure_events
                 if inj.job_index == index),
                default=math.inf,
            )

        def fast_forward(entry: _Running, now: float) -> None:
            """Account steady-state iterations analytically.

            On an isolated shard every iteration repeats the last
            simulated one exactly (same fabric, same flows), so ``K``
            of them are one RLE entry.  The jump is capped at the
            job's next routing change (failure or repair): the job
            either departs analytically or lands on the last boundary
            before the horizon and resumes simulating.
            """
            d = entry.state.stats.iteration_times[-1]
            if d <= 0:
                return
            plan = entry.plan
            if entry.deadline_s is not None:
                remaining = math.ceil(
                    (entry.deadline_s - now) / d - _TIME_EPS
                )
            else:
                remaining = plan.iterations - total_done(entry)
            if remaining < 1:
                return
            horizon = job_horizon(plan.index)
            finish = now + remaining * d
            if finish <= horizon:
                flush_log(entry).append((d, remaining))
                entry.ff_count += remaining
                entry.substrate.remove_job(entry.state)
                drop_substrate(entry.substrate)
                entry.detached = True
                entry.analytic_finish_s = finish
                by_state.pop(id(entry.state), None)
                heapq.heappush(analytic, (finish, plan.index))
                return
            skip = int((horizon - now) / d)
            if skip < 1:
                return
            flush_log(entry).append((d, skip))
            entry.ff_count += skip
            entry.substrate.defer_job(entry.state, now + skip * d)
            mark_dirty(entry.substrate)

        def job_iterations(entry: _Running):
            sealed = list(entry.life.log)
            if entry.log is None and not sealed:
                return tuple(entry.state.stats.iteration_times), None
            sealed.extend(flush_log(entry))
            return (
                tuple(t for t, _ in sealed),
                tuple(c for _, c in sealed),
            )

        def seal_segment(entry: _Running, now: float) -> None:
            """Fold the live segment into the job's lifetime record."""
            life = entry.life
            segment_done = (
                len(entry.state.stats.iteration_times) + entry.ff_count
            )
            life.log.extend(flush_log(entry))
            life.done += segment_done
            life.served_s += max(0.0, now - entry.start_s)
            entry.log = None
            entry.logged_upto = 0
            entry.ff_count = 0

        def est_finish(entry: _Running, now: float) -> float:
            """When this running job releases its block (estimate).

            Detached fast-forwarded jobs have an exact booked departure;
            attached jobs project iteration boundaries from the segment
            start (exact on isolated shards, a bound under contention).
            """
            if entry.detached:
                return entry.analytic_finish_s
            d = self._est_iteration(entry.prepared, len(entry.servers))
            if entry.deadline_s is not None:
                k = max(
                    1,
                    math.ceil(
                        (entry.deadline_s - entry.start_s) / d - _TIME_EPS
                    ),
                )
                return entry.start_s + k * d
            remaining = max(entry.plan.iterations - entry.life.done, 0)
            return entry.start_s + remaining * d

        def queued_view(life: _JobLife, now: float) -> QueuedJob:
            plan = life.plan
            if scheduler.needs_estimates:
                d = self._est_iteration(self._prepare(plan), plan.servers)
                if plan.duration_s is not None:
                    left = max(plan.duration_s - life.served_s, 0.0)
                    run_s = d * max(1, math.ceil(left / d - _TIME_EPS))
                else:
                    run_s = d * max(plan.iterations - life.done, 0)
                estimate = (
                    life.pending_overhead_s
                    + sched_spec.admission_latency_s
                    + run_s
                )
            else:
                estimate = math.inf
            return QueuedJob(
                key=plan.index,
                servers=plan.servers,
                min_servers=plan.min_servers,
                max_servers=plan.max_servers,
                priority=plan.priority,
                est_duration_s=estimate,
            )

        def running_view(entry: _Running, now: float) -> RunningJob:
            plan = entry.life.plan
            return RunningJob(
                key=plan.index,
                servers=entry.servers,
                priority=plan.priority,
                est_finish_s=(
                    est_finish(entry, now)
                    if scheduler.needs_estimates else math.inf
                ),
                preemptible=not entry.detached,
                resizable=not entry.detached,
                max_servers=plan.max_servers,
            )

        def requeue(life: _JobLife) -> None:
            """Reinsert an evicted job, keeping arrival-index order."""
            keys = [item.plan.index for item in queue]
            queue.insert(bisect.bisect_left(keys, life.plan.index), life)

        def start_segment(
            life: _JobLife,
            servers: Tuple[int, ...],
            now: float,
            backfilled: bool,
        ) -> None:
            plan = life.plan
            size = len(servers)
            seg_plan = (
                plan if size == plan.servers
                else replace(plan, servers=size)
            )
            prepared = self._prepare(seg_plan)
            traffic = remap_traffic(prepared.traffic, list(servers))
            if self.shardable:
                fabric = prepared.fabric.relabel(list(servers))
                substrate = SharedClusterSimulator(
                    fabric.capacities(),
                    seed=0,
                    stagger=False,
                    solver=spec.solver,
                )
                self._substrates.append(substrate)
            else:
                fabric = self._shared_fabric
                substrate = self._substrates[0]
            job = JobSpec(
                name=plan.name,
                traffic=traffic,
                compute_s=prepared.compute_s,
                fabric=fabric,
            )
            start = (
                now
                + life.pending_overhead_s
                + manager.admission_latency(plan.index, now)
            )
            life.pending_overhead_s = 0.0
            manager.forget(plan.index)
            if life.segments:
                state = substrate.resume_job(job, start=start)
            else:
                state = substrate.add_job(job, start=start)
            entry = _Running(
                plan=seg_plan,
                prepared=prepared,
                servers=servers,
                substrate=substrate,
                state=state,
                admitted_s=now,
                life=life,
                start_s=start,
                deadline_s=(
                    start + (plan.duration_s - life.served_s)
                    if plan.duration_s is not None else None
                ),
            )
            running[plan.index] = entry
            by_state[id(state)] = entry
            mark_dirty(substrate)
            if life.admitted_s is None:
                life.admitted_s = now
            if life.requeued_s is not None:
                life.preempted_wait_s += now - life.requeued_s
                life.requeued_s = None
            life.segments += 1
            log_event(
                now, "admit", plan.index, servers, backfilled=backfilled
            )
            sample(now)

        def preempt_entry(entry: _Running, now: float) -> None:
            """Evict a running job (its block is already freed).

            The scheduler freed the allocator block before returning
            the ``preempt`` action; this applies the simulator half --
            checkpoint the job out of its substrate -- and requeues it
            with its completed iterations conserved and the
            checkpoint/restart debt booked for its next start.
            """
            life = entry.life
            seal_segment(entry, now)
            entry.substrate.suspend_job(entry.state)
            if self.shardable:
                drop_substrate(entry.substrate)
            else:
                mark_dirty(entry.substrate)
            by_state.pop(id(entry.state), None)
            del running[life.plan.index]
            life.preemptions += 1
            life.pending_overhead_s += (
                sched_spec.checkpoint_s + sched_spec.restart_s
            )
            life.requeued_s = now
            manager.forget(life.plan.index)
            requeue(life)
            log_event(now, "preempt", life.plan.index, entry.servers)
            sample(now)

        def resize_entry(
            entry: _Running, block: Tuple[int, ...], now: float
        ) -> None:
            """Elastic grow: move the job onto its new (larger) block.

            The allocator side already happened in the scheduler; here
            the old segment is sealed, the pipeline re-runs at the new
            shard size (warm-cached per (template, size)), and the job
            restarts ``resize_latency_s`` later on the new block.
            """
            life = entry.life
            plan = life.plan
            seal_segment(entry, now)
            by_state.pop(id(entry.state), None)
            seg_plan = replace(plan, servers=len(block))
            prepared = self._prepare(seg_plan)
            traffic = remap_traffic(prepared.traffic, list(block))
            start = now + sched_spec.resize_latency_s
            if self.shardable:
                fabric = prepared.fabric.relabel(list(block))
                substrate = SharedClusterSimulator(
                    fabric.capacities(),
                    seed=0,
                    stagger=False,
                    solver=spec.solver,
                )
                entry.substrate.suspend_job(entry.state)
                drop_substrate(entry.substrate)
                self._substrates.append(substrate)
                job = JobSpec(
                    name=plan.name,
                    traffic=traffic,
                    compute_s=prepared.compute_s,
                    fabric=fabric,
                )
                state = substrate.resume_job(job, start=start)
            else:
                substrate = entry.substrate
                job = JobSpec(
                    name=plan.name,
                    traffic=traffic,
                    compute_s=prepared.compute_s,
                    fabric=self._shared_fabric,
                )
                state = substrate.resize_job(entry.state, job, start=start)
            entry.plan = seg_plan
            entry.prepared = prepared
            entry.servers = tuple(block)
            entry.substrate = substrate
            entry.state = state
            entry.start_s = start
            entry.deadline_s = (
                start + (plan.duration_s - life.served_s)
                if plan.duration_s is not None else None
            )
            life.resizes += 1
            by_state[id(state)] = entry
            mark_dirty(substrate)
            log_event(now, "resize", plan.index, block)
            sample(now)

        def control(now: float) -> None:
            """Drain the scheduler's action stream at this instant."""
            if not (queue or (sched_spec.elastic and running)):
                return
            for _ in range(100000):
                qviews = [queued_view(life, now) for life in queue]
                if qviews:
                    manager.note_head(
                        scheduler.ordered(qviews)[0].key, now
                    )
                rviews = (
                    [running_view(e, now) for e in running.values()]
                    if scheduler.needs_running else ()
                )
                scheduler.last_head_reservation = None
                action = scheduler.next_action(now, qviews, rviews)
                if scheduler.last_head_reservation is not None:
                    self.reservation_trace.append(
                        (now,) + scheduler.last_head_reservation
                    )
                if action is None:
                    return
                if action.kind == "admit":
                    life = lives[action.key]
                    queue.remove(life)
                    start_segment(
                        life, action.servers, now, action.backfilled
                    )
                elif action.kind == "preempt":
                    for key in action.victims:
                        preempt_entry(running[key], now)
                else:  # grow
                    resize_entry(running[action.key], action.servers, now)
            raise ScenarioError(
                "scheduler control loop did not converge"
            )

        def depart(entry: _Running, now: float) -> None:
            if not entry.detached:
                entry.substrate.remove_job(entry.state)
                if self.shardable:
                    drop_substrate(entry.substrate)
                else:
                    mark_dirty(entry.substrate)
                by_state.pop(id(entry.state), None)
            self._allocator.free(entry.servers)
            life = entry.life
            plan = life.plan
            times, counts = job_iterations(entry)
            finished.append(
                JobResult(
                    index=plan.index,
                    name=plan.name,
                    model=plan.model,
                    scale=plan.scale,
                    strategy=entry.prepared.strategy_name,
                    servers=entry.servers,
                    arrival_s=plan.arrival_s,
                    admitted_s=life.admitted_s,
                    completed_s=now,
                    compute_s=entry.prepared.compute_s,
                    iteration_times=times,
                    iteration_counts=counts,
                    duration_s=plan.duration_s,
                    preemptions=life.preemptions,
                    resizes=life.resizes,
                    preempted_wait_s=life.preempted_wait_s,
                )
            )
            log_event(now, "depart", plan.index, entry.servers)
            sample(now)

        while pending or queue or running:
            candidates: List[float] = []
            if pending:
                candidates.append(pending[0].arrival_s)
            if failure_events:
                candidates.append(failure_events[0][0])
            if analytic:
                candidates.append(analytic[0][0])
            # Refresh only substrates the previous event touched; the
            # rest keep their cached next-event times.
            for substrate in self._substrates:
                sid = id(substrate)
                if sid in dirty or sid not in event_cache:
                    event_cache[sid] = substrate.next_event_time()
            dirty.clear()
            substrate_events = [
                (substrate, event_cache[id(substrate)])
                for substrate in self._substrates
            ]
            candidates.extend(
                event for _, event in substrate_events if event is not None
            )
            if not candidates:
                stuck = [life.plan.name for life in queue]
                raise ScenarioError(
                    f"scenario stalled with jobs queued: {stuck}"
                )
            now = min(candidates)
            if now > spec.max_sim_time_s:
                unfinished = len(queue) + len(running) + len(pending)
                raise ScenarioError(
                    f"scenario exceeded max_sim_time_s="
                    f"{spec.max_sim_time_s:g} with {unfinished} job(s) "
                    f"unfinished; raise the cap or shrink the workload"
                )
            # 1. substrate events (iteration completions -> departures)
            departures: List[_Running] = []
            for substrate, event in substrate_events:
                if event is None or event > now + _TIME_EPS:
                    continue
                iterated = substrate.advance_to(now)
                mark_dirty(substrate)
                for state in iterated:
                    entry = by_state.get(id(state))
                    if entry is None:
                        continue
                    if entry.deadline_s is not None:
                        due = now + _TIME_EPS >= entry.deadline_s
                    else:
                        due = total_done(entry) >= entry.plan.iterations
                    if due:
                        departures.append(entry)
                    elif spec.fast_forward and self.shardable:
                        fast_forward(entry, now)
            #: Whether this event can change a scheduling decision.
            #: Admission/backfill/preemption/growth opportunities only
            #: improve when servers free up, the queue changes, or
            #: routing changes -- never from time passing alone (a
            #: backfill window only shrinks as ``now`` approaches the
            #: head's reservation), so plain iteration completions skip
            #: the control pass.  This keeps the O(queue) reservation
            #: walk off the per-iteration hot path.
            control_due = bool(departures)
            for entry in departures:
                del running[entry.plan.index]
                depart(entry, now)
                makespan = max(makespan, now)
            # 1b. analytic departures of fast-forwarded jobs
            while analytic and analytic[0][0] <= now + _TIME_EPS:
                _, index = heapq.heappop(analytic)
                depart(running.pop(index), now)
                makespan = max(makespan, now)
                control_due = True
            # 2. failures due at now
            while failure_events and failure_events[0][0] <= now + _TIME_EPS:
                _, action, injection = failure_events.popleft()
                self._apply_failure(action, injection, running, now)
                control_due = True
            # 3. arrivals due at now
            while pending and pending[0].arrival_s <= now + _TIME_EPS:
                plan = pending.popleft()
                life = _JobLife(plan=plan)
                lives[plan.index] = life
                queue.append(life)
                control_due = True
            # 4. scheduling decisions (after departures freed ports)
            if control_due:
                control(now)

        # Injections scheduled past the last departure never fired;
        # record them so the log accounts for every requested failure.
        while failure_events:
            when, _, injection = failure_events.popleft()
            self.failure_log.append(
                {
                    "time_s": when,
                    "job_index": injection.job_index,
                    "kind": "skipped",
                    "reason": "scenario ended before injection time",
                }
            )

        return ScenarioResult(
            spec=spec,
            jobs=tuple(sorted(finished, key=lambda job: job.index)),
            makespan_s=makespan,
            utilization_timeline=tuple(utilization),
            fragmentation_timeline=tuple(fragmentation),
            failure_log=tuple(self.failure_log),
            scheduler_log=tuple(self.scheduler_log),
        )

    # -- failures ------------------------------------------------------
    def _apply_failure(
        self,
        action: str,
        injection: FailureInjection,
        running: Dict[int, _Running],
        now: float,
    ) -> None:
        from repro.sim.failures import FailureManager

        entry = running.get(injection.job_index)
        base = {"time_s": now, "job_index": injection.job_index}
        if entry is None or not self.shardable:
            reason = (
                "job not running" if entry is None
                else "shared fabrics have no per-job optical shard"
            )
            self.failure_log.append(
                {**base, "kind": "skipped", "reason": reason}
            )
            return
        if action == "fail" and entry.failure_manager is None:
            # Copy-on-write: the prepared fabric is shared by every job
            # built from the same template (pipeline cache), and the
            # FailureManager patches routing tables in place.  Give the
            # failing job its own topology result + fabric so the
            # damage stays on its shard.
            import copy as _copy

            from repro.network.topoopt import TopoOptFabric

            isolated = _copy.deepcopy(entry.prepared.fabric.result)
            fabric = TopoOptFabric(
                isolated, entry.prepared.fabric.link_bandwidth_bps
            )
            entry.state.spec.fabric = fabric.relabel(list(entry.servers))
            entry.failure_manager = FailureManager(isolated)
        manager = entry.failure_manager
        result = (
            manager.result if manager is not None
            else entry.prepared.fabric.result
        )
        link = injection.link or self._default_failure_link(result)
        if action == "fail":
            try:
                repair = manager.fail_link(*link)
            except (ValueError, RuntimeError) as error:
                # Already-failed edges, links absent from the shard
                # topology, disconnecting failures: log, don't abort --
                # the scenario result must stay reachable (and
                # deterministic) for any injection list.
                self.failure_log.append(
                    {
                        **base,
                        "kind": "skipped",
                        "link": list(link),
                        "reason": str(error),
                    }
                )
                return
            self.failure_log.append(
                {
                    **base,
                    "kind": repair.kind,
                    "link": list(link),
                    "extra_hops": repair.extra_hops,
                }
            )
            # The kernel backend registers a job's flows once and
            # replays them; the patched routing only takes effect if
            # the cached columns are dropped.
            entry.substrate.invalidate_flows(entry.state)
        else:  # repair
            if manager is None or tuple(link) not in manager.failed:
                self.failure_log.append(
                    {**base, "kind": "skipped", "reason": "link not failed"}
                )
                return
            repair = manager.repair_permanently(*link)
            self.failure_log.append(
                {**base, "kind": repair.kind, "link": list(link)}
            )
            entry.substrate.invalidate_flows(entry.state)

    @staticmethod
    def _default_failure_link(result) -> Tuple[int, int]:
        for plan in result.group_plans:
            for ring in plan.rings:
                if len(ring) >= 2:
                    return (ring[0], ring[1])
        src, dst, _ = next(iter(result.topology.edges()))
        return (src, dst)


def run_scenario(
    spec: ScenarioSpec,
    failures: Sequence[FailureInjection] = (),
) -> ScenarioResult:
    """Simulate one scenario end to end; see the module docstring.

    The returned result's ``to_dict()`` is deterministic for a given
    (spec, seed); ``wall_time_s`` is measured and stays off-JSON.
    """
    started = time.perf_counter()
    engine = ScenarioEngine(spec, failures)
    result = engine.run()
    object.__setattr__(
        result, "wall_time_s", time.perf_counter() - started
    )
    return result
